"""On-line simulation of a single cluster driven by a queue policy.

This is the event-driven counterpart of the schedule-constructing policies of
:mod:`repro.core.policies`: jobs arrive over time (their release dates), wait
in a queue, and a :class:`QueuePolicy` decides at every scheduling point
(arrival or completion) which waiting jobs to start on the free processors.

The simulator returns a :class:`SimulationResult` containing the executed
:class:`~repro.core.allocation.Schedule` (reconstructed from the event
trace), the raw trace, the criteria report and the Figure-2 style ratios, so
simulated and constructed schedules can be compared on the same metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.allocation import Schedule
from repro.core.criteria import CriteriaReport
from repro.core.job import Job, MoldableJob, RigidJob
from repro.core.policies.base import MoldableAllocator, SchedulerError
from repro.metrics.ratios import RatioReport, schedule_ratios
from repro.platform.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.resources import ProcessorPool
from repro.simulation.tracing import Trace


# ---------------------------------------------------------------------------
# Queue policies
# ---------------------------------------------------------------------------


class QueuePolicy:
    """Decides which waiting jobs to start when processors are free.

    ``select(queue, free, now)`` returns a list of ``(job, nbproc)`` pairs to
    start immediately; the returned jobs must be pairwise distinct members of
    ``queue`` and their total processor demand must not exceed ``free``.
    """

    name = "abstract"

    def __init__(self, allocator: Optional[MoldableAllocator] = None) -> None:
        self.allocator = allocator or MoldableAllocator("bounded_efficiency")

    def allocation(self, job: Job, machine_count: int, free: int) -> int:
        """Processor count for ``job``, never exceeding the currently free count."""

        nbproc = self.allocator.allocate(job, machine_count)
        if isinstance(job, MoldableJob):
            nbproc = max(job.min_procs, min(nbproc, free)) if free >= job.min_procs else nbproc
        return nbproc

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        raise NotImplementedError


class FifoPolicy(QueuePolicy):
    """Strict first-come-first-served: the head of the queue blocks everyone."""

    name = "fifo"

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        decisions = []
        remaining = free
        for job in queue:
            nbproc = self.allocation(job, machine_count, remaining)
            if nbproc <= remaining:
                decisions.append((job, nbproc))
                remaining -= nbproc
            else:
                break  # FCFS: do not bypass the blocked head of queue
        return decisions


class BackfillPolicy(QueuePolicy):
    """FCFS with aggressive backfilling: later jobs may use leftover processors.

    Unlike the clairvoyant EASY implementation of
    :mod:`repro.core.policies.backfilling` this on-line policy does not
    compute a shadow time; it simply lets any queued job that fits in the
    currently free processors start.  It therefore favours utilisation at the
    possible expense of large jobs -- the simulation benchmarks quantify this
    trade-off.
    """

    name = "backfill"

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        decisions = []
        remaining = free
        for job in queue:
            nbproc = self.allocation(job, machine_count, remaining)
            if nbproc <= remaining:
                decisions.append((job, nbproc))
                remaining -= nbproc
            if remaining == 0:
                break
        return decisions


class SmallestFirstPolicy(QueuePolicy):
    """Start the smallest waiting jobs first (good for the mean stretch)."""

    name = "smallest-first"

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        def key(job: Job) -> Tuple[float, str]:
            if isinstance(job, MoldableJob):
                return (job.min_work(), job.name)
            if isinstance(job, RigidJob):
                return (job.duration * job.nbproc, job.name)
            return (math.inf, job.name)

        decisions = []
        remaining = free
        for job in sorted(queue, key=key):
            nbproc = self.allocation(job, machine_count, remaining)
            if nbproc <= remaining:
                decisions.append((job, nbproc))
                remaining -= nbproc
        return decisions


QUEUE_POLICIES = {
    "fifo": FifoPolicy,
    "backfill": BackfillPolicy,
    "smallest-first": SmallestFirstPolicy,
}


# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------


@dataclass
class SimulationResult:
    """Outcome of a single-cluster on-line simulation."""

    schedule: Schedule
    trace: Trace
    criteria: CriteriaReport
    ratios: RatioReport
    policy: str
    machine_count: int

    @property
    def makespan(self) -> float:
        return self.criteria.makespan


class ClusterSimulator:
    """Event-driven on-line simulation of one cluster."""

    def __init__(
        self,
        platform: Union[Cluster, int],
        *,
        policy: Union[str, QueuePolicy] = "fifo",
        allocator: Optional[MoldableAllocator] = None,
        trace_labels: bool = False,
    ) -> None:
        if isinstance(platform, Cluster):
            self.machine_count = platform.processor_count
            self.cluster_name: Optional[str] = platform.name
        else:
            if platform < 1:
                raise ValueError("machine_count must be >= 1")
            self.machine_count = int(platform)
            self.cluster_name = None
        if isinstance(policy, str):
            try:
                policy_cls = QUEUE_POLICIES[policy]
            except KeyError:
                raise ValueError(
                    f"unknown queue policy {policy!r}; known: {sorted(QUEUE_POLICIES)}"
                ) from None
            policy = policy_cls(allocator)
        self.policy = policy
        #: Build per-event label strings (debugging aid; off on the fast path).
        self.trace_labels = trace_labels

    # -- main entry point -------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        jobs = list(jobs)
        sim = Simulator(trace_labels=self.trace_labels)
        labels = self.trace_labels
        pool = ProcessorPool(self.machine_count)
        trace = Trace()
        queue: List[Job] = []
        schedule = Schedule(self.machine_count)

        def try_start() -> None:
            free = pool.free_count(sim.now)
            if free == 0 or not queue:
                return
            decisions = self.policy.select(tuple(queue), free, sim.now, self.machine_count)
            used = sum(nbproc for _, nbproc in decisions)
            if used > free:
                raise SchedulerError(
                    f"policy {self.policy.name!r} over-committed: asked {used} "
                    f"processors, only {free} free"
                )
            for job, nbproc in decisions:
                processors = pool.try_acquire(job.name, nbproc, now=sim.now)
                assert processors is not None
                queue.remove(job)
                runtime = job.runtime(nbproc)
                schedule.add(job, sim.now, processors, runtime)
                trace.record(sim.now, "start", job.name,
                             cluster=self.cluster_name, processors=processors)

                def complete(job=job, processors=processors) -> None:
                    pool.release(job.name)
                    trace.record(sim.now, "complete", job.name,
                                 cluster=self.cluster_name, processors=processors)
                    try_start()

                sim.schedule(runtime, complete,
                             label=f"complete {job.name}" if labels else "")

        def submit(job: Job) -> None:
            trace.record(sim.now, "submit", job.name, cluster=self.cluster_name)
            queue.append(job)
            try_start()

        for job in sorted(jobs, key=lambda j: (j.release_date, j.name)):
            sim.schedule_at(job.release_date, lambda job=job: submit(job),
                            label=f"submit {job.name}" if labels else "")
        sim.run()

        if queue:
            raise SchedulerError(
                f"simulation finished with {len(queue)} jobs still queued "
                f"(policy {self.policy.name!r} starved them)"
            )
        schedule.validate()
        criteria = CriteriaReport.from_schedule(schedule)
        ratios = schedule_ratios(schedule, jobs, machine_count=self.machine_count)
        return SimulationResult(
            schedule=schedule,
            trace=trace,
            criteria=criteria,
            ratios=ratios,
            policy=self.policy.name,
            machine_count=self.machine_count,
        )


def compare_policies(
    jobs: Sequence[Job],
    machine_count: int,
    *,
    policies: Sequence[str] = ("fifo", "backfill", "smallest-first"),
) -> Dict[str, SimulationResult]:
    """Run the same workload under several queue policies (policy-comparison helper)."""

    results: Dict[str, SimulationResult] = {}
    for name in policies:
        simulator = ClusterSimulator(machine_count, policy=name)
        results[name] = simulator.run(jobs)
    return results
