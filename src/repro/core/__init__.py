"""Core model of the paper: Parallel Tasks, Divisible Load, criteria, policies.

The :mod:`repro.core` package contains the paper's primary contribution:

* the **job models** of section 2 (rigid, moldable, malleable parallel tasks
  and divisible load tasks) in :mod:`repro.core.job`;
* the **speedup / penalty models** that give a moldable task its execution
  time as a function of the number of processors in :mod:`repro.core.speedup`;
* **schedules** (allocations + start times) with validation and Gantt export
  in :mod:`repro.core.allocation`;
* the **optimisation criteria** of section 3 in :mod:`repro.core.criteria`;
* **lower bounds** used to compute performance ratios in
  :mod:`repro.core.bounds`;
* the **scheduling policies** of section 4 and 5.1 in
  :mod:`repro.core.policies`;
* the **divisible load** algorithms of section 2.1 in :mod:`repro.core.dlt`.
"""

from repro.core.job import (
    DivisibleJob,
    Job,
    JobKind,
    MalleableJob,
    MoldableJob,
    RigidJob,
)
from repro.core.allocation import Allocation, Schedule, ScheduledJob
from repro.core.speedup import (
    AmdahlSpeedup,
    CommunicationPenaltySpeedup,
    LinearSpeedup,
    PowerLawSpeedup,
    RooflineSpeedup,
    SpeedupModel,
    make_runtime_table,
)
from repro.core import bounds, criteria

__all__ = [
    "Job",
    "JobKind",
    "RigidJob",
    "MoldableJob",
    "MalleableJob",
    "DivisibleJob",
    "Allocation",
    "Schedule",
    "ScheduledJob",
    "SpeedupModel",
    "LinearSpeedup",
    "AmdahlSpeedup",
    "PowerLawSpeedup",
    "CommunicationPenaltySpeedup",
    "RooflineSpeedup",
    "make_runtime_table",
    "bounds",
    "criteria",
]
