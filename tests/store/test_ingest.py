"""Ingest: journal -> store equivalence (crash-truncated included), CSV import."""

from __future__ import annotations

from repro.distributed.campaign import CampaignJournal, load_journal_entries
from repro.experiments.grid import CellOutcome, expand_grid
from repro.experiments.reporting import to_csv
from repro.store.columnar import CampaignStore
from repro.store.ingest import ingest, ingest_csv, ingest_journal


def outcome_for(cell, value):
    return CellOutcome(cell=cell, metrics={"v": value}, elapsed_seconds=0.125)


def write_journal(path, cells, version="v1"):
    journal = CampaignJournal(path)
    for index, cell in enumerate(cells):
        journal.record(cell, outcome_for(cell, float(index)), version)
    return journal


class TestJournalIngest:
    def test_equivalent_to_live_journal_replay(self, tmp_path):
        cells = expand_grid({"x": [1, 2]}, repetitions=2, base_seed=11)
        journal = write_journal(tmp_path / "j.jsonl", cells)
        store = CampaignStore(tmp_path / "store", campaign="c")
        appended = ingest_journal(tmp_path / "j.jsonl", store, scenario="sweep")
        store.flush()
        assert appended == 4
        # Same dedup keys, same metrics, same elapsed as the journal holds.
        entries = journal.entries()
        records = CampaignStore(tmp_path / "store").records()
        assert {r["key"] for r in records} == set(entries)
        for record in records:
            entry = entries[record["key"]]
            assert record["elapsed_seconds"] == entry["elapsed_seconds"]
            assert record["replayed"] is True
            assert record["v"] == entry["metrics"]["v"]
            assert record["seed"] == entry["seed"]

    def test_crash_truncated_journal_recovers_complete_entries(self, tmp_path):
        cells = expand_grid({"x": [1, 2, 3]}, repetitions=1)
        path = tmp_path / "j.jsonl"
        write_journal(path, cells)
        # A campaign killed mid-append leaves a half-written trailing line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "half-written", "metrics": {"v":')
        assert len(load_journal_entries(path)) == 3
        store = CampaignStore(tmp_path / "store")
        assert ingest(path, store) == 3
        store.flush()
        assert len(store) == 3

    def test_reingest_is_idempotent(self, tmp_path):
        cells = expand_grid({"x": [1, 2]}, repetitions=1)
        path = tmp_path / "j.jsonl"
        write_journal(path, cells)
        store = CampaignStore(tmp_path / "store")
        assert ingest_journal(path, store) == 2
        assert ingest_journal(path, store) == 0  # journal keys dedup the rerun
        store.flush()
        assert len(store) == 2
        assert store.stats.duplicates == 2

    def test_missing_journal_is_empty_not_an_error(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        assert ingest_journal(tmp_path / "missing.jsonl", store) == 0


class TestCsvIngest:
    def test_round_trips_typed_values(self, tmp_path):
        rows = [
            {"experiment": "e", "seed": 1, "n": 10, "ratio": 1.5, "ok": True, "name": "lpt"},
            {"experiment": "e", "seed": 2, "n": 20, "ratio": 2.5, "ok": False, "name": "wspt"},
        ]
        path = tmp_path / "rows.csv"
        path.write_text(to_csv(rows), encoding="utf-8")
        store = CampaignStore(tmp_path / "store")
        assert ingest_csv(path, store) == 2
        store.flush()
        assert CampaignStore(tmp_path / "store").rows() == rows

    def test_reingest_is_idempotent(self, tmp_path):
        rows = [{"experiment": "e", "seed": 1, "v": 3}]
        path = tmp_path / "rows.csv"
        path.write_text(to_csv(rows), encoding="utf-8")
        store = CampaignStore(tmp_path / "store")
        assert ingest(path, store) == 1
        assert ingest(path, store) == 0  # content-derived keys dedup the rerun
        store.flush()
        assert len(store) == 1

    def test_suffix_dispatch_and_bad_format(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        try:
            ingest(tmp_path / "x.csv", store, fmt="xml")
        except ValueError as error:
            assert "xml" in str(error)
        else:
            raise AssertionError("expected ValueError for unknown format")
