"""The comm layer: scheme registry, both built-in backends, frame guard.

The contracts under test:

* addresses are scheme-routed through a registry; unknown or malformed
  schemes fail with messages that name the registered schemes;
* ``tcp://`` and ``inproc://`` comms speak the same framed envelopes --
  the in-process backend round-trips every message through the real frame
  codec, so wire-level guards apply to both;
* the 64 MB frame guard reports actual size vs. limit and is configurable
  through ``REPRO_MAX_FRAME``;
* :func:`repro.distributed.protocol.parse_address` stays the socket-only
  convenience: scheme-aware, friendly about both unregistered schemes and
  registered-but-not-tcp ones.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.distributed import protocol
from repro.distributed.comm import (
    CommClosedError,
    CommError,
    UnknownSchemeError,
    connect,
    get_backend,
    listener,
    registered_schemes,
    split_address,
    validate_address,
)


class TestRegistry:
    def test_built_in_schemes_are_registered(self):
        schemes = registered_schemes()
        assert "tcp" in schemes
        assert "inproc" in schemes

    def test_unknown_scheme_names_the_registered_ones(self):
        with pytest.raises(UnknownSchemeError) as excinfo:
            get_backend("carrier-pigeon")
        message = str(excinfo.value)
        assert "carrier-pigeon" in message
        assert "inproc://" in message and "tcp://" in message

    def test_unknown_scheme_error_is_a_value_error(self):
        # Callers validating user input catch ValueError; comm-layer callers
        # catch CommError.  The error is both.
        with pytest.raises(ValueError):
            validate_address("carrier-pigeon://x")
        with pytest.raises(CommError):
            validate_address("carrier-pigeon://x")

    def test_address_without_scheme_is_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            split_address("127.0.0.1:8765")

    def test_backend_specific_validation_is_routed(self):
        validate_address("tcp://127.0.0.1:8765")
        validate_address("inproc://campaign")
        with pytest.raises(ValueError):
            validate_address("tcp://127.0.0.1:notaport")
        with pytest.raises(ValueError):
            validate_address("inproc://not/flat")


class TestSchemeAwareParseAddress:
    def test_tcp_addresses_parse(self):
        assert protocol.parse_address("tcp://10.1.2.3:8765") == ("10.1.2.3", 8765)

    def test_registered_non_tcp_scheme_gets_a_specific_message(self):
        with pytest.raises(ValueError) as excinfo:
            protocol.parse_address("inproc://campaign")
        message = str(excinfo.value)
        assert "inproc" in message
        assert "tcp://HOST:PORT" in message

    def test_unregistered_scheme_names_registered_schemes(self):
        with pytest.raises(ValueError) as excinfo:
            protocol.parse_address("udp://127.0.0.1:8765")
        assert "tcp://" in str(excinfo.value)


def run_echo_listener(address):
    """One-shot echo server on ``address``; returns (bound address, results)."""

    async def echo(comm):
        try:
            while True:
                message = await comm.recv()
                await comm.send({"op": "echo", "body": message})
        except CommError:
            pass
        finally:
            await comm.close()

    return echo


class TestBackendsEndToEnd:
    @pytest.mark.parametrize("address", ["tcp://127.0.0.1:0", "inproc://"])
    def test_echo_round_trip(self, address):
        async def scenario():
            lst = listener(address, run_echo_listener(address))
            await lst.start()
            try:
                comm = await connect(lst.address)
                await comm.send({"op": "ping", "n": 1})
                reply = await comm.recv()
                assert reply == {"op": "echo", "body": {"op": "ping", "n": 1}}
                await comm.close()
            finally:
                await lst.stop()

        asyncio.run(scenario())

    def test_ephemeral_binds_report_dialable_addresses(self):
        async def scenario():
            lst = listener("tcp://127.0.0.1:0", run_echo_listener("t"))
            await lst.start()
            tcp_address = lst.address
            await lst.stop()
            lst2 = listener("inproc://", run_echo_listener("i"))
            await lst2.start()
            inproc_address = lst2.address
            await lst2.stop()
            return tcp_address, inproc_address

        tcp_address, inproc_address = asyncio.run(scenario())
        host, port = protocol.parse_address(tcp_address)
        assert port != 0
        assert inproc_address.startswith("inproc://")
        assert split_address(inproc_address)[1]  # a fresh token was picked

    def test_inproc_connect_without_listener_is_a_comm_error(self):
        async def scenario():
            with pytest.raises(CommClosedError, match="no inproc listener"):
                await connect("inproc://nobody-home")

        asyncio.run(scenario())

    def test_inproc_listener_names_must_be_unique(self):
        async def scenario():
            lst = listener("inproc://taken", run_echo_listener("a"))
            await lst.start()
            try:
                other = listener("inproc://taken", run_echo_listener("b"))
                with pytest.raises(CommError, match="already has a listener"):
                    await other.start()
            finally:
                await lst.stop()

        asyncio.run(scenario())

    def test_inproc_connects_across_threads(self):
        """A client on its own loop in another thread reaches the listener."""

        ready = threading.Event()
        done = threading.Event()
        bound = {}

        async def serve():
            lst = listener("inproc://", run_echo_listener("x"))
            await lst.start()
            bound["address"] = lst.address
            ready.set()
            while not done.is_set():
                await asyncio.sleep(0.01)
            await lst.stop()

        server_thread = threading.Thread(target=lambda: asyncio.run(serve()), daemon=True)
        server_thread.start()
        assert ready.wait(timeout=5.0)

        async def client():
            comm = await connect(bound["address"])
            await comm.send({"op": "ping"})
            reply = await comm.recv()
            await comm.close()
            return reply

        try:
            assert asyncio.run(client()) == {"op": "echo", "body": {"op": "ping"}}
        finally:
            done.set()
            server_thread.join(timeout=5.0)


class TestFrameGuard:
    def test_oversized_frame_reports_size_and_limit(self, monkeypatch):
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, "1024")
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.dump_frame({"op": "result", "blob": "x" * 2048})
        message = str(excinfo.value)
        assert "1,024" in message           # the active limit
        assert protocol.MAX_FRAME_ENV_VAR in message  # how to raise it
        assert "2," in message              # the actual offending size

    def test_env_var_raises_the_limit(self, monkeypatch):
        payload = {"op": "result", "blob": "x" * (2 * 1024)}
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, "1024")
        with pytest.raises(protocol.ProtocolError):
            protocol.dump_frame(payload)
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, str(1024 * 1024))
        assert protocol.load_frame(protocol.dump_frame(payload)) == payload

    def test_unset_env_means_64_mb_default(self, monkeypatch):
        monkeypatch.delenv(protocol.MAX_FRAME_ENV_VAR, raising=False)
        assert protocol.max_frame_bytes() == protocol.MAX_FRAME_BYTES

    def test_garbage_env_value_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, "a-lot")
        with pytest.raises(protocol.ProtocolError, match=protocol.MAX_FRAME_ENV_VAR):
            protocol.max_frame_bytes()
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, "-5")
        with pytest.raises(protocol.ProtocolError, match="positive"):
            protocol.max_frame_bytes()

    def test_inbound_guard_checks_the_same_limit(self, monkeypatch):
        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, "512")
        with pytest.raises(protocol.ProtocolError, match="512"):
            protocol.check_frame_length(4096)

    def test_inproc_comms_enforce_the_guard_too(self, monkeypatch):
        """The in-process backend is wire-faithful: same codec, same guard."""

        monkeypatch.setenv(protocol.MAX_FRAME_ENV_VAR, "1024")

        async def scenario():
            lst = listener("inproc://", run_echo_listener("g"))
            await lst.start()
            try:
                comm = await connect(lst.address)
                with pytest.raises(protocol.ProtocolError, match="frame limit"):
                    await comm.send({"op": "result", "blob": "x" * 4096})
                await comm.close()
            finally:
                await lst.stop()

        asyncio.run(scenario())
