"""Telemetry: one versioned event API for every runtime surface.

::

    from repro.telemetry import get_bus

    bus = get_bus()                      # process-wide default
    with bus.subscribe(["sweep"]) as sub:
        ...                              # run something observable
        for event in sub.poll():
            print(event.topic, event.payload)

Producers (the distributed scheduler, the sweep harness, the simulation
trace tap, the scheduling runtime) publish versioned payloads into the bus;
consumers poll subscriptions, read ring-buffered topic history, or take a
:meth:`~repro.telemetry.bus.TelemetryBus.snapshot`.  The HTTP dashboard in
:mod:`repro.dashboard` is just another consumer.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.bus import (
    Subscription,
    TelemetryBus,
    TelemetryEvent,
    get_bus,
    set_bus,
)
from repro.telemetry.events import (
    ALL_TOPICS,
    SCHEMA_VERSION,
    TOPIC_ASSIGNMENTS,
    TOPIC_QUEUE,
    TOPIC_RUNTIME,
    TOPIC_SCHEDULER,
    TOPIC_SCHEDULER_SPANS,
    TOPIC_SPANS,
    TOPIC_STATS,
    TOPIC_SWEEP,
    TOPIC_TRACE,
    TOPIC_WORKERS,
    WORKER_TOPIC_PREFIX,
    payload,
    worker_topic,
)
from repro.telemetry.listener import (
    CallbackListener,
    FanoutListener,
    SweepListener,
    listener_with_callbacks,
)
from repro.telemetry.recorder import TelemetryRecorder, telemetry_scenario
from repro.telemetry.spans import NULL_SPAN, SpanRecorder


def trace_tap(bus: Optional[TelemetryBus] = None, *, label: str = ""):
    """A tap callable publishing every simulator trace event to ``bus``.

    Install it with :func:`repro.simulation.tracing.set_trace_tap` (process
    wide) or pass it to ``Trace(tap=...)``.  ``label`` distinguishes
    concurrent simulations in the shared ``trace`` topic.
    """

    def tap(event) -> None:
        target = bus if bus is not None else get_bus()
        target.emit(
            TOPIC_TRACE,
            "trace-event",
            label=label,
            time=event.time,
            event=event.kind,
            job=event.job,
            cluster=event.cluster or "",
            processors=len(event.processors),
            info=event.info,
        )

    return tap


__all__ = [
    "ALL_TOPICS",
    "CallbackListener",
    "FanoutListener",
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "SpanRecorder",
    "Subscription",
    "SweepListener",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetryRecorder",
    "TOPIC_ASSIGNMENTS",
    "TOPIC_QUEUE",
    "TOPIC_RUNTIME",
    "TOPIC_SCHEDULER",
    "TOPIC_SCHEDULER_SPANS",
    "TOPIC_SPANS",
    "TOPIC_STATS",
    "TOPIC_SWEEP",
    "TOPIC_TRACE",
    "TOPIC_WORKERS",
    "WORKER_TOPIC_PREFIX",
    "get_bus",
    "listener_with_callbacks",
    "payload",
    "set_bus",
    "telemetry_scenario",
    "trace_tap",
    "worker_topic",
]
