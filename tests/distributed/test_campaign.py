"""Campaign journal tests: keys, replay, corruption tolerance, versioning."""

from __future__ import annotations

import json

from repro.distributed.campaign import CampaignJournal, journal_key
from repro.experiments.grid import CellOutcome, expand_grid


def outcome_for(cell, value):
    return CellOutcome(cell=cell, metrics={"v": value}, elapsed_seconds=0.1)


class TestJournal:
    def test_record_and_lookup_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        cells = expand_grid({"x": [1, 2]}, repetitions=2)
        for index, cell in enumerate(cells):
            assert journal.record(cell, outcome_for(cell, float(index)), "v1")
        fresh = CampaignJournal(tmp_path / "j.jsonl")
        assert len(fresh) == 4
        for index, cell in enumerate(cells):
            replayed = fresh.lookup(cell, "v1")
            assert replayed is not None
            assert replayed.cached is True
            assert replayed.metrics == {"v": float(index)}

    def test_version_mismatch_is_a_miss(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        (cell,) = expand_grid({}, repetitions=1)
        journal.record(cell, outcome_for(cell, 1.0), "v1")
        assert journal.lookup(cell, "v1") is not None
        assert CampaignJournal(tmp_path / "j.jsonl").lookup(cell, "v2") is None

    def test_failed_and_rich_outcomes_are_not_journaled(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        (cell,) = expand_grid({}, repetitions=1)
        failed = CellOutcome(cell=cell, error="boom", error_type="ValueError")
        assert not journal.record(cell, failed, "v1")
        rich = CellOutcome(cell=cell, metrics={"payload": {("t", 1)}})
        assert not journal.record(cell, rich, "v1")
        assert not (tmp_path / "j.jsonl").exists()

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        cells = expand_grid({"x": [1, 2]}, repetitions=1)
        for cell in cells:
            journal.record(cell, outcome_for(cell, 1.0), "v1")
        # Simulate a campaign killed mid-append: a half-written final line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "abcd", "metrics": {"v":')
        recovered = CampaignJournal(path)
        assert len(recovered) == 2
        assert recovered.lookup(cells[0], "v1") is not None

    def test_key_covers_params_seed_and_version(self):
        cell_a, cell_b = expand_grid({"n": [1, 2]}, repetitions=1)
        assert journal_key(cell_a, "v") != journal_key(cell_b, "v")
        assert journal_key(cell_a, "v") != journal_key(cell_a, "w")

    def test_entries_are_plain_json_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path)
        (cell,) = expand_grid({"x": [7]}, repetitions=1)
        journal.record(cell, outcome_for(cell, 2.5), "v1")
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["params"] == {"x": 7}
        assert entry["seed"] == cell.seed
        assert entry["metrics"] == {"v": 2.5}
