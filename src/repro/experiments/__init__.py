"""Experiment harness: the code that regenerates the paper's figures.

* :mod:`repro.experiments.harness` -- generic experiment runner (parameter
  sweeps, repetitions over seeds, result tables) built on three separable
  stages: grid expansion (:mod:`repro.experiments.grid`), parallel cell
  execution (:mod:`repro.experiments.executors`, selected with the
  ``REPRO_JOBS`` environment variable) and streamed aggregation, with an
  optional on-disk cell cache (:mod:`repro.experiments.cache`);
* :mod:`repro.experiments.figure2` -- the Figure 2 simulation (bi-criteria
  algorithm on a 100-machine cluster, parallel vs non-parallel workloads);
* :mod:`repro.experiments.ratio_checks` -- empirical verification of the
  approximation ratios stated in the paper (3/2 + eps, 3 + eps, 8 / 8.53,
  4 rho);
* :mod:`repro.experiments.reporting` -- ASCII tables / line plots and CSV
  export used by the examples and benchmarks.
"""

from repro.experiments.cache import ResultCache
from repro.experiments.executors import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.experiments.grid import Cell, CellOutcome, expand_grid
from repro.experiments.harness import (
    CellExecutionError,
    ExperimentResult,
    ExperimentRunner,
    run_experiment,
    sweep,
)
from repro.experiments.figure2 import (
    Figure2Config,
    Figure2Point,
    run_figure2,
    run_figure2_point,
)
from repro.experiments.ratio_checks import (
    check_mrt_ratio,
    check_batch_ratio,
    check_smart_ratio,
    check_bicriteria_ratio,
)
from repro.experiments.reporting import ascii_table, ascii_plot, to_csv

__all__ = [
    "Cell",
    "CellOutcome",
    "CellExecutionError",
    "Executor",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "ResultCache",
    "resolve_executor",
    "expand_grid",
    "run_experiment",
    "ExperimentRunner",
    "ExperimentResult",
    "sweep",
    "Figure2Config",
    "Figure2Point",
    "run_figure2",
    "run_figure2_point",
    "check_mrt_ratio",
    "check_batch_ratio",
    "check_smart_ratio",
    "check_bicriteria_ratio",
    "ascii_table",
    "ascii_plot",
    "to_csv",
]
