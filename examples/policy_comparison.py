#!/usr/bin/env python3
"""Which policy for which application?

The title question of the paper: different applications (workload shapes) and
different objectives call for different scheduling policies.  This example
runs a panel of policies on three application profiles and prints, for each
criterion, which policy wins -- reproducing the qualitative message of the
paper:

* makespan-oriented moldable scheduling  -> MRT dual approximation,
* (weighted) average completion time     -> SMART shelves / WSPT ordering,
* both at once                           -> the bi-criteria doubling batches,
* on-line arrival streams                -> batch transform / backfilling,
* bags of small independent runs         -> divisible-load style policies
  (see examples/divisible_load.py and the grid examples).

The (application, policy) panel runs through the parallel experiment
harness: every combination is one cell, so ``REPRO_JOBS=4`` fans the panel
out to four worker processes with identical results.

Run with:  python examples/policy_comparison.py
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.criteria import makespan, mean_stretch
from repro.core.job import Job
from repro.core.policies import (
    BatchOnlineScheduler,
    BiCriteriaScheduler,
    ConservativeBackfilling,
    EasyBackfilling,
    ListScheduler,
    MRTScheduler,
    SmartShelfScheduler,
)
from repro.experiments.harness import run_experiment
from repro.experiments.reporting import ascii_table
from repro.metrics.ratios import schedule_ratios
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import (
    WorkloadConfig,
    generate_moldable_jobs,
    generate_rigid_jobs,
)

MACHINES = 64

APPLICATIONS = ("moldable-batch", "rigid-weighted", "online-stream")

POLICY_PANEL = (
    "lpt",
    "wspt",
    "smart-shelves",
    "mrt",
    "bicriteria",
    "batch(mrt)",
    "conservative-bf",
    "easy-bf",
)


def make_application(application: str) -> List[Job]:
    """One of three application profiles inspired by the CIMENT communities."""

    if application == "moldable-batch":
        # Off-line moldable batch (e.g. a campaign of numerical simulations).
        return generate_moldable_jobs(
            60, MACHINES, config=WorkloadConfig(weight_scheme="work"), random_state=1
        )
    if application == "rigid-weighted":
        # Rigid production jobs with priorities (weighted completion time matters).
        return generate_rigid_jobs(
            80, MACHINES, config=WorkloadConfig(weight_scheme="random"), random_state=2
        )
    if application == "online-stream":
        # On-line stream of interactive / debug jobs (stretch matters).
        return poisson_arrivals(
            generate_moldable_jobs(
                60, MACHINES, config=WorkloadConfig(runtime_range=(0.5, 10.0)), random_state=3
            ),
            rate=2.0,
            random_state=3,
        )
    raise ValueError(f"unknown application {application!r}")


def make_policy(policy: str):
    return {
        "lpt": lambda: ListScheduler("lpt"),
        "wspt": lambda: ListScheduler("wspt"),
        "smart-shelves": SmartShelfScheduler,
        "mrt": MRTScheduler,
        "bicriteria": BiCriteriaScheduler,
        "batch(mrt)": lambda: BatchOnlineScheduler(MRTScheduler()),
        "conservative-bf": ConservativeBackfilling,
        "easy-bf": EasyBackfilling,
    }[policy]()


def run_panel_cell(seed: int, application: str, policy: str) -> Dict[str, object]:
    """One cell of the panel: one policy on one application profile."""

    jobs = make_application(application)
    scheduler = make_policy(policy)
    try:
        schedule = scheduler.schedule(jobs, MACHINES)
    except Exception as error:  # a policy may not support a job type
        return {"policy_name": scheduler.name, "error": str(error)[:40]}
    schedule.validate(check_release_dates=False)
    ratios = schedule_ratios(schedule, jobs, machine_count=MACHINES)
    return {
        "policy_name": scheduler.name,
        "makespan": makespan(schedule),
        "cmax_ratio": ratios.makespan_ratio,
        "sum_wC_ratio": ratios.weighted_completion_ratio,
        "mean_stretch": mean_stretch(schedule),
    }


def main() -> None:
    result = run_experiment(
        "policy-comparison",
        run_panel_cell,
        {"application": list(APPLICATIONS), "policy": list(POLICY_PANEL)},
        repetitions=1,
    )
    for application in APPLICATIONS:
        panel = result.filter(application=application).rows
        rows = [
            {key: row[key] for key in
             ("policy_name", "makespan", "cmax_ratio", "sum_wC_ratio", "mean_stretch")
             if key in row}
            | ({"error": row["error"]} if "error" in row else {})
            for row in panel
        ]
        n_jobs = len(make_application(application))
        print(ascii_table(rows, title=f"\n=== application: {application} "
                                      f"({n_jobs} jobs, {MACHINES} processors) ==="))
        numeric = [r for r in panel if "makespan" in r]
        best_cmax = min(numeric, key=lambda r: r["makespan"])["policy_name"]
        best_wc = min(numeric, key=lambda r: r["sum_wC_ratio"])["policy_name"]
        best_stretch = min(numeric, key=lambda r: r["mean_stretch"])["policy_name"]
        print(f"  best makespan            : {best_cmax}")
        print(f"  best weighted completion : {best_wc}")
        print(f"  best mean stretch        : {best_stretch}")


if __name__ == "__main__":
    main()
