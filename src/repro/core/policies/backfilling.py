"""Backfilling policies: the production-style baselines.

The paper mentions conservative backfilling as the mechanism used to "fill
the holes in the Gantt chart" with multi-parametric jobs (section 5.2).  The
local cluster schedulers of the grid simulators use one of the two standard
variants:

* **conservative backfilling** -- every job receives, at submission time, a
  start-time *reservation* at the earliest instant where it fits without
  delaying any previously reserved job.  Later jobs may therefore be placed
  in earlier holes, but never at the expense of earlier jobs;

* **EASY (aggressive) backfilling** -- only the job at the head of the queue
  receives a reservation; any other queued job may be started immediately if
  doing so does not delay that head-of-queue reservation.

Both implementations are *clairvoyant* (they trust the runtime estimates), as
assumed in section 2.2 ("we have an estimation of the characteristics of the
submitted jobs").  Moldable jobs are frozen to rigid ones by a
:class:`~repro.core.policies.base.MoldableAllocator` before queueing.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.allocation import Schedule, pack_contiguously
from repro.core.job import Job, validate_jobs
from repro.core.policies.base import (
    MoldableAllocator,
    ReleaseDateScheduler,
    SchedulerError,
)


# ---------------------------------------------------------------------------
# Availability profile
# ---------------------------------------------------------------------------


class AvailabilityProfile:
    """Piecewise-constant count of free processors over time.

    The profile starts with ``machine_count`` processors free from time 0 to
    infinity; booking a job carves processors out of the interval it
    occupies.  ``earliest_fit`` implements the core primitive of conservative
    backfilling: the earliest instant (not before ``ready``) at which
    ``nbproc`` processors are continuously free for ``duration`` time units.
    """

    def __init__(self, machine_count: int) -> None:
        if machine_count < 1:
            raise ValueError("machine_count must be >= 1")
        self.machine_count = machine_count
        # Sorted list of breakpoints [(time, free_from_time_on)], implicit
        # last segment extends to infinity.
        self._times: List[float] = [0.0]
        self._free: List[int] = [machine_count]

    # -- queries ---------------------------------------------------------------
    def free_at(self, time: float) -> int:
        idx = self._locate(time)
        return self._free[idx]

    def _locate(self, time: float) -> int:
        """Index of the segment containing ``time``."""

        lo, hi = 0, len(self._times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._times[mid] <= time + 1e-12:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def earliest_fit(self, ready: float, nbproc: int, duration: float) -> float:
        """Earliest start >= ready with ``nbproc`` processors free during the run."""

        if nbproc > self.machine_count:
            raise SchedulerError(
                f"request for {nbproc} processors on a {self.machine_count}-processor profile"
            )
        candidates = [ready] + [t for t in self._times if t > ready + 1e-12]
        for start in candidates:
            if self._fits(start, nbproc, duration):
                return start
        # The profile always ends with all processors free, so the last
        # breakpoint is always feasible; we never reach this point.
        raise AssertionError("no feasible start found (profile invariant broken)")

    def _fits(self, start: float, nbproc: int, duration: float) -> bool:
        end = start + duration
        idx = self._locate(start)
        while idx < len(self._times) and self._times[idx] < end - 1e-12:
            if self._free[idx] < nbproc:
                # Only segments overlapping [start, end) matter.
                seg_end = self._times[idx + 1] if idx + 1 < len(self._times) else math.inf
                if seg_end > start + 1e-12:
                    return False
            idx += 1
        return True

    # -- updates ---------------------------------------------------------------
    def book(self, start: float, duration: float, nbproc: int) -> None:
        """Remove ``nbproc`` processors from the profile during [start, start+duration)."""

        if duration <= 0:
            return
        end = start + duration
        self._insert_breakpoint(start)
        self._insert_breakpoint(end)
        for idx, t in enumerate(self._times):
            if start - 1e-12 <= t < end - 1e-12:
                self._free[idx] -= nbproc
                if self._free[idx] < -1e-9:
                    raise SchedulerError(
                        f"profile over-booked at time {t}: {self._free[idx]} processors free"
                    )
        # keep integer counts clean
        self._free = [max(0, int(round(f))) for f in self._free]

    def _insert_breakpoint(self, time: float) -> None:
        idx = self._locate(time)
        if abs(self._times[idx] - time) <= 1e-12:
            return
        self._times.insert(idx + 1, time)
        self._free.insert(idx + 1, self._free[idx])

    def breakpoints(self) -> List[Tuple[float, int]]:
        return list(zip(self._times, self._free))


# ---------------------------------------------------------------------------
# Conservative backfilling
# ---------------------------------------------------------------------------


class ConservativeBackfilling(ReleaseDateScheduler):
    """Conservative backfilling of rigid (or frozen moldable) jobs."""

    def __init__(self, allocator: Optional[MoldableAllocator] = None) -> None:
        self.allocator = allocator or MoldableAllocator("sequential")
        self.name = "conservative-backfilling"

    def schedule(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        profile = AvailabilityProfile(machine_count)
        placements: List[Tuple[Job, float, int]] = []
        # Jobs are processed in submission (release date) order, as in a real
        # batch system where the reservation is computed at submission time.
        for job in sorted(jobs, key=lambda j: (j.release_date, j.name)):
            nbproc = self.allocator.allocate(job, machine_count)
            duration = job.runtime(nbproc)
            start = profile.earliest_fit(job.release_date, nbproc, duration)
            profile.book(start, duration, nbproc)
            placements.append((job, start, nbproc))
        return pack_contiguously(machine_count, placements)


# ---------------------------------------------------------------------------
# EASY (aggressive) backfilling
# ---------------------------------------------------------------------------


class EasyBackfilling(ReleaseDateScheduler):
    """EASY backfilling: only the head of the queue holds a reservation.

    The schedule is built by simulating the queue: at every decision instant
    (a job arrival or a job completion) the policy starts the head of the
    queue if enough processors are free; otherwise it computes the *shadow
    time* (earliest time at which the head job will be able to start) and
    backfills any queued job that terminates before the shadow time or does
    not use the extra processors needed by the head job.
    """

    def __init__(self, allocator: Optional[MoldableAllocator] = None) -> None:
        self.allocator = allocator or MoldableAllocator("sequential")
        self.name = "easy-backfilling"

    def schedule(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        frozen = {
            job.name: (job, self.allocator.allocate(job, machine_count))
            for job in jobs
        }
        arrivals = sorted(jobs, key=lambda j: (j.release_date, j.name))
        pending = list(arrivals)
        queue: List[str] = []
        running: List[Tuple[float, str, int]] = []  # (end, name, nbproc)
        placements: List[Tuple[Job, float, int]] = []
        now = 0.0
        free = machine_count

        def start_job(name: str, time: float) -> None:
            nonlocal free
            job, nbproc = frozen[name]
            running.append((time + job.runtime(nbproc), name, nbproc))
            running.sort()
            placements.append((job, time, nbproc))
            free -= nbproc

        while pending or queue or running:
            # Advance the clock to the next event.
            next_times = []
            if pending:
                next_times.append(pending[0].release_date)
            if running:
                next_times.append(running[0][0])
            if not next_times:
                break
            now = max(now, min(next_times))
            # Process completions then arrivals at `now`.
            while running and running[0][0] <= now + 1e-12:
                _, name, nbproc = running.pop(0)
                free += nbproc
            while pending and pending[0].release_date <= now + 1e-12:
                queue.append(pending.pop(0).name)

            progressed = True
            while progressed and queue:
                progressed = False
                head_job, head_procs = frozen[queue[0]]
                if head_procs <= free:
                    start_job(queue.pop(0), now)
                    progressed = True
                    continue
                # Shadow time: when will the head job be able to start?
                shadow, extra = self._shadow(running, free, head_procs)
                # Try to backfill the remaining queued jobs.
                for name in list(queue[1:]):
                    job, nbproc = frozen[name]
                    if nbproc > free:
                        continue
                    finishes_before_shadow = now + job.runtime(nbproc) <= shadow + 1e-12
                    fits_in_extra = nbproc <= extra
                    if finishes_before_shadow or fits_in_extra:
                        queue.remove(name)
                        start_job(name, now)
                        if nbproc <= extra:
                            extra -= nbproc
                        progressed = True
        return pack_contiguously(machine_count, placements)

    @staticmethod
    def _shadow(
        running: Sequence[Tuple[float, str, int]], free: int, needed: int
    ) -> Tuple[float, int]:
        """(shadow time, extra processors) for the head-of-queue reservation."""

        available = free
        for end, _name, nbproc in sorted(running):
            if available >= needed:
                break
            available += nbproc
            shadow = end
        else:
            shadow = 0.0 if available >= needed else math.inf
        if available < needed:
            return math.inf, 0
        # After the shadow time the head job uses `needed` processors; the
        # extra processors are those left over which backfilled jobs may use
        # even beyond the shadow time.
        extra = available - needed
        return shadow if free < needed else 0.0, extra
