"""Length-prefixed JSON framing and payload encoding for the distributed runtime.

Every message on the wire is one *frame*: a 4-byte big-endian length header
followed by that many bytes of UTF-8 JSON encoding a single object with an
``"op"`` key.  JSON keeps the protocol inspectable (``tcpdump`` shows
readable envelopes) and versionable; fields that must carry arbitrary
Python objects -- the cell function, :class:`~repro.experiments.grid.Cell`
instances and :class:`~repro.experiments.grid.CellOutcome` results -- are
pickled and base64-embedded via :func:`encode_payload` /
:func:`decode_payload`.

This module owns the *format* only; transport lives in the pluggable comm
layer (:mod:`repro.distributed.comm`): the ``tcp://`` backend frames
asyncio streams with these helpers, the ``inproc://`` backend reuses the
same envelope checks without sockets, and the synchronous
:func:`send_message` / :func:`recv_message` pair remains for plain-socket
peers (tests drive the scheduler through raw sockets to prove the wire
format did not drift).

Message vocabulary (all envelopes carry ``"op"``):

=============  =========  ==================================================
op             direction  meaning
=============  =========  ==================================================
``hello``      w -> s     register; carries ``worker`` (the worker's id)
``welcome``    s -> w     registration ack; carries ``heartbeat_interval``
                          and ``telemetry`` (whether the scheduler wants
                          span capture + forwarding)
``request``    w -> s     pull work (also refreshes the heartbeat)
``task``       s -> w     a cell assignment: ``campaign``, ``index``,
                          ``attempt``, ``cell`` payload, optional ``extra``
                          prefetched assignments, plus ``fn`` payload the
                          first time this connection sees the campaign
``idle``       s -> w     no work right now; retry after ``delay`` seconds
``result``     w -> s     a finished cell: ``campaign``, ``index``,
                          ``attempt``, ``outcome`` payload (no ack)
``heartbeat``  w -> s     I-am-alive while executing a long cell (no ack)
``revoke``     s -> w     give still-queued assignments ``indices`` of
                          ``campaign`` back (an idle worker wants to steal)
``revoked``    w -> s     steal confirmation: ``indices`` were still queued
                          and dropped, ``kept`` had already started
``cancel``     s -> w     assignment (``index``, ``attempt``) lost the
                          speculative race; skip it / don't bother replying
``telemetry``  w -> s     batched local telemetry events: ``worker``,
                          ``events`` (list of ``{topic, seq, time,
                          payload}``), ``dropped`` (local overflow count);
                          additive and fire-and-forget -- re-published on
                          the scheduler bus under ``worker.<id>.*`` (no ack)
``bye``        w -> s     orderly disconnect
=============  =========  ==================================================

The frame-size guard defaults to 64 MB and is configurable through the
``REPRO_MAX_FRAME`` environment variable (bytes); oversized frames are
rejected with the actual size and the active limit in the message.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import socket
import struct
from typing import Any, Dict, Mapping, Tuple

from repro.distributed.comm.core import (
    CommClosedError,
    CommError,
    get_backend,
    split_address,
)

#: Default upper bound on a single frame; anything larger is treated as
#: stream corruption rather than a legitimate message.  Override through
#: :data:`MAX_FRAME_ENV_VAR`.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Environment variable overriding the frame limit (integer, bytes).
MAX_FRAME_ENV_VAR = "REPRO_MAX_FRAME"

_HEADER = struct.Struct(">I")

#: The scheme of the socket transport (kept for back-compat; the comm
#: registry in :mod:`repro.distributed.comm.core` is the source of truth).
SCHEME = "tcp"


class ProtocolError(CommError):
    """The byte stream does not follow the framing protocol."""


class ConnectionClosed(ProtocolError, CommClosedError):
    """The peer closed the connection (cleanly or not) mid-conversation."""


def max_frame_bytes() -> int:
    """The active frame limit: ``REPRO_MAX_FRAME`` or the 64 MB default."""

    raw = os.environ.get(MAX_FRAME_ENV_VAR, "").strip()
    if not raw:
        return MAX_FRAME_BYTES
    try:
        limit = int(raw)
    except ValueError:
        raise ProtocolError(
            f"{MAX_FRAME_ENV_VAR}={raw!r} is not an integer byte count"
        ) from None
    if limit <= 0:
        raise ProtocolError(f"{MAX_FRAME_ENV_VAR}={raw!r} must be a positive byte count")
    return limit


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``tcp://HOST:PORT`` address into ``(host, port)``.

    Scheme-aware: an address with an unregistered scheme fails naming the
    registered ones, and a registered-but-non-tcp address (``inproc://``)
    explains that this API needs a socket address.  Raises
    :class:`ValueError` in both cases, so executor-spec and CLI errors stay
    friendly.
    """

    scheme, location = split_address(address)
    get_backend(scheme)  # unknown scheme -> UnknownSchemeError naming the menu
    if scheme != SCHEME:
        raise ValueError(
            f"address {address!r} uses the {scheme}:// scheme, but this API "
            f"needs a socket address of the form tcp://HOST:PORT"
        )
    return parse_host_port(location, address)


def parse_host_port(location: str, address: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (the location part of a tcp address)."""

    host, sep, port_text = location.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad address {address!r}: expected 'tcp://HOST:PORT' with an "
            f"explicit port (use port 0 to bind an ephemeral port)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad address {address!r}: port {port_text!r} is not an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bad address {address!r}: port must be in [0, 65535]")
    return host, port


def format_address(host: str, port: int) -> str:
    return f"{SCHEME}://{host}:{port}"


# -- frame encoding (shared by the sync socket path and the comm backends) ---


def dump_frame(message: Mapping[str, Any]) -> bytes:
    """Serialise one envelope to JSON bytes, enforcing the frame limit."""

    blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
    limit = max_frame_bytes()
    if len(blob) > limit:
        raise ProtocolError(
            f"message of {len(blob):,} bytes exceeds the {limit:,}-byte frame "
            f"limit (set {MAX_FRAME_ENV_VAR} to raise it)"
        )
    return blob


def check_frame_length(length: int) -> None:
    """Reject an inbound frame header that exceeds the active limit."""

    limit = max_frame_bytes()
    if length > limit:
        raise ProtocolError(
            f"frame of {length:,} bytes exceeds the {limit:,}-byte limit "
            f"(corrupt stream? set {MAX_FRAME_ENV_VAR} to raise the limit)"
        )


def load_frame(blob: bytes) -> Dict[str, Any]:
    """Decode one frame body into an op envelope, or raise loudly."""

    try:
        message = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError(f"frame is not an op envelope: {message!r}")
    return message


def pack_header(length: int) -> bytes:
    return _HEADER.pack(length)


def header_size() -> int:
    return _HEADER.size


def unpack_header(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    return length


# -- synchronous socket framing (plain-socket peers and wire-format tests) ---


def send_message(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Serialise ``message`` as one frame and write it out completely."""

    blob = dump_frame(message)
    try:
        sock.sendall(_HEADER.pack(len(blob)) + blob)
    except (BrokenPipeError, ConnectionResetError) as error:
        raise ConnectionClosed(f"peer went away while sending: {error}") from error


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read exactly one frame and decode it; raises on EOF or corruption."""

    header = _recv_exact(sock, _HEADER.size)
    length = unpack_header(header)
    check_frame_length(length)
    return load_frame(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionResetError, ConnectionAbortedError) as error:
            raise ConnectionClosed(f"peer reset the connection: {error}") from error
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- payload encoding --------------------------------------------------------


def encode_payload(obj: Any) -> str:
    """Pickle an arbitrary Python object into a JSON-safe ASCII string."""

    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_payload(text: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as error:  # unpicklable payloads must fail loudly, typed
        raise ProtocolError(f"cannot decode payload: {type(error).__name__}: {error}") from error
