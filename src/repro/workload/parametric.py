"""Multi-parametric job generation (section 5.2).

"A majority of the jobs submitted in this context are multi-parametric jobs.
Such a job consists of a large number (up to several hundreds of thousands)
of runs of the same program, each having different parameters.  Each run
takes a relatively short time to complete, this time being often the same for
every run."

These bags are the *grid* jobs of the centralized organisation: the central
server submits their individual runs as best-effort tasks on the local
clusters.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.core.job import ParametricSweep

RandomState = Union[int, np.random.Generator, None]


def _rng(random_state: RandomState) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def generate_parametric_bags(
    n_bags: int,
    *,
    runs_range: Tuple[int, int] = (100, 2000),
    run_time_range: Tuple[float, float] = (0.5, 5.0),
    owner: str = "grid",
    release_spread: float = 0.0,
    random_state: RandomState = None,
    name_prefix: str = "sweep",
) -> List[ParametricSweep]:
    """Random multi-parametric bags.

    Parameters
    ----------
    runs_range:
        Inclusive range of the number of runs per bag (log-uniform draw).
    run_time_range:
        Range of the per-run duration (uniform draw); every run of a bag has
        the same duration, as described in the paper.
    release_spread:
        Bags receive release dates uniformly in ``[0, release_spread]``
        (0 = all available immediately).
    """

    if n_bags < 0:
        raise ValueError("n_bags must be >= 0")
    lo_r, hi_r = runs_range
    if lo_r < 1 or hi_r < lo_r:
        raise ValueError("invalid runs_range")
    lo_t, hi_t = run_time_range
    if lo_t <= 0 or hi_t < lo_t:
        raise ValueError("invalid run_time_range")
    if release_spread < 0:
        raise ValueError("release_spread must be >= 0")
    rng = _rng(random_state)
    bags: List[ParametricSweep] = []
    for i in range(n_bags):
        n_runs = int(round(math.exp(rng.uniform(math.log(lo_r), math.log(hi_r)))))
        n_runs = max(lo_r, min(hi_r, n_runs))
        run_time = float(rng.uniform(lo_t, hi_t))
        release = float(rng.uniform(0.0, release_spread)) if release_spread > 0 else 0.0
        bags.append(
            ParametricSweep(
                name=f"{name_prefix}-{i:04d}",
                n_runs=n_runs,
                run_time=run_time,
                owner=owner,
                release_date=release,
            )
        )
    return bags


def total_runs(bags: Sequence[ParametricSweep]) -> int:
    """Total number of elementary runs across the bags."""

    return sum(bag.n_runs for bag in bags)


def total_work(bags: Sequence[ParametricSweep]) -> float:
    """Total processor-time of the bags on a reference processor."""

    return sum(bag.total_work for bag in bags)
