"""Unit tests of the speedup / penalty models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import MoldableJob
from repro.core.speedup import (
    AmdahlSpeedup,
    CommunicationPenaltySpeedup,
    LinearSpeedup,
    PowerLawSpeedup,
    RooflineSpeedup,
    efficiency,
    make_runtime_table,
    optimal_allocation,
)


class TestLinearSpeedup:
    def test_values(self):
        model = LinearSpeedup()
        assert model(1) == 1.0
        assert model(8) == 8.0

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            LinearSpeedup()(0)


class TestAmdahlSpeedup:
    def test_limits(self):
        model = AmdahlSpeedup(serial_fraction=0.5)
        assert model(1) == pytest.approx(1.0)
        # Infinite processors -> speedup tends to 1 / serial_fraction = 2
        assert model(10_000) == pytest.approx(2.0, rel=1e-3)

    def test_zero_serial_fraction_is_linear(self):
        model = AmdahlSpeedup(serial_fraction=0.0)
        assert model(16) == pytest.approx(16.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            AmdahlSpeedup(serial_fraction=1.5)


class TestPowerLawSpeedup:
    def test_values(self):
        model = PowerLawSpeedup(alpha=0.5)
        assert model(1) == pytest.approx(1.0)
        assert model(4) == pytest.approx(2.0)

    def test_alpha_one_is_linear(self):
        assert PowerLawSpeedup(alpha=1.0)(7) == pytest.approx(7.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            PowerLawSpeedup(alpha=-0.1)
        with pytest.raises(ValueError):
            PowerLawSpeedup(alpha=1.1)


class TestCommunicationPenaltySpeedup:
    def test_speedup_is_clamped_to_maximum(self):
        model = CommunicationPenaltySpeedup(overhead_fraction=0.1)
        values = [model(k) for k in range(1, 30)]
        # Clamped model is non-decreasing even past the optimal processor count.
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_unclamped_model_eventually_degrades(self):
        model = CommunicationPenaltySpeedup(overhead_fraction=0.1, clamp=False)
        assert model.raw_speedup(30) < model.raw_speedup(3)

    def test_zero_overhead_is_linear(self):
        model = CommunicationPenaltySpeedup(overhead_fraction=0.0)
        assert model(8) == pytest.approx(8.0)


class TestRooflineSpeedup:
    def test_plateau(self):
        model = RooflineSpeedup(max_parallelism=4)
        assert model(2) == 2.0
        assert model(4) == 4.0
        assert model(64) == 4.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            RooflineSpeedup(max_parallelism=0)


class TestMakeRuntimeTable:
    def test_linear_table(self):
        table = make_runtime_table(12.0, 4, LinearSpeedup())
        assert table == pytest.approx([12.0, 6.0, 4.0, 3.0])

    def test_tables_are_monotonic_for_all_models(self):
        models = [
            LinearSpeedup(),
            AmdahlSpeedup(0.2),
            PowerLawSpeedup(0.6),
            CommunicationPenaltySpeedup(0.05),
            RooflineSpeedup(6),
        ]
        for model in models:
            table = make_runtime_table(10.0, 16, model)
            assert all(b <= a + 1e-12 for a, b in zip(table, table[1:]))
            # and they can build a valid MoldableJob (work monotony holds too)
            MoldableJob(name="ok", runtimes=table)

    def test_repair_monotony(self):
        # A pathological model whose speedup decreases: repair keeps runtimes flat.
        table = make_runtime_table(10.0, 3, lambda k: 1.0 / k, repair_monotony=True)
        assert table == pytest.approx([10.0, 10.0, 10.0])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_runtime_table(0.0, 4, LinearSpeedup())
        with pytest.raises(ValueError):
            make_runtime_table(1.0, 0, LinearSpeedup())


class TestHelpers:
    def test_efficiency(self):
        assert efficiency(LinearSpeedup(), 8) == pytest.approx(1.0)
        assert efficiency(AmdahlSpeedup(0.5), 4) < 0.5

    def test_optimal_allocation_roofline(self):
        assert optimal_allocation(10.0, 16, RooflineSpeedup(4)) == 4

    def test_optimal_allocation_linear(self):
        assert optimal_allocation(10.0, 16, LinearSpeedup()) == 16


@settings(max_examples=50, deadline=None)
@given(
    serial=st.floats(min_value=0.0, max_value=1.0),
    seq=st.floats(min_value=0.1, max_value=1000.0),
    max_procs=st.integers(min_value=1, max_value=64),
)
def test_amdahl_tables_always_yield_valid_moldable_jobs(serial, seq, max_procs):
    """Property: any Amdahl profile is monotonic and accepted by MoldableJob."""

    table = make_runtime_table(seq, max_procs, AmdahlSpeedup(serial))
    job = MoldableJob(name="prop", runtimes=table)
    assert job.best_runtime() <= job.sequential_time() + 1e-12
    assert job.min_work() >= seq * (1 - 1e-9)


@settings(max_examples=50, deadline=None)
@given(
    alpha=st.floats(min_value=0.0, max_value=1.0),
    nbproc=st.integers(min_value=1, max_value=128),
)
def test_power_law_speedup_bounded_by_processor_count(alpha, nbproc):
    """Property: 1 <= speedup(k) <= k for every power-law exponent in [0, 1]."""

    speedup = PowerLawSpeedup(alpha)(nbproc)
    assert 1.0 - 1e-12 <= speedup <= nbproc + 1e-12
