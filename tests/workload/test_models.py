"""Unit tests of the synthetic workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import MoldableJob, RigidJob
from repro.workload.models import (
    WorkloadConfig,
    figure2_workload,
    generate_mixed_jobs,
    generate_moldable_jobs,
    generate_rigid_jobs,
)


class TestWorkloadConfig:
    def test_defaults_are_valid(self):
        WorkloadConfig()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            WorkloadConfig(runtime_range=(0.0, 10.0))
        with pytest.raises(ValueError):
            WorkloadConfig(runtime_range=(10.0, 1.0))
        with pytest.raises(ValueError):
            WorkloadConfig(weight_scheme="priority")
        with pytest.raises(ValueError):
            WorkloadConfig(sequential_fraction=2.0)


class TestRigidGenerator:
    def test_reproducible_with_seed(self):
        a = generate_rigid_jobs(20, 16, random_state=5)
        b = generate_rigid_jobs(20, 16, random_state=5)
        assert [(j.nbproc, j.duration) for j in a] == [(j.nbproc, j.duration) for j in b]

    def test_respects_platform_size_and_runtime_range(self):
        config = WorkloadConfig(runtime_range=(2.0, 20.0))
        jobs = generate_rigid_jobs(200, 32, config=config, random_state=1)
        assert all(1 <= j.nbproc <= 32 for j in jobs)
        assert all(2.0 <= j.duration <= 20.0 for j in jobs)

    def test_max_procs_cap(self):
        jobs = generate_rigid_jobs(100, 64, max_procs=4, random_state=2)
        assert all(j.nbproc <= 4 for j in jobs)

    def test_weight_schemes(self):
        unit = generate_rigid_jobs(10, 8, config=WorkloadConfig(weight_scheme="unit"),
                                   random_state=3)
        assert all(j.weight == 1.0 for j in unit)
        work = generate_rigid_jobs(10, 8, config=WorkloadConfig(weight_scheme="work"),
                                   random_state=3)
        for job in work:
            assert job.weight == pytest.approx(job.duration * job.nbproc)

    def test_zero_jobs(self):
        assert generate_rigid_jobs(0, 8) == []
        with pytest.raises(ValueError):
            generate_rigid_jobs(-1, 8)


class TestMoldableGenerator:
    def test_profiles_are_monotonic_and_within_platform(self):
        jobs = generate_moldable_jobs(100, 16, random_state=4)
        for job in jobs:
            assert isinstance(job, MoldableJob)
            assert job.max_procs <= 16
            # MoldableJob enforces monotony at construction; spot-check anyway.
            assert job.best_runtime() <= job.sequential_time() + 1e-12

    def test_sequential_fraction_one_gives_sequential_jobs(self):
        config = WorkloadConfig(sequential_fraction=1.0)
        jobs = generate_moldable_jobs(30, 16, config=config, random_state=5)
        assert all(job.max_procs == 1 for job in jobs)

    def test_reproducible(self):
        a = generate_moldable_jobs(15, 8, random_state=9)
        b = generate_moldable_jobs(15, 8, random_state=9)
        assert [j.runtimes for j in a] == [j.runtimes for j in b]


class TestMixedGenerator:
    def test_rigid_fraction(self):
        jobs = generate_mixed_jobs(40, 16, rigid_fraction=0.25, random_state=6)
        rigid = [j for j in jobs if isinstance(j, RigidJob)]
        assert len(rigid) == 10
        assert len(jobs) == 40

    def test_names_are_unique(self):
        jobs = generate_mixed_jobs(50, 8, random_state=7)
        assert len({j.name for j in jobs}) == 50

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            generate_mixed_jobs(10, 8, rigid_fraction=1.5)


class TestFigure2Workload:
    def test_non_parallel_family_is_sequential(self):
        jobs = figure2_workload(50, 100, family="non_parallel", random_state=1)
        assert all(job.max_procs == 1 for job in jobs)

    def test_parallel_family_has_parallel_jobs(self):
        jobs = figure2_workload(50, 100, family="parallel", random_state=1)
        assert any(job.max_procs > 1 for job in jobs)
        assert all(job.max_procs <= 100 for job in jobs)

    def test_weights_follow_work_by_default(self):
        jobs = figure2_workload(20, 100, family="parallel", random_state=2)
        for job in jobs:
            assert job.weight == pytest.approx(job.sequential_time())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            figure2_workload(10, 100, family="hybrid")


@settings(max_examples=25, deadline=None)
@given(
    n_jobs=st.integers(min_value=0, max_value=50),
    machines=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_generators_always_produce_schedulable_jobs(n_jobs, machines, seed):
    """Property: generated jobs always fit the platform they were generated for."""

    moldable = generate_moldable_jobs(n_jobs, machines, random_state=seed)
    rigid = generate_rigid_jobs(n_jobs, machines, random_state=seed)
    assert len(moldable) == n_jobs
    assert len(rigid) == n_jobs
    assert all(j.min_procs <= machines for j in moldable)
    assert all(j.nbproc <= machines for j in rigid)
    assert len({j.name for j in moldable + rigid}) == 2 * n_jobs
