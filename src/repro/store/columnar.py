"""Columnar campaign store: Parquet partitions behind an atomic manifest.

One store directory holds the rows of any number of *campaigns* (a labelled
run of one or more scenario sweeps).  Rows land in part files partitioned by
``campaign / scenario / fingerprint``::

    <root>/manifest.json
    <root>/campaign=serial/scenario=fig2.bicriteria/fingerprint=ab12cd34/part-00000.parquet
    <root>/campaign=inproc/scenario=fig2.bicriteria/fingerprint=ab12cd34/part-00000.parquet

Part files are written whole (temp file + ``os.replace``) and only become
visible once the manifest -- itself replaced atomically -- references them,
so a crashed run never leaves a torn store: readers see either the old or
the new manifest, and orphaned part files are ignored.

Every record carries the exact result row as a ``row_json`` string (the
bit-identity channel) *plus* promoted native columns for each scalar value
(the SQL channel -- what DuckDB aggregates without JSON unpacking), and is
keyed by :func:`repro.experiments.grid.cell_key` + the run-function
fingerprint, the same dedup keying the result cache and the campaign
journal use.  Appending the same cell to the same campaign twice is a
counted no-op.

Parquet needs the optional ``pyarrow`` dependency (the ``[analytics]``
extra); without it the store transparently falls back to JSONL part files
with the identical record layout, so every query -- SQL or pure-python --
works on both formats.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.experiments.cache import encode_replayable
from repro.experiments.grid import Cell, CellOutcome, cell_key
from repro.store.api import StoreUnavailableError, compose_row, json_stable

MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA = "repro.store/1"

#: Record columns owned by the store (everything else is a promoted row key).
META_COLUMNS = (
    "campaign", "scenario", "fingerprint", "key", "row_index",
    "seed", "repetition", "elapsed_seconds", "replayed", "row_json",
)

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def _safe(name: str) -> str:
    return _SAFE.sub("_", name) or "_"


def _pyarrow():
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401

        return pyarrow
    except ImportError:
        return None


def default_format() -> str:
    """``parquet`` when pyarrow is importable, else the pure-python ``jsonl``."""

    return "parquet" if _pyarrow() is not None else "jsonl"


def normalize_columns(
    records: List[Dict[str, Any]], columns: Sequence[str]
) -> List[Dict[str, Any]]:
    """Make each column's values type-consistent for columnar encoding.

    Within one batch a column mixing ints and floats is widened to float;
    a column mixing incompatible types (e.g. numbers and strings from an
    ``error`` axis) is stringified.  ``row_json`` always holds the exact
    values, so normalisation only affects the promoted SQL columns.
    """

    for column in columns:
        kinds = set()
        for record in records:
            value = record.get(column)
            if value is None:
                continue
            if isinstance(value, bool):
                kinds.add("bool")
            elif isinstance(value, int):
                kinds.add("int")
            elif isinstance(value, float):
                kinds.add("float")
            else:
                kinds.add("str")
        if kinds <= {"int"} or kinds <= {"float"} or kinds <= {"bool"} or kinds <= {"str"}:
            continue
        if kinds <= {"int", "float"}:
            for record in records:
                if isinstance(record.get(column), (int, float)):
                    record[column] = float(record[column])
        else:
            for record in records:
                if record.get(column) is not None:
                    record[column] = str(record[column])
    return records


def promote_scalars(row: Mapping[str, Any]) -> Dict[str, Any]:
    """The SQL-queryable columns of a row: scalar values, minus reserved names.

    Non-scalar values (lists, nested dicts) stay in ``row_json`` only;
    ``experiment`` and ``seed`` are already meta columns.
    """

    promoted: Dict[str, Any] = {}
    for name, value in row.items():
        if name in META_COLUMNS or name == "experiment":
            continue
        if value is None or isinstance(value, (bool, int, float, str)):
            promoted[name] = value
    return promoted


@dataclass
class StoreStats:
    appended: int = 0
    duplicates: int = 0   # same (campaign, key) appended again: dropped
    skipped: int = 0      # rows that do not survive a JSON round-trip
    flushes: int = 0
    parts_written: int = 0


@dataclass(frozen=True)
class Partition:
    """One immutable part file referenced by the manifest."""

    campaign: str
    scenario: str
    fingerprint: str
    path: str            # relative to the store root
    format: str          # "parquet" | "jsonl"
    rows: int
    min_index: int
    max_index: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "scenario": self.scenario,
            "fingerprint": self.fingerprint,
            "path": self.path,
            "format": self.format,
            "rows": self.rows,
            "min_index": self.min_index,
            "max_index": self.max_index,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Partition":
        return cls(
            campaign=str(payload["campaign"]),
            scenario=str(payload["scenario"]),
            fingerprint=str(payload.get("fingerprint", "")),
            path=str(payload["path"]),
            format=str(payload.get("format", "jsonl")),
            rows=int(payload.get("rows", 0)),
            min_index=int(payload.get("min_index", 0)),
            max_index=int(payload.get("max_index", 0)),
        )


@dataclass
class _Buffer:
    records: List[Dict[str, Any]] = field(default_factory=list)


class CampaignStore:
    """A directory of columnar campaign results (RowSink + RowSource).

    Parameters
    ----------
    root:
        Store directory (created on first flush).
    campaign:
        Campaign label new rows are filed under; cross-campaign queries
        compare these labels.
    fmt:
        Part-file format, ``"parquet"`` or ``"jsonl"``; defaults to parquet
        when pyarrow is available.  A store may mix formats across part
        files -- each manifest entry records its own.
    flush_rows:
        Auto-flush threshold: buffered records are landed once this many
        accumulate (and always on :meth:`flush` / :meth:`close`).
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        campaign: str = "default",
        fmt: Optional[str] = None,
        flush_rows: int = 2048,
    ) -> None:
        if fmt not in (None, "parquet", "jsonl"):
            raise ValueError(f"unknown store format {fmt!r}; expected 'parquet' or 'jsonl'")
        if fmt == "parquet" and _pyarrow() is None:
            raise StoreUnavailableError("parquet part files", "pyarrow")
        self.root = Path(root)
        self.campaign = campaign
        self.format = fmt or default_format()
        self.flush_rows = flush_rows
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._buffers: Dict[Tuple[str, str, str], _Buffer] = {}
        self._buffered = 0
        self._keys: Optional[Set[Tuple[str, str]]] = None      # (campaign, key)
        self._next_index: Dict[Tuple[str, str], int] = {}      # (campaign, scenario)

    def __repr__(self) -> str:
        return f"CampaignStore({str(self.root)!r}, campaign={self.campaign!r}, format={self.format!r})"

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def manifest(self) -> Dict[str, Any]:
        try:
            payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {"schema": MANIFEST_SCHEMA, "partitions": []}
        if not isinstance(payload, dict):
            return {"schema": MANIFEST_SCHEMA, "partitions": []}
        payload.setdefault("partitions", [])
        return payload

    def partitions(
        self, *, campaign: Optional[str] = None, scenario: Optional[str] = None
    ) -> List[Partition]:
        parts = [Partition.from_dict(entry) for entry in self.manifest()["partitions"]]
        if campaign is not None:
            parts = [p for p in parts if p.campaign == campaign]
        if scenario is not None:
            parts = [p for p in parts if p.scenario == scenario]
        return parts

    def campaigns(self) -> List[str]:
        return sorted({p.campaign for p in self.partitions()})

    def scenarios(self, campaign: Optional[str] = None) -> List[str]:
        return sorted({p.scenario for p in self.partitions(campaign=campaign)})

    def files_by_format(self) -> Dict[str, List[Path]]:
        """Manifest-referenced part files grouped by format (for SQL views)."""

        grouped: Dict[str, List[Path]] = {}
        for part in self.partitions():
            grouped.setdefault(part.format, []).append(self.root / part.path)
        return grouped

    def _write_manifest(self, payload: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".manifest.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp, self.manifest_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- write half (RowSink) ----------------------------------------------

    def write(self, experiment: str, cell: Cell, outcome: CellOutcome, version: str = "") -> bool:
        """Persist one completed cell (the :class:`~repro.store.api.RowSink` hook).

        Shares the replayability rule of the cache and the journal: only
        outcomes whose metrics survive a JSON round-trip unchanged land, so
        replayed rows stay bit-identical.
        """

        if encode_replayable(outcome) is None:
            self.stats.skipped += 1
            return False
        row = compose_row(experiment, cell, outcome)
        return self.append_row(
            row,
            scenario=experiment,
            key=cell_key(experiment, cell, version),
            fingerprint=version,
            seed=cell.seed,
            repetition=cell.repetition,
            elapsed_seconds=outcome.elapsed_seconds,
            replayed=outcome.cached,
        )

    def append_row(
        self,
        row: Mapping[str, Any],
        *,
        scenario: str,
        key: Optional[str] = None,
        campaign: Optional[str] = None,
        fingerprint: str = "",
        seed: Optional[int] = None,
        repetition: Optional[int] = None,
        elapsed_seconds: float = 0.0,
        replayed: bool = False,
    ) -> bool:
        """Append one result row (lower-level than :meth:`write`; used by ingest)."""

        row = dict(row)
        if not json_stable(row):
            self.stats.skipped += 1
            return False
        campaign = campaign if campaign is not None else self.campaign
        if key is None:
            blob = json.dumps([campaign, scenario, row], sort_keys=True)
            import hashlib

            key = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        with self._lock:
            known = self._known_keys()
            if (campaign, key) in known:
                self.stats.duplicates += 1
                return False
            known.add((campaign, key))
            index = self._take_index(campaign, scenario)
            record: Dict[str, Any] = {
                "campaign": campaign,
                "scenario": scenario,
                "fingerprint": fingerprint,
                "key": key,
                "row_index": index,
                "seed": seed if seed is not None else row.get("seed"),
                "repetition": repetition,
                "elapsed_seconds": float(elapsed_seconds),
                "replayed": bool(replayed),
                "row_json": json.dumps(row),
            }
            record.update(promote_scalars(row))
            buffer = self._buffers.setdefault((campaign, scenario, fingerprint), _Buffer())
            buffer.records.append(record)
            self._buffered += 1
            self.stats.appended += 1
            should_flush = self._buffered >= self.flush_rows
        if should_flush:
            self.flush()
        return True

    def _known_keys(self) -> Set[Tuple[str, str]]:
        if self._keys is None:
            keys: Set[Tuple[str, str]] = set()
            for record in self._stored_records():
                keys.add((record["campaign"], record["key"]))
            self._keys = keys
        return self._keys

    def _take_index(self, campaign: str, scenario: str) -> int:
        slot = (campaign, scenario)
        if slot not in self._next_index:
            top = -1
            for part in self.partitions(campaign=campaign, scenario=scenario):
                top = max(top, part.max_index)
            self._next_index[slot] = top + 1
        index = self._next_index[slot]
        self._next_index[slot] = index + 1
        return index

    def flush(self) -> None:
        """Land every buffered record in part files and publish the manifest."""

        with self._lock:
            buffers = {k: b for k, b in self._buffers.items() if b.records}
            self._buffers = {}
            self._buffered = 0
            if not buffers:
                return
            manifest = self.manifest()
            existing = [Partition.from_dict(e) for e in manifest["partitions"]]
            sequence: Dict[Tuple[str, str, str], int] = {}
            for part in existing:
                slot = (part.campaign, part.scenario, part.fingerprint)
                sequence[slot] = max(sequence.get(slot, 0), self._part_number(part.path) + 1)
            for (campaign, scenario, fingerprint), buffer in sorted(buffers.items()):
                number = sequence.get((campaign, scenario, fingerprint), 0)
                partition = self._write_part(
                    campaign, scenario, fingerprint, number, buffer.records
                )
                existing.append(partition)
                self.stats.parts_written += 1
            manifest["schema"] = MANIFEST_SCHEMA
            manifest["format"] = self.format
            manifest["partitions"] = [p.as_dict() for p in existing]
            self._write_manifest(manifest)
            self.stats.flushes += 1

    @staticmethod
    def _part_number(path: str) -> int:
        stem = Path(path).stem  # part-00012
        try:
            return int(stem.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _write_part(
        self,
        campaign: str,
        scenario: str,
        fingerprint: str,
        number: int,
        records: List[Dict[str, Any]],
    ) -> Partition:
        suffix = "parquet" if self.format == "parquet" else "jsonl"
        relative = (
            Path(f"campaign={_safe(campaign)}")
            / f"scenario={_safe(scenario)}"
            / f"fingerprint={_safe(fingerprint) if fingerprint else 'none'}"
            / f"part-{number:05d}.{suffix}"
        )
        target = self.root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        columns = self._record_columns(records)
        fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".part.tmp")
        try:
            if self.format == "parquet":
                os.close(fd)
                self._write_parquet_file(tmp, records, columns)
            else:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for record in records:
                        handle.write(json.dumps(record, default=repr) + "\n")
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        indices = [record["row_index"] for record in records]
        return Partition(
            campaign=campaign,
            scenario=scenario,
            fingerprint=fingerprint,
            path=str(relative),
            format=self.format,
            rows=len(records),
            min_index=min(indices),
            max_index=max(indices),
        )

    @staticmethod
    def _record_columns(records: Sequence[Mapping[str, Any]]) -> List[str]:
        columns = list(META_COLUMNS)
        seen = set(columns)
        for record in records:
            for name in record:
                if name not in seen:
                    seen.add(name)
                    columns.append(name)
        return columns

    @staticmethod
    def _write_parquet_file(
        path: str, records: List[Dict[str, Any]], columns: List[str]
    ) -> None:
        pa = _pyarrow()
        if pa is None:  # pragma: no cover - guarded at construction
            raise StoreUnavailableError("parquet part files", "pyarrow")
        import pyarrow.parquet as pq

        flat = [{column: record.get(column) for column in columns} for record in records]
        table = pa.Table.from_pylist(normalize_columns(flat, columns))
        pq.write_table(table, path)

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- read half (RowSource + iteration) ---------------------------------

    def _read_part(self, part: Partition) -> List[Dict[str, Any]]:
        path = self.root / part.path
        if part.format == "parquet":
            pa = _pyarrow()
            if pa is None:
                raise StoreUnavailableError(
                    f"reading parquet partition {part.path}", "pyarrow"
                )
            import pyarrow.parquet as pq

            return pq.read_table(str(path)).to_pylist()
        records = []
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
        return records

    def _stored_records(
        self, *, campaign: Optional[str] = None, scenario: Optional[str] = None
    ) -> Iterator[Dict[str, Any]]:
        for part in self.partitions(campaign=campaign, scenario=scenario):
            for record in self._read_part(part):
                yield record

    def records(
        self, *, campaign: Optional[str] = None, scenario: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Every landed record (flat meta + promoted columns + ``row_json``).

        Ordered by (campaign, scenario, row_index): the exact append order
        within each sweep, regardless of how records are spread over parts.
        Buffered-but-unflushed records are not visible -- call
        :meth:`flush` first.
        """

        loaded = list(self._stored_records(campaign=campaign, scenario=scenario))
        loaded.sort(key=lambda r: (r.get("campaign", ""), r.get("scenario", ""),
                                   int(r.get("row_index", 0))))
        return loaded

    def rows(
        self, *, campaign: Optional[str] = None, scenario: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The exact result rows (decoded ``row_json``), in append order."""

        return [json.loads(r["row_json"]) for r in self.records(campaign=campaign,
                                                                scenario=scenario)]

    def replay(self, experiment: str, cell: Cell, version: str = "") -> Optional[CellOutcome]:
        """Rebuild the persisted outcome of ``cell`` (``cached=True``), or ``None``."""

        wanted = cell_key(experiment, cell, version)
        for record in self._stored_records(scenario=experiment):
            if record.get("key") != wanted:
                continue
            row = json.loads(record["row_json"])
            skip = set(cell.params_dict) | {"experiment", "seed"}
            metrics = {name: value for name, value in row.items() if name not in skip}
            return CellOutcome(
                cell=cell,
                metrics=metrics,
                elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
                cached=True,
            )
        return None

    def __len__(self) -> int:
        return sum(part.rows for part in self.partitions())


def iter_records(stores: Iterable[CampaignStore]) -> Iterator[Dict[str, Any]]:
    """Chain the records of several stores (multi-store analytics)."""

    for store in stores:
        for record in store.records():
            yield record
