"""Length-prefixed JSON-over-TCP framing for the distributed runtime.

Every message on the wire is one *frame*: a 4-byte big-endian length header
followed by that many bytes of UTF-8 JSON encoding a single object with an
``"op"`` key.  JSON keeps the protocol inspectable (``tcpdump`` shows
readable envelopes) and versionable; fields that must carry arbitrary
Python objects -- the cell function, :class:`~repro.experiments.grid.Cell`
instances and :class:`~repro.experiments.grid.CellOutcome` results -- are
pickled and base64-embedded via :func:`encode_payload` /
:func:`decode_payload`.

Message vocabulary (all envelopes carry ``"op"``):

=============  =========  ==================================================
op             direction  meaning
=============  =========  ==================================================
``hello``      w -> s     register; carries ``worker`` (the worker's id)
``welcome``    s -> w     registration ack; carries ``heartbeat_interval``
``request``    w -> s     pull one cell (also refreshes the heartbeat)
``task``       s -> w     a cell assignment: ``campaign``, ``index``,
                          ``cell`` payload, plus ``fn`` payload the first
                          time this connection sees the campaign
``idle``       s -> w     no work right now; retry after ``delay`` seconds
``result``     w -> s     a finished cell: ``campaign``, ``index``,
                          ``outcome`` payload (no ack)
``heartbeat``  w -> s     I-am-alive while executing a long cell (no ack)
``bye``        w -> s     orderly disconnect
=============  =========  ==================================================

The scheduler only ever writes in response to a message, so a worker
connection needs no reader thread; the worker serialises its own writes
(main loop + heartbeat thread) behind a lock.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Dict, Mapping, Tuple

#: Upper bound on a single frame; anything larger is treated as stream
#: corruption rather than a legitimate message.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: The only address scheme the runtime speaks.
SCHEME = "tcp"


class ProtocolError(RuntimeError):
    """The byte stream does not follow the framing protocol."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (cleanly or not) mid-conversation."""


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``tcp://host:port`` into ``(host, port)``.

    Raises :class:`ValueError` with an actionable message on any other
    shape, so executor-spec and CLI errors stay friendly.
    """

    text = str(address).strip()
    scheme, sep, rest = text.partition("://")
    if not sep or scheme.lower() != SCHEME:
        raise ValueError(
            f"unsupported address {address!r}: expected 'tcp://HOST:PORT' "
            f"(e.g. tcp://127.0.0.1:8765)"
        )
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad address {address!r}: expected 'tcp://HOST:PORT' with an "
            f"explicit port (use port 0 to bind an ephemeral port)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad address {address!r}: port {port_text!r} is not an integer"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bad address {address!r}: port must be in [0, 65535]")
    return host, port


def format_address(host: str, port: int) -> str:
    return f"{SCHEME}://{host}:{port}"


def send_message(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Serialise ``message`` as one frame and write it out completely."""

    blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError(f"message of {len(blob)} bytes exceeds the frame limit")
    try:
        sock.sendall(_HEADER.pack(len(blob)) + blob)
    except (BrokenPipeError, ConnectionResetError) as error:
        raise ConnectionClosed(f"peer went away while sending: {error}") from error


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read exactly one frame and decode it; raises on EOF or corruption."""

    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit "
            f"(corrupt stream?)"
        )
    blob = _recv_exact(sock, length)
    try:
        message = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError(f"frame is not an op envelope: {message!r}")
    return message


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except (ConnectionResetError, ConnectionAbortedError) as error:
            raise ConnectionClosed(f"peer reset the connection: {error}") from error
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_payload(obj: Any) -> str:
    """Pickle an arbitrary Python object into a JSON-safe ASCII string."""

    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_payload(text: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as error:  # unpicklable payloads must fail loudly, typed
        raise ProtocolError(f"cannot decode payload: {type(error).__name__}: {error}") from error
