"""Command-line interface of the distributed runtime.

::

    # a long-lived worker serving any scheduler at that address
    python -m repro.distributed worker tcp://scheduler-host:8765

    # run scenarios as the scheduler, waiting for external workers
    python -m repro.distributed scheduler fig2.bicriteria --bind tcp://0.0.0.0:8765

    # self-contained local mini-cluster: scheduler + N forked workers
    python -m repro.distributed run fig2.bicriteria --workers 4 --smoke

    # same campaign, no sockets or forks: an in-process coroutine fleet
    python -m repro.distributed run fig2.bicriteria --comm inproc --workers 32 --smoke

    # resume a killed campaign: only incomplete cells re-execute
    python -m repro.distributed run grid.ciment --workers 4 --journal ciment.jsonl

Addresses are scheme-prefixed comm addresses (``tcp://HOST:PORT``,
``inproc://NAME``; see :mod:`repro.distributed.comm`), and the scheduling
knobs of the runtime -- prefetch leases, work stealing, speculative
re-execution -- are exposed as flags on ``scheduler`` and ``run``.

``scheduler`` and ``run`` accept the same scenario selection as
``python -m repro.scenarios run`` (names or ``--all`` [``--tag``]) and print
the same ok/FAIL summary lines plus a scheduler-stats line (steals,
speculations, retries...); exit codes are 0 on success, 1 when a scenario
fails, 2 on usage errors.  The scenarios CLI reaches the same runtime
through ``python -m repro.scenarios run --executor tcp://...`` (or
``--executor inproc://``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.distributed.executor import DistributedExecutor
from repro.distributed.worker import run_worker


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed",
        description="Distributed campaign runner: scheduler, workers, mini-clusters.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="serve campaigns from a scheduler address")
    worker.add_argument("address", help="scheduler address, e.g. tcp://127.0.0.1:8765")
    worker.add_argument("--id", default=None, dest="worker_id", help="worker id (default: host-pid)")
    worker.add_argument(
        "--max-idle", type=float, default=None, metavar="SECONDS",
        help="exit after this long without work or a scheduler (default: serve forever)",
    )
    worker.add_argument(
        "--once", action="store_true",
        help="exit after the first connection ends instead of reconnecting",
    )
    worker.add_argument(
        "--no-telemetry", action="store_true",
        help="never capture or forward spans, even when the scheduler asks",
    )

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("names", nargs="*", help="scenario names (or use --all)")
    common.add_argument("--all", action="store_true", help="run every registered scenario")
    common.add_argument("--tag", default=None, help="with --all: only this tag")
    common.add_argument("--smoke", action="store_true", help="tiny smoke-tier sizes")
    common.add_argument(
        "--journal", type=Path, default=None, metavar="FILE.jsonl",
        help="campaign journal: completed cells are appended and replayed on restart",
    )
    common.add_argument(
        "--max-retries", type=int, default=3,
        help="re-assignments allowed per cell after worker losses (default: 3)",
    )
    common.add_argument(
        "--stall-timeout", type=float, default=120.0, metavar="SECONDS",
        help="abort when no worker is connected for this long (default: 120)",
    )
    common.add_argument(
        "--output", type=Path, default=None,
        help="write a JSON summary (per-scenario rows/digest/elapsed) to this file",
    )
    common.add_argument(
        "--dashboard", type=int, default=None, metavar="PORT",
        help="serve the live telemetry dashboard on this port while the "
             "campaigns run (0 picks a free port; the URL goes to stderr)",
    )
    common.add_argument(
        "--prefetch", type=int, default=2, metavar="N",
        help="assignments per task reply; extras form the worker's stealable "
             "lease (default: 2)",
    )
    common.add_argument(
        "--no-steal", action="store_true",
        help="disable work stealing from loaded workers' leases",
    )
    common.add_argument(
        "--no-speculate", action="store_true",
        help="disable speculative re-execution of straggler cells",
    )
    common.add_argument(
        "--speculation-delay", type=float, default=5.0, metavar="SECONDS",
        help="minimum age of a running cell before it is duplicated onto an "
             "idle worker (default: 5)",
    )
    common.add_argument(
        "--record", type=Path, default=None, metavar="DIR",
        help="attach the telemetry flight recorder: land every bus event "
             "(forwarded worker.* spans included) in this campaign store",
    )
    common.add_argument(
        "--record-campaign", default=None, metavar="NAME",
        help="campaign label for recorded telemetry (default: --campaign, "
             "else 'telemetry')",
    )
    from repro.scenarios.cli import _add_export_arguments

    _add_export_arguments(common)

    scheduler = sub.add_parser(
        "scheduler", parents=[common],
        help="run scenarios as the scheduler, served by external workers",
    )
    scheduler.add_argument(
        "--bind", default="tcp://0.0.0.0:8765", metavar="ADDRESS",
        help="comm address to bind the campaign scheduler on "
             "(default: tcp://0.0.0.0:8765)",
    )

    run = sub.add_parser(
        "run", parents=[common],
        help="run scenarios on a self-spawned local fleet",
    )
    run.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="local workers to spawn (default: 2)",
    )
    run.add_argument(
        "--comm", choices=("tcp", "inproc"), default="tcp",
        help="comm backend for the self-contained fleet: 'tcp' forks worker "
             "processes on a loopback port, 'inproc' raises coroutine "
             "workers in this process (default: tcp)",
    )
    return parser


def _cmd_worker(args: argparse.Namespace) -> int:
    def log(message: str) -> None:
        print(message, file=sys.stderr, flush=True)

    try:
        executed = run_worker(
            args.address,
            worker_id=args.worker_id,
            max_idle=args.max_idle,
            once=args.once,
            log=log,
            telemetry=False if args.no_telemetry else None,
        )
    except ValueError as error:  # bad address
        print(error, file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    log(f"worker exiting after {executed} cell(s)")
    return 0


def _run_scenarios(args: argparse.Namespace, executor: DistributedExecutor) -> int:
    from repro.scenarios.cli import _open_store, _resolve_out, run_specs, select_specs
    from repro.scenarios.spec import SpecError

    specs = select_specs(args.names, args.all, args.tag)
    if not specs:
        if specs is not None:  # an empty --all/--tag selection
            print("no scenarios matched", file=sys.stderr)
        return 2
    try:
        out = _resolve_out(args)
        sink = _open_store(args)
    except SpecError as error:
        print(error, file=sys.stderr)
        return 2
    print(f"scheduling onto {executor!r}")
    from contextlib import nullcontext

    from repro.scenarios.cli import serve_dashboard

    recorder = None
    if args.record is not None:
        from repro.telemetry.recorder import TelemetryRecorder

        campaign = args.record_campaign or getattr(args, "campaign", None) or "telemetry"
        recorder = TelemetryRecorder(args.record, campaign=campaign)
    with serve_dashboard(args.dashboard), (recorder or nullcontext()):
        code = run_specs(
            specs,
            smoke=args.smoke,
            executor=executor,
            output=args.output,
            schema="repro.distributed/1",
            sink=sink,
            out=out,
            out_format=args.out_format,
        )
    if recorder is not None:
        print(
            f"flight recorder: {recorder.recorded} event(s) -> {args.record} "
            f"(campaign {recorder.campaign}, {recorder.dropped} dropped)",
            file=sys.stderr,
        )
    # One payload shape for the CLI line, the dashboard endpoint and tests.
    counters = {k: v for k, v in executor.stats.to_payload()["counters"].items() if v}
    if counters:
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        print(f"scheduler stats: {summary}", file=sys.stderr)
    return code


def _scheduling_kwargs(args: argparse.Namespace) -> dict:
    return {
        "journal": args.journal,
        "max_retries": args.max_retries,
        "stall_timeout": args.stall_timeout,
        "prefetch": args.prefetch,
        "steal": not args.no_steal,
        "speculate": not args.no_speculate,
        "speculation_delay": args.speculation_delay,
    }


def _cmd_scheduler(args: argparse.Namespace) -> int:
    try:
        executor = DistributedExecutor(
            args.bind, workers=0, **_scheduling_kwargs(args)
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    return _run_scenarios(args, executor)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("run needs --workers >= 1 (use the scheduler command for "
              "externally managed workers)", file=sys.stderr)
        return 2
    address = "inproc://" if args.comm == "inproc" else "tcp://127.0.0.1:0"
    try:
        executor = DistributedExecutor(
            address, workers=args.workers, **_scheduling_kwargs(args)
        )
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    return _run_scenarios(args, executor)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "scheduler":
        return _cmd_scheduler(args)
    if args.command == "run":
        return _cmd_run(args)
    parser.error(f"unknown command {args.command!r}")
    return 2
