"""Unit tests of the shared policy helpers (allocators, list-scheduling kernel)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.job import MoldableJob, RigidJob
from repro.core.policies.base import (
    MoldableAllocator,
    SchedulerError,
    earliest_start_schedule,
    list_schedule_rigid,
    sort_jobs,
)
from repro.core.speedup import AmdahlSpeedup, LinearSpeedup, make_runtime_table
from repro.workload.models import generate_rigid_jobs


class TestMoldableAllocator:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MoldableAllocator("magic")

    def test_rigid_jobs_keep_their_requirement(self):
        allocator = MoldableAllocator("sequential")
        job = RigidJob(name="r", nbproc=4, duration=1.0)
        assert allocator.allocate(job, 8) == 4
        with pytest.raises(SchedulerError):
            allocator.allocate(job, 2)

    def test_sequential_strategy(self):
        allocator = MoldableAllocator("sequential")
        job = MoldableJob(name="m", runtimes=make_runtime_table(8.0, 8, LinearSpeedup()))
        assert allocator.allocate(job, 8) == 1

    def test_min_runtime_strategy(self):
        allocator = MoldableAllocator("min_runtime")
        job = MoldableJob(name="m", runtimes=make_runtime_table(8.0, 8, LinearSpeedup()))
        assert allocator.allocate(job, 8) == 8
        # Platform smaller than the profile: capped at machine_count.
        assert allocator.allocate(job, 4) == 4

    def test_best_efficiency_strategy_on_linear_profile(self):
        allocator = MoldableAllocator("best_efficiency")
        job = MoldableJob(name="m", runtimes=make_runtime_table(8.0, 8, LinearSpeedup()))
        # Linear speedup keeps the work constant: the largest allocation is free.
        assert allocator.allocate(job, 8) == 8

    def test_bounded_efficiency_strategy(self):
        allocator = MoldableAllocator("bounded_efficiency", efficiency_threshold=0.5)
        job = MoldableJob(name="m", runtimes=make_runtime_table(16.0, 16, AmdahlSpeedup(0.2)))
        chosen = allocator.allocate(job, 16)
        base_work = job.min_work()
        assert base_work / (chosen * job.runtime(chosen)) >= 0.5 - 1e-9

    def test_min_procs_respected(self):
        allocator = MoldableAllocator("sequential")
        job = MoldableJob(name="m", runtimes=[9.0, 5.0, 4.0], min_procs=2)
        assert allocator.allocate(job, 8) == 2
        with pytest.raises(SchedulerError):
            allocator.allocate(job, 1)

    def test_freeze(self):
        allocator = MoldableAllocator("sequential")
        jobs = [MoldableJob(name="m", runtimes=[3.0, 2.0]),
                RigidJob(name="r", nbproc=2, duration=1.0)]
        frozen = allocator.freeze(jobs, 4)
        assert frozen == [(jobs[0], 1), (jobs[1], 2)]


class TestListScheduleRigid:
    def test_simple_packing(self):
        jobs = [RigidJob(name="a", nbproc=2, duration=4.0),
                RigidJob(name="b", nbproc=2, duration=4.0),
                RigidJob(name="c", nbproc=4, duration=2.0)]
        schedule = list_schedule_rigid([(j, j.nbproc) for j in jobs], 4)
        schedule.validate()
        # a and b run in parallel, then c: makespan 6
        assert schedule.makespan() == pytest.approx(6.0)

    def test_start_time_offset(self):
        job = RigidJob(name="a", nbproc=1, duration=2.0)
        schedule = list_schedule_rigid([(job, 1)], 2, start_time=10.0)
        assert schedule["a"].start == 10.0

    def test_release_dates_respected_when_requested(self):
        job = RigidJob(name="a", nbproc=1, duration=2.0, release_date=7.0)
        schedule = list_schedule_rigid([(job, 1)], 2, respect_release_dates=True)
        assert schedule["a"].start == pytest.approx(7.0)

    def test_infeasible_allocation_rejected(self):
        job = RigidJob(name="a", nbproc=8, duration=1.0)
        with pytest.raises(SchedulerError):
            list_schedule_rigid([(job, 8)], 4)

    def test_graham_bound_holds(self):
        """List scheduling is a (2 - 1/m)-approximation for sequential jobs."""

        jobs = generate_rigid_jobs(40, 1, random_state=5)  # all sequential
        machines = 8
        schedule = list_schedule_rigid([(j, 1) for j in jobs], machines)
        area = sum(j.duration for j in jobs) / machines
        longest = max(j.duration for j in jobs)
        lower = max(area, longest)
        assert schedule.makespan() <= (2 - 1 / machines) * lower + 1e-9


class TestEarliestStartSchedule:
    def test_respects_release_dates(self):
        jobs = [RigidJob(name="a", nbproc=1, duration=5.0, release_date=0.0),
                RigidJob(name="b", nbproc=1, duration=1.0, release_date=2.0)]
        schedule = earliest_start_schedule([(j, 1) for j in jobs], 1)
        schedule.validate()
        assert schedule["a"].start == 0.0
        assert schedule["b"].start >= 2.0

    def test_prefers_earliest_feasible_job(self):
        jobs = [RigidJob(name="late", nbproc=1, duration=1.0, release_date=100.0),
                RigidJob(name="now", nbproc=1, duration=1.0, release_date=0.0)]
        schedule = earliest_start_schedule([(j, 1) for j in jobs], 1)
        assert schedule["now"].start == 0.0
        assert schedule["late"].start == pytest.approx(100.0)


class TestSortJobs:
    def test_orders(self):
        jobs = [
            RigidJob(name="short", nbproc=4, duration=1.0, weight=1.0, release_date=3.0),
            RigidJob(name="long", nbproc=1, duration=10.0, weight=100.0, release_date=0.0),
        ]
        assert [j.name for j in sort_jobs(jobs, "fcfs")] == ["long", "short"]
        assert [j.name for j in sort_jobs(jobs, "lpt")] == ["long", "short"]
        assert [j.name for j in sort_jobs(jobs, "spt")] == ["short", "long"]
        assert [j.name for j in sort_jobs(jobs, "area")] == ["long", "short"]
        # WSPT: long has work/weight 10/100 = 0.1, short 4/1 = 4
        assert [j.name for j in sort_jobs(jobs, "wspt")] == ["long", "short"]

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            sort_jobs([], "alphabetical")


@settings(max_examples=30, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=20),
    machines=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_list_schedule_is_always_valid(n_jobs, machines, seed):
    """Property: the list-scheduling kernel never produces an invalid schedule."""

    jobs = generate_rigid_jobs(n_jobs, machines, random_state=seed)
    schedule = list_schedule_rigid([(j, j.nbproc) for j in jobs], machines)
    schedule.validate()
    assert len(schedule) == n_jobs
