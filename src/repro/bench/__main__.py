"""Command-line interface of the performance-tracking subsystem.

Run the benchmark suite and write a ``BENCH_<timestamp>.json`` report::

    python -m repro.bench --quick                 # CI smoke tier
    python -m repro.bench --full --repeats 5      # real measurement
    python -m repro.bench --case kernel.churn     # one case only
    python -m repro.bench --list                  # show registered cases

Compare two reports (exits 1 on a >threshold regression or a result-digest
change, unless ``--warn-only``; ``--fail-on-digest`` keeps the digest gate
hard even in warn-only mode)::

    python -m repro.bench compare BASELINE.json NEW.json --threshold 0.2
    python -m repro.bench compare BASE.json NEW.json --warn-only --fail-on-digest
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.cases import REGISTRY, get_cases
from repro.bench.compare import DEFAULT_THRESHOLD, compare_reports
from repro.bench.runner import load_report, run_benchmarks, write_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run or compare the repro performance benchmarks.",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run the benchmark suite (default)")
    _add_run_arguments(run)
    _add_run_arguments(parser)  # "python -m repro.bench --quick" with no subcommand

    cmp_parser = sub.add_parser("compare", help="diff two BENCH_*.json reports")
    cmp_parser.add_argument("baseline", type=Path, help="baseline BENCH_*.json")
    cmp_parser.add_argument("new", type=Path, help="new BENCH_*.json")
    cmp_parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative wall-time regression tolerance (default 0.20 = 20%%)",
    )
    cmp_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI smoke mode)",
    )
    cmp_parser.add_argument(
        "--no-digest-check",
        action="store_true",
        help="do not fail on result-digest mismatches",
    )
    cmp_parser.add_argument(
        "--fail-on-digest",
        action="store_true",
        help="exit 1 on a result-digest or tier mismatch even under "
        "--warn-only: timing is advisory on noisy runners, correctness "
        "never is",
    )
    return parser


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument(
        "--quick", action="store_true", help="small CI-sized parameters (default)"
    )
    tier.add_argument(
        "--full", action="store_true", help="full-sized measurement parameters"
    )
    parser.add_argument(
        "--case",
        action="append",
        dest="cases",
        metavar="NAME",
        help="run only this case (repeatable)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timed repetitions")
    parser.add_argument("--warmup", type=int, default=1, help="untimed warmup runs")
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="output file or directory (default benchmarks/results/)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered cases and exit"
    )
    parser.add_argument(
        "--scenarios",
        action="store_true",
        help="also register every scenario of repro.scenarios as a "
        "'scenario.<name>' case (smoke tier = quick, full sweep = full)",
    )


def _run(args: argparse.Namespace) -> int:
    if args.scenarios:
        from repro.scenarios.bench import register_scenario_benchmarks

        register_scenario_benchmarks()
    if args.list:
        for case in REGISTRY.values():
            tiers = ", ".join(sorted(case.params))
            print(f"{case.name:18s} [{tiers}]  {case.description}")
        return 0
    tier = "full" if args.full else "quick"
    cases = get_cases(args.cases)
    report = run_benchmarks(
        cases,
        tier=tier,
        repeats=args.repeats,
        warmup=args.warmup,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    path = write_report(report, args.output)
    print(path)
    return 0


def _compare(args: argparse.Namespace) -> int:
    if args.fail_on_digest and args.no_digest_check:
        raise SystemExit(
            "--fail-on-digest and --no-digest-check are contradictory"
        )
    comparison = compare_reports(
        load_report(args.baseline),
        load_report(args.new),
        threshold=args.threshold,
        check_digests=not args.no_digest_check,
    )
    print(comparison.summary())
    if args.fail_on_digest and (
        comparison.digest_changes or comparison.tier_mismatches
    ):
        return 1
    if comparison.ok or args.warn_only:
        return 0
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "compare":
        return _compare(args)
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())
