"""Platform models: machines, clusters and light grids.

Section 1.2 of the paper describes the target execution support: *"a few
clusters composed each by a collection of a medium number of SMP or simple PC
machines (typically several tenth or several hundreds of nodes).  Such a
system may be highly heterogeneous between clusters [...] but weakly
heterogeneous inside each cluster"*.

* :mod:`repro.platform.machine` -- a single node (speed, core count),
* :mod:`repro.platform.cluster` -- a cluster of nodes with an interconnect,
* :mod:`repro.platform.grid` -- a *light grid*: a few clusters in the same
  geographical area with submission front-ends (Figure 1),
* :mod:`repro.platform.ciment` -- the concrete CIMENT platform of Figure 3,
* :mod:`repro.platform.generators` -- random platform generators used by the
  benchmarks.
"""

from repro.platform.machine import Machine
from repro.platform.cluster import Cluster, Interconnect
from repro.platform.grid import LightGrid, GridLink
from repro.platform.ciment import ciment_grid, CIMENT_CLUSTERS
from repro.platform.generators import (
    homogeneous_cluster,
    heterogeneous_cluster,
    random_light_grid,
)

__all__ = [
    "Machine",
    "Cluster",
    "Interconnect",
    "LightGrid",
    "GridLink",
    "ciment_grid",
    "CIMENT_CLUSTERS",
    "homogeneous_cluster",
    "heterogeneous_cluster",
    "random_light_grid",
]
