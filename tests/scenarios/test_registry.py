"""Registry behaviour: collisions, lookup errors, decorator, tags."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    ScenarioCollisionError,
    all_specs,
    get,
    names,
    register,
    resolve,
    scenario,
    unregister,
)
from repro.scenarios.spec import ComponentSpec, ScenarioSpec


def make_spec(name: str = "test.registry-entry", **kwargs) -> ScenarioSpec:
    defaults = dict(
        name=name,
        model="offline",
        platform=ComponentSpec("count", {"machine_count": 8}),
        workload=ComponentSpec("moldable", {"n_jobs": 4}),
        policy=ComponentSpec("wspt"),
        repetitions=1,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


@pytest.fixture
def temp_scenario():
    created = []

    def _register(spec: ScenarioSpec) -> ScenarioSpec:
        register(spec)
        created.append(spec.name)
        return spec

    yield _register
    for name in created:
        unregister(name)


class TestRegistry:
    def test_register_and_get(self, temp_scenario):
        spec = temp_scenario(make_spec())
        assert get(spec.name) is spec
        assert spec.name in names()

    def test_collision_raises(self, temp_scenario):
        temp_scenario(make_spec())
        with pytest.raises(ScenarioCollisionError, match="already registered"):
            register(make_spec())

    def test_register_validates(self):
        with pytest.raises(Exception):
            register(make_spec(name="NOT VALID"))

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="registered:"):
            get("test.does-not-exist")

    def test_resolve_none_returns_all(self):
        assert [s.name for s in resolve(None)] == names()

    def test_resolve_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve(["test.does-not-exist"])

    def test_tag_filtering(self, temp_scenario):
        temp_scenario(make_spec("test.tagged", tags=("unicorn",)))
        assert names("unicorn") == ["test.tagged"]
        assert [s.name for s in all_specs("unicorn")] == ["test.tagged"]

    def test_decorator_registers_and_returns_builder(self):
        @scenario
        def _builder() -> ScenarioSpec:
            return make_spec("test.decorated")

        try:
            assert get("test.decorated").name == "test.decorated"
            assert _builder().name == "test.decorated"  # builder still callable
        finally:
            unregister("test.decorated")

    def test_builtin_registry_is_populated(self):
        # The acceptance bar of the scenario layer: >= 10 registered families.
        assert len(names()) >= 10
