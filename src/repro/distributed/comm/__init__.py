"""Pluggable communication backends for the distributed runtime.

``tcp://HOST:PORT`` (asyncio sockets, PR-4 wire format) and
``inproc://NAME`` (in-process channels, no sockets) ship built in; new
backends subclass :class:`~repro.distributed.comm.core.Backend` and call
:func:`~repro.distributed.comm.core.register_backend`.  See
:mod:`repro.distributed.comm.core` for the interfaces and the registry.
"""

from repro.distributed.comm.core import (
    Backend,
    Comm,
    CommClosedError,
    CommError,
    ConnectionHandler,
    Listener,
    UnknownSchemeError,
    connect,
    get_backend,
    listener,
    register_backend,
    registered_schemes,
    split_address,
    validate_address,
)
from repro.distributed.comm import inproc, tcp  # noqa: F401  (self-registering)

__all__ = [
    "Backend",
    "Comm",
    "CommClosedError",
    "CommError",
    "ConnectionHandler",
    "Listener",
    "UnknownSchemeError",
    "connect",
    "get_backend",
    "listener",
    "register_backend",
    "registered_schemes",
    "split_address",
    "validate_address",
]
