"""Unit tests of the heterogeneous star single-round distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dlt.bus import bus_single_round
from repro.core.dlt.platform import DLTPlatform, DLTWorker
from repro.core.dlt.star import (
    best_participating_subset,
    star_makespan_for_order,
    star_single_round,
)


class TestStarSingleRound:
    def test_matches_bus_closed_form_on_identical_links(self):
        platform = DLTPlatform.homogeneous(5, compute_time=1.2, comm_time=0.1)
        star = star_single_round(80.0, platform)
        bus = bus_single_round(80.0, platform)
        assert star.makespan == pytest.approx(bus.makespan, rel=1e-9)

    def test_fractions_sum_to_one(self):
        workers = [DLTWorker("a", 1.0, 0.05), DLTWorker("b", 2.0, 0.1),
                   DLTWorker("c", 0.5, 0.2)]
        result = star_single_round(42.0, DLTPlatform(workers))
        assert sum(result.fractions) == pytest.approx(1.0)
        assert sum(result.loads) == pytest.approx(42.0)

    def test_default_order_is_fastest_link_first(self):
        workers = [DLTWorker("slowlink", 1.0, 0.5), DLTWorker("fastlink", 1.0, 0.01)]
        result = star_single_round(10.0, DLTPlatform(workers))
        assert result.order[0] == "fastlink"

    def test_fastest_link_first_is_no_worse_than_reverse_order(self):
        workers = [DLTWorker("a", 1.0, 0.01), DLTWorker("b", 1.0, 0.2),
                   DLTWorker("c", 1.0, 0.4)]
        platform = DLTPlatform(workers)
        good = star_makespan_for_order(30.0, platform, ["a", "b", "c"])
        bad = star_makespan_for_order(30.0, platform, ["c", "b", "a"])
        assert good <= bad + 1e-9

    def test_explicit_order_with_unknown_worker_rejected(self):
        platform = DLTPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            star_single_round(10.0, platform, order=["worker-0", "ghost"])

    def test_worker_with_huge_latency_gets_excluded(self):
        workers = [
            DLTWorker("good", compute_time=1.0, comm_time=0.01, latency=0.0),
            DLTWorker("awful", compute_time=1.0, comm_time=0.01, latency=10_000.0),
        ]
        result = star_single_round(10.0, DLTPlatform(workers))
        assert "awful" in result.excluded
        assert result.order == ("good",)
        assert result.makespan < 100.0

    def test_latency_increases_makespan(self):
        base = DLTPlatform([DLTWorker("a", 1.0, 0.1, 0.0), DLTWorker("b", 1.0, 0.1, 0.0)])
        with_latency = DLTPlatform([DLTWorker("a", 1.0, 0.1, 1.0), DLTWorker("b", 1.0, 0.1, 1.0)])
        assert (
            star_single_round(20.0, with_latency).makespan
            > star_single_round(20.0, base).makespan
        )

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            star_single_round(-1.0, DLTPlatform.homogeneous(2))


class TestBestParticipatingSubset:
    def test_small_load_uses_few_workers(self):
        # With a large per-message latency and a small load, using every
        # worker is counter-productive.
        workers = [DLTWorker(f"w{i}", compute_time=1.0, comm_time=0.1, latency=5.0)
                   for i in range(8)]
        platform = DLTPlatform(workers)
        best = best_participating_subset(2.0, platform)
        assert best.participating < 8

    def test_large_load_uses_every_worker(self):
        platform = DLTPlatform.homogeneous(4, compute_time=1.0, comm_time=0.01)
        best = best_participating_subset(10_000.0, platform)
        assert best.participating == 4

    def test_never_worse_than_full_platform(self):
        workers = [DLTWorker(f"w{i}", compute_time=1.0 + 0.3 * i, comm_time=0.05 * (i + 1),
                             latency=2.0) for i in range(6)]
        platform = DLTPlatform(workers)
        best = best_participating_subset(50.0, platform)
        full = star_single_round(50.0, platform)
        assert best.makespan <= full.makespan + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    load=st.floats(min_value=1.0, max_value=1_000.0),
    compute_times=st.lists(st.floats(min_value=0.05, max_value=5.0), min_size=1, max_size=8),
    comm=st.floats(min_value=0.0, max_value=0.5),
)
def test_star_distribution_conserves_load_and_is_nonnegative(load, compute_times, comm):
    workers = [DLTWorker(f"w{i}", ct, comm) for i, ct in enumerate(compute_times)]
    result = star_single_round(load, DLTPlatform(workers))
    assert sum(result.loads) == pytest.approx(load, rel=1e-6)
    assert all(f >= -1e-9 for f in result.fractions)
    assert result.makespan > 0
