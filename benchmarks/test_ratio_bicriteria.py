"""RATIO-BICRIT: the bi-criteria doubling batches of section 4.4 (bound 4*rho).

The Hall/Schulz/Shmoys/Wein construction guarantees, simultaneously, a
makespan within 4*rho of the optimal makespan and a weighted completion time
within 4*rho of its optimum (rho being the ratio of the inner makespan
procedure).  The benchmark measures both ratios on random moldable instances
and also reports the single-criterion specialists (MRT for Cmax, WSPT list
scheduling for sum wC) to show the trade-off the bi-criteria schedule makes.
The job-count grid goes through the parallel sweep harness.
"""

from __future__ import annotations


from repro.core.bounds import (
    makespan_lower_bound,
    performance_ratio,
    weighted_completion_lower_bound,
)
from repro.core.criteria import makespan, weighted_completion_time
from repro.core.policies.bicriteria import BiCriteriaScheduler
from repro.core.policies.list_scheduling import ListScheduler
from repro.core.policies.mrt import MRTScheduler
from repro.experiments.ratio_checks import check_bicriteria_ratio
from repro.experiments.reporting import ascii_table
from repro.workload.models import WorkloadConfig, generate_moldable_jobs

MACHINES = 64
JOB_COUNTS = (40, 100, 200)
RHO = 2.0  # ratio of the deadline-aware / greedy inner procedure


def run_bicriteria_cell(seed, jobs):
    """One sweep cell: bi-criteria vs the single-criterion specialists."""

    workload = generate_moldable_jobs(
        jobs, MACHINES, config=WorkloadConfig(weight_scheme="work"),
        random_state=jobs,
    )
    cmax_bound = makespan_lower_bound(workload, MACHINES)
    wc_bound = weighted_completion_lower_bound(workload, MACHINES)

    bicriteria = BiCriteriaScheduler().schedule(workload, MACHINES)
    bicriteria.validate()
    mrt = MRTScheduler().schedule(workload, MACHINES)
    wspt = ListScheduler("wspt").schedule(workload, MACHINES)

    return {
        "bicrit_cmax_ratio": performance_ratio(makespan(bicriteria), cmax_bound),
        "bicrit_wc_ratio": performance_ratio(
            weighted_completion_time(bicriteria), wc_bound
        ),
        "mrt_cmax_ratio": performance_ratio(makespan(mrt), cmax_bound),
        "wspt_wc_ratio": performance_ratio(
            weighted_completion_time(wspt), wc_bound
        ),
    }


def test_bicriteria_ratio(run_sweep, report):
    result = run_sweep("ratio-bicriteria", run_bicriteria_cell, {"jobs": JOB_COUNTS})
    rows = result.rows
    report("RATIO-BICRIT: bi-criteria doubling batches (stated bound 4*rho on both criteria)",
           ascii_table(rows))
    for row in rows:
        assert row["bicrit_cmax_ratio"] <= 4 * RHO + 1e-9
        assert row["bicrit_wc_ratio"] <= 4 * RHO + 1e-9
        # The bi-criteria schedule pays at most a constant factor over each
        # single-criterion specialist.
        assert row["bicrit_cmax_ratio"] <= 4 * row["mrt_cmax_ratio"] + 1e-9
        assert row["bicrit_wc_ratio"] <= 4 * row["wspt_wc_ratio"] + 1e-9


def test_bicriteria_ratio_check_helper(run_once, report):
    cmax_check, wc_check = run_once(check_bicriteria_ratio, machine_count=MACHINES,
                                    job_counts=(60,), repetitions=2)
    report("RATIO-BICRIT (experiment helper)",
           ascii_table([cmax_check.as_dict(), wc_check.as_dict()]))
    assert cmax_check.within_bound
    assert wc_check.within_bound
