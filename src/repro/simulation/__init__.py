"""Discrete-event simulation substrate.

The paper's evaluation ("A simulated implementation of a variation of the
bi-criteria algorithm has been realized") relies on an event-driven simulator
of a cluster / light grid.  This package provides that substrate, written
from scratch for this reproduction:

* :mod:`repro.simulation.events` -- event queue primitives,
* :mod:`repro.simulation.engine` -- the simulation kernel (clock, event loop,
  generator-based processes),
* :mod:`repro.simulation.resources` -- a processor-pool resource with
  reservations and preemption (needed to kill best-effort jobs),
* :mod:`repro.simulation.tracing` -- execution traces and Gantt recording,
* :mod:`repro.simulation.cluster_sim` -- on-line simulation of one cluster
  driven by any scheduling policy,
* :mod:`repro.simulation.grid_sim` -- the centralized light-grid organisation
  of section 5.2 (best-effort multi-parametric jobs filling the holes),
* :mod:`repro.simulation.decentralized` -- the decentralized organisation
  (load exchange between clusters).
"""

from repro.simulation.engine import Simulator, Process, Timeout
from repro.simulation.events import Event, EventQueue
from repro.simulation.resources import ProcessorPool, AllocationRequest
from repro.simulation.tracing import Trace, TraceEvent
from repro.simulation.cluster_sim import ClusterSimulator, SimulationResult
from repro.simulation.grid_sim import CentralizedGridSimulator, GridSimulationResult
from repro.simulation.decentralized import DecentralizedGridSimulator

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Event",
    "EventQueue",
    "ProcessorPool",
    "AllocationRequest",
    "Trace",
    "TraceEvent",
    "ClusterSimulator",
    "SimulationResult",
    "CentralizedGridSimulator",
    "GridSimulationResult",
    "DecentralizedGridSimulator",
]
