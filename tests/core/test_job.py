"""Unit tests of the job models (rigid, moldable, malleable, divisible)."""

import math

import pytest

from repro.core.job import (
    DivisibleJob,
    JobKind,
    MalleableJob,
    MoldableJob,
    ParametricSweep,
    RigidJob,
    total_min_work,
    validate_jobs,
)


class TestJobBase:
    def test_negative_release_date_rejected(self):
        with pytest.raises(ValueError):
            RigidJob(name="x", release_date=-1.0, nbproc=1, duration=1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            RigidJob(name="x", weight=-0.5, nbproc=1, duration=1.0)

    def test_due_date_before_release_rejected(self):
        with pytest.raises(ValueError):
            RigidJob(name="x", release_date=10.0, due_date=5.0, nbproc=1, duration=1.0)

    def test_equality_and_hash_by_name(self):
        a = RigidJob(name="same", nbproc=1, duration=1.0)
        b = RigidJob(name="same", nbproc=2, duration=9.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != "same"


class TestRigidJob:
    def test_kind_and_runtime(self):
        job = RigidJob(name="r", nbproc=4, duration=3.0)
        assert job.kind is JobKind.RIGID
        assert job.runtime(4) == 3.0
        assert job.work(4) == 12.0

    def test_runtime_wrong_allocation_rejected(self):
        job = RigidJob(name="r", nbproc=4, duration=3.0)
        with pytest.raises(ValueError):
            job.runtime(3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RigidJob(name="r", nbproc=0, duration=1.0)
        with pytest.raises(ValueError):
            RigidJob(name="r", nbproc=1, duration=0.0)


class TestMoldableJob:
    def test_profile_lookup(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0, 4.5, 4.0])
        assert job.kind is JobKind.MOLDABLE
        assert job.max_procs == 4
        assert job.runtime(1) == 10.0
        assert job.runtime(4) == 4.0
        assert job.sequential_time() == 10.0
        assert job.best_runtime() == 4.0

    def test_work_and_min_work(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0, 4.5, 4.0])
        assert job.work(2) == 12.0
        assert job.min_work() == 10.0  # sequential execution has least work

    def test_out_of_range_allocation_rejected(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0])
        with pytest.raises(ValueError):
            job.runtime(0)
        with pytest.raises(ValueError):
            job.runtime(3)

    def test_min_procs_constraint(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0, 4.5], min_procs=2)
        with pytest.raises(ValueError):
            job.runtime(1)
        assert job.sequential_time() == 6.0
        assert job.min_work() == 12.0

    def test_non_monotonic_runtime_rejected(self):
        with pytest.raises(ValueError):
            MoldableJob(name="m", runtimes=[10.0, 12.0])

    def test_non_monotonic_work_rejected(self):
        # work(2) = 8 < work(1) = 10 -> super-linear speedup is rejected
        with pytest.raises(ValueError):
            MoldableJob(name="m", runtimes=[10.0, 4.0])

    def test_monotony_can_be_disabled(self):
        job = MoldableJob(name="m", runtimes=[10.0, 12.0], enforce_monotony=False)
        assert job.runtime(2) == 12.0

    def test_canonical_allocation(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0, 4.5, 4.0])
        assert job.canonical_allocation(10.0) == 1
        assert job.canonical_allocation(6.0) == 2
        assert job.canonical_allocation(5.0) == 3
        assert job.canonical_allocation(4.0) == 4
        assert job.canonical_allocation(3.0) is None

    def test_canonical_allocation_respects_min_procs(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0, 4.5], min_procs=2)
        assert job.canonical_allocation(100.0) == 2

    def test_from_speedup(self):
        job = MoldableJob.from_speedup("m", sequential_time=8.0, max_procs=4,
                                       model=lambda k: float(k))
        assert job.runtime(1) == pytest.approx(8.0)
        assert job.runtime(4) == pytest.approx(2.0)

    def test_as_rigid(self):
        job = MoldableJob(name="m", runtimes=[10.0, 6.0], weight=3.0, owner="phy")
        rigid = job.as_rigid(2)
        assert isinstance(rigid, RigidJob)
        assert rigid.nbproc == 2
        assert rigid.duration == 6.0
        assert rigid.weight == 3.0
        assert rigid.owner == "phy"

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            MoldableJob(name="m", runtimes=[])

    def test_nonpositive_runtime_rejected(self):
        with pytest.raises(ValueError):
            MoldableJob(name="m", runtimes=[1.0, 0.0], enforce_monotony=False)


class TestMalleableJob:
    def test_rate_and_time_to_finish(self):
        job = MalleableJob(name="mal", total_work=100.0, efficiency=lambda k: 1.0)
        assert job.kind is JobKind.MALLEABLE
        assert job.rate(4) == 4.0
        assert job.time_to_finish(100.0, 4) == 25.0
        assert job.time_to_finish(0.0, 4) == 0.0
        assert math.isinf(job.time_to_finish(1.0, 0))

    def test_invalid_efficiency_rejected(self):
        # An efficiency above 1 is rejected as soon as it is evaluated (the
        # constructor derives the sequential runtime, so it already fails).
        with pytest.raises(ValueError):
            MalleableJob(name="mal", total_work=10.0, efficiency=lambda k: 2.0).rate(2)


class TestDivisibleJob:
    def test_runtime_and_split(self):
        job = DivisibleJob(name="d", load=100.0)
        assert job.kind is JobKind.DIVISIBLE
        assert job.runtime(4) == 25.0
        assert job.split([0.5, 0.25, 0.25]) == [50.0, 25.0, 25.0]

    def test_split_must_sum_to_one(self):
        job = DivisibleJob(name="d", load=100.0)
        with pytest.raises(ValueError):
            job.split([0.5, 0.2])
        with pytest.raises(ValueError):
            job.split([1.5, -0.5])

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            DivisibleJob(name="d", load=0.0)


class TestParametricSweep:
    def test_total_work_and_runtime(self):
        bag = ParametricSweep(name="s", n_runs=10, run_time=2.0)
        assert bag.total_work == 20.0
        assert bag.runtime(1) == 20.0
        assert bag.runtime(4) == 6.0  # ceil(10/4)=3 waves of 2.0
        assert bag.kind is JobKind.DIVISIBLE

    def test_as_divisible(self):
        bag = ParametricSweep(name="s", n_runs=10, run_time=2.0, owner="astro")
        divisible = bag.as_divisible()
        assert divisible.load == 20.0
        assert divisible.owner == "astro"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ParametricSweep(name="s", n_runs=0, run_time=1.0)
        with pytest.raises(ValueError):
            ParametricSweep(name="s", n_runs=1, run_time=0.0)


class TestHelpers:
    def test_validate_jobs_rejects_duplicates(self):
        jobs = [RigidJob(name="x", nbproc=1, duration=1.0),
                RigidJob(name="x", nbproc=2, duration=2.0)]
        with pytest.raises(ValueError):
            validate_jobs(jobs)

    def test_total_min_work(self):
        jobs = [
            RigidJob(name="r", nbproc=2, duration=3.0),
            MoldableJob(name="m", runtimes=[10.0, 6.0]),
            ParametricSweep(name="s", n_runs=5, run_time=2.0),
            DivisibleJob(name="d", load=7.0),
        ]
        assert total_min_work(jobs) == pytest.approx(6.0 + 10.0 + 10.0 + 7.0)
