"""Lower bounds used to compute performance ratios.

The paper's Figure 2 plots the *ratio* of the criterion achieved by the
bi-criteria algorithm over (an estimate of) the optimal value.  Since the
optimum is intractable, the standard practice -- which the dual-approximation
analysis of section 4.1 also relies on -- is to compare against easily
computable lower bounds:

* for the makespan of moldable jobs on ``m`` identical processors

  ``LB_Cmax = max( max_j p_j^min , (1/m) sum_j W_j^min , max_j r_j + p_j^min )``

  where ``p_j^min`` is the best achievable runtime of job ``j`` and
  ``W_j^min`` its minimal work;

* for the (weighted) sum of completion times, the classical single-machine
  relaxation: the whole platform is viewed as one machine of speed ``m``,
  jobs become sequential with processing time ``W_j^min / m``, and the
  optimal order is WSPT (weighted shortest processing time first).  A second
  bound -- each job cannot complete before ``r_j + p_j^min`` -- is combined
  with it by taking, for each job, the larger of its two completion-time
  estimates.

These bounds are deliberately conservative; ratios reported by the benchmarks
are therefore *upper estimates* of the true approximation factor, exactly as
in the paper.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.core.job import Job, MoldableJob, ParametricSweep, RigidJob, DivisibleJob


def _min_runtime(job: Job) -> float:
    """Best achievable runtime of a job (critical-path style bound)."""

    if isinstance(job, MoldableJob):
        return job.best_runtime()
    if isinstance(job, RigidJob):
        return job.duration
    if isinstance(job, ParametricSweep):
        return job.run_time
    if isinstance(job, DivisibleJob):
        return 0.0  # arbitrarily divisible: no intrinsic critical path
    raise TypeError(f"unsupported job type {type(job)!r}")


def _min_work(job: Job) -> float:
    if isinstance(job, MoldableJob):
        return job.min_work()
    if isinstance(job, RigidJob):
        return job.nbproc * job.duration
    if isinstance(job, ParametricSweep):
        return job.total_work
    if isinstance(job, DivisibleJob):
        return job.load
    raise TypeError(f"unsupported job type {type(job)!r}")


def min_runtime(job: Job) -> float:
    """Public alias of the per-job critical-path bound."""

    return _min_runtime(job)


def min_work(job: Job) -> float:
    """Public alias of the per-job minimal-work bound."""

    return _min_work(job)


def makespan_lower_bound(jobs: Iterable[Job], machine_count: int) -> float:
    """Lower bound on ``Cmax`` for any schedule of ``jobs`` on ``machine_count`` processors."""

    if machine_count < 1:
        raise ValueError("machine_count must be >= 1")
    jobs = list(jobs)
    if not jobs:
        return 0.0
    critical = max(_min_runtime(j) for j in jobs)
    area = sum(_min_work(j) for j in jobs) / machine_count
    release = max(j.release_date + _min_runtime(j) for j in jobs)
    return max(critical, area, release)


def completion_time_lower_bounds(
    jobs: Iterable[Job], machine_count: int
) -> List[Tuple[Job, float]]:
    """Per-job lower bounds on completion times (squashed-area relaxation).

    Jobs are relaxed to a single machine of speed ``machine_count`` and
    ordered by WSPT on their minimal work.  The completion time of job ``j``
    in that relaxed schedule, combined with the trivial bound
    ``r_j + p_j^min``, lower-bounds ``C_j`` in *some* optimal-ish sense:
    the resulting ``sum w_j C_j`` is a valid lower bound on the optimum of
    the weighted completion time criterion for the off-line problem without
    release dates, and a standard heuristic bound when release dates are
    present (the release-date term keeps it safe for the dominant jobs).
    """

    if machine_count < 1:
        raise ValueError("machine_count must be >= 1")
    jobs = list(jobs)
    order = sorted(
        jobs,
        key=lambda j: (_min_work(j) / max(j.weight, 1e-12), j.name),
    )
    bounds: List[Tuple[Job, float]] = []
    elapsed = 0.0
    for job in order:
        elapsed += _min_work(job) / machine_count
        bound = max(elapsed, job.release_date + _min_runtime(job))
        bounds.append((job, bound))
    return bounds


def weighted_completion_lower_bound(jobs: Iterable[Job], machine_count: int) -> float:
    """Lower bound on ``sum_j w_j C_j``."""

    return sum(job.weight * c for job, c in completion_time_lower_bounds(jobs, machine_count))


def sum_completion_lower_bound(jobs: Iterable[Job], machine_count: int) -> float:
    """Lower bound on ``sum_j C_j`` (unweighted)."""

    jobs = list(jobs)
    order = sorted(jobs, key=lambda j: (_min_work(j), j.name))
    total = 0.0
    elapsed = 0.0
    for job in order:
        elapsed += _min_work(job) / machine_count
        total += max(elapsed, job.release_date + _min_runtime(job))
    return total


def stretch_lower_bound(jobs: Iterable[Job]) -> float:
    """Trivial lower bound on the mean stretch: each job needs at least ``p_j^min``."""

    jobs = list(jobs)
    if not jobs:
        return 0.0
    return sum(_min_runtime(j) for j in jobs) / len(jobs)


def divisible_makespan_lower_bound(
    total_load: float,
    worker_rates: Sequence[float],
) -> float:
    """Lower bound on the makespan of a divisible load: perfect sharing, no comms."""

    if total_load < 0:
        raise ValueError("total_load must be >= 0")
    total_rate = sum(worker_rates)
    if total_rate <= 0:
        raise ValueError("at least one worker with positive rate is required")
    return total_load / total_rate


def performance_ratio(value: float, lower_bound: float) -> float:
    """Ratio ``value / lower_bound`` guarded against degenerate bounds."""

    if lower_bound <= 0:
        if value <= 0:
            return 1.0
        return math.inf
    return value / lower_bound
