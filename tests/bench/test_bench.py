"""Unit tests of the repro.bench subsystem (registry, runner, comparator, CLI)."""

import json

import pytest

from repro.bench.cases import REGISTRY, BenchCase, CaseOutcome, get_cases
from repro.bench.compare import compare_reports
from repro.bench.runner import (
    SCHEMA,
    load_report,
    payload_digest,
    run_benchmarks,
    time_case,
    write_report,
)
from repro.bench.__main__ import main as bench_main


def _toy_case(name="toy", events=1000, payload="payload"):
    return BenchCase(
        name=name,
        description="synthetic case for unit tests",
        run=lambda scale=1: CaseOutcome(events=events * scale, cells=7, payload=payload),
        params={"quick": {"scale": 1}, "full": {"scale": 10}},
    )


class TestRegistry:
    def test_builtin_cases_registered(self):
        for expected in (
            "kernel.churn",
            "cluster.figure2",
            "cluster.online",
            "grid.ciment",
            "dlt.multiround",
        ):
            assert expected in REGISTRY
        for case in REGISTRY.values():
            assert set(case.params) == {"quick", "full"}

    def test_get_cases_unknown_name(self):
        with pytest.raises(KeyError, match="unknown bench case"):
            get_cases(["no-such-case"])

    def test_unknown_tier_rejected(self):
        with pytest.raises(KeyError, match="no 'hourly' tier"):
            _toy_case().run_tier("hourly")


class TestRunner:
    def test_time_case_medians_and_rates(self):
        result = time_case(_toy_case(), "quick", repeats=3, warmup=0)
        assert result.case == "toy"
        assert result.tier == "quick"
        assert len(result.samples) == 3
        assert result.wall_seconds == sorted(result.samples)[1]
        assert result.events == 1000
        assert result.events_per_sec == pytest.approx(1000 / result.wall_seconds)
        assert result.cells_per_sec == pytest.approx(7 / result.wall_seconds)
        assert result.digest == payload_digest("payload")

    def test_phase_breakdown_captured_from_spans(self):
        # A case that emits spans on the (swapped-in) default bus during its
        # reference run gets a per-phase timing breakdown in the result.
        from repro.telemetry import SpanRecorder, get_bus

        def run():
            spans = SpanRecorder.for_bus(get_bus())
            with spans.span("harness.wait"):
                pass
            spans.record("cell.execute", 0.25)
            spans.record("cell.execute", 0.75)
            return CaseOutcome(payload="payload")

        case = BenchCase(
            name="spanny", description="emits spans",
            run=run, params={"quick": {}},
        )
        result = time_case(case, "quick", repeats=1, warmup=0)
        assert result.phases["cell.execute"]["count"] == 2
        assert result.phases["cell.execute"]["total_seconds"] == pytest.approx(1.0)
        assert result.phases["cell.execute"]["mean_seconds"] == pytest.approx(0.5)
        assert result.phases["harness.wait"]["count"] == 1
        assert result.to_dict()["phases"] == result.phases

    def test_spanless_case_reports_empty_phases(self):
        result = time_case(_toy_case(), "quick", repeats=1, warmup=0)
        assert result.phases == {}
        assert result.to_dict()["phases"] == {}

    def test_nondeterministic_case_rejected(self):
        flips = iter(range(100))
        case = BenchCase(
            name="flaky",
            description="changes its answer",
            run=lambda: CaseOutcome(payload=next(flips)),
            params={"quick": {}},
        )
        with pytest.raises(RuntimeError, match="non-deterministic"):
            time_case(case, "quick", repeats=2, warmup=0)

    def test_report_roundtrip_is_valid_bench_json(self, tmp_path):
        report = run_benchmarks([_toy_case()], tier="quick", repeats=1, warmup=0)
        path = write_report(report, tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA
        assert loaded["tier"] == "quick"
        assert loaded["git_rev"]
        assert loaded["python"]
        (entry,) = loaded["results"]
        assert entry["case"] == "toy"
        assert entry["wall_seconds"] > 0
        assert entry["digest"]

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bogus.json"
        path.write_text(json.dumps({"schema": "something-else", "results": []}))
        with pytest.raises(ValueError, match="unknown bench report schema"):
            load_report(path)


def _report_with(wall, digest="abc", case="toy", tier="quick"):
    return {
        "schema": SCHEMA,
        "tier": tier,
        "results": [
            {
                "case": case,
                "tier": tier,
                "wall_seconds": wall,
                "events": 1000,
                "events_per_sec": 1000 / wall,
                "digest": digest,
            }
        ],
    }


class TestComparator:
    def test_injected_50_percent_slowdown_fails(self):
        comparison = compare_reports(_report_with(1.0), _report_with(1.5))
        assert not comparison.ok
        assert [d.case for d in comparison.regressions] == ["toy"]
        assert "REGRESSION" in comparison.summary()

    def test_speedup_and_small_noise_pass(self):
        assert compare_reports(_report_with(1.0), _report_with(0.4)).ok
        assert compare_reports(_report_with(1.0), _report_with(1.1)).ok

    def test_threshold_is_configurable(self):
        assert compare_reports(_report_with(1.0), _report_with(1.1), threshold=0.05).ok is False
        assert compare_reports(_report_with(1.0), _report_with(1.4), threshold=0.5).ok

    def test_digest_change_fails_even_when_faster(self):
        comparison = compare_reports(
            _report_with(1.0, digest="abc"), _report_with(0.5, digest="xyz")
        )
        assert not comparison.ok
        assert [d.case for d in comparison.digest_changes] == ["toy"]
        assert "digest mismatch" in comparison.summary()

    def test_digest_check_can_be_disabled(self):
        comparison = compare_reports(
            _report_with(1.0, digest="abc"),
            _report_with(0.5, digest="xyz"),
            check_digests=False,
        )
        assert comparison.ok

    def test_cross_tier_comparison_fails_loudly(self):
        comparison = compare_reports(
            _report_with(0.1, tier="quick"), _report_with(2.0, tier="full")
        )
        assert not comparison.ok
        assert [d.case for d in comparison.tier_mismatches] == ["toy"]
        # No bogus wall-time judgement is made on incomparable tiers.
        assert comparison.regressions == []
        assert "TIER MISMATCH" in comparison.summary()

    def test_missing_case_reported_but_not_fatal(self):
        comparison = compare_reports(_report_with(1.0), _report_with(1.0, case="other"))
        assert comparison.ok
        statuses = {d.case: d.status for d in comparison.deltas}
        assert statuses == {"toy": "missing", "other": "missing"}


class TestCli:
    def test_run_emits_bench_json(self, tmp_path, capsys):
        code = bench_main(
            ["--quick", "--case", "dlt.multiround", "--repeats", "1",
             "--warmup", "0", "--output", str(tmp_path)]
        )
        assert code == 0
        printed = capsys.readouterr().out.strip()
        report = load_report(tmp_path / printed.split("/")[-1])
        (entry,) = report["results"]
        assert entry["case"] == "dlt.multiround"
        assert entry["cells_per_sec"] > 0

    def test_compare_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(_report_with(1.0)))
        slow.write_text(json.dumps(_report_with(1.5)))
        assert bench_main(["compare", str(base), str(slow)]) == 1
        assert bench_main(["compare", str(base), str(slow), "--warn-only"]) == 0
        assert bench_main(["compare", str(base), str(base)]) == 0
        capsys.readouterr()

    def test_fail_on_digest_keeps_digest_gate_hard_under_warn_only(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        drift = tmp_path / "drift.json"
        base.write_text(json.dumps(_report_with(1.0)))
        slow.write_text(json.dumps(_report_with(1.5)))
        drift.write_text(json.dumps(_report_with(1.0, digest="xyz")))
        # Timing regression stays advisory; digest drift does not.
        assert bench_main(
            ["compare", str(base), str(slow), "--warn-only", "--fail-on-digest"]
        ) == 0
        assert bench_main(
            ["compare", str(base), str(drift), "--warn-only", "--fail-on-digest"]
        ) == 1
        assert bench_main(
            ["compare", str(base), str(base), "--warn-only", "--fail-on-digest"]
        ) == 0
        with pytest.raises(SystemExit, match="contradictory"):
            bench_main(
                ["compare", str(base), str(base), "--fail-on-digest",
                 "--no-digest-check"]
            )
        capsys.readouterr()

    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "kernel.churn" in out


class TestTimingGuard:
    """The runner must refuse to time with observation overhead switched on."""

    def test_spans_env_flag_aborts_timing(self, monkeypatch):
        from repro.bench.runner import PerturbedTimingError

        monkeypatch.setenv("REPRO_SPANS", "1")
        with pytest.raises(PerturbedTimingError, match="REPRO_SPANS"):
            time_case(_toy_case(), "quick", repeats=1, warmup=0)

    def test_live_bus_subscriber_aborts_timing(self):
        from repro.bench.runner import PerturbedTimingError
        from repro.telemetry.bus import get_bus

        subscription = get_bus().subscribe()
        try:
            with pytest.raises(PerturbedTimingError, match="subscribers"):
                time_case(_toy_case(), "quick", repeats=1, warmup=0)
        finally:
            subscription.close()
        # With the subscriber gone timing proceeds normally again.
        assert time_case(_toy_case(), "quick", repeats=1, warmup=0).digest

    def test_report_records_resolved_kernel_tier(self, monkeypatch):
        from repro.simulation.kernel import compiled_available

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        report = run_benchmarks([_toy_case()], tier="quick", repeats=1, warmup=0)
        assert report["kernel"] == "pure"
        assert report["kernel_requested"] == "pure"

        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        report = run_benchmarks([_toy_case()], tier="quick", repeats=1, warmup=0)
        assert report["kernel_requested"] == "compiled"
        expected = "compiled" if compiled_available() else "pure"
        assert report["kernel"] == expected
