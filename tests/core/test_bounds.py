"""Unit tests of the lower bounds used for performance ratios."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounds
from repro.core.criteria import makespan, sum_completion_times, weighted_completion_time
from repro.core.job import DivisibleJob, MoldableJob, ParametricSweep, RigidJob
from repro.core.policies.list_scheduling import ListScheduler
from repro.workload.models import generate_rigid_jobs


class TestPerJobBounds:
    def test_min_runtime(self):
        assert bounds.min_runtime(RigidJob(name="r", nbproc=2, duration=3.0)) == 3.0
        assert bounds.min_runtime(MoldableJob(name="m", runtimes=[8.0, 5.0])) == 5.0
        assert bounds.min_runtime(ParametricSweep(name="s", n_runs=10, run_time=2.0)) == 2.0
        assert bounds.min_runtime(DivisibleJob(name="d", load=5.0)) == 0.0

    def test_min_work(self):
        assert bounds.min_work(RigidJob(name="r", nbproc=2, duration=3.0)) == 6.0
        assert bounds.min_work(MoldableJob(name="m", runtimes=[8.0, 5.0])) == 8.0
        assert bounds.min_work(ParametricSweep(name="s", n_runs=10, run_time=2.0)) == 20.0
        assert bounds.min_work(DivisibleJob(name="d", load=5.0)) == 5.0


class TestMakespanLowerBound:
    def test_critical_path_dominates(self):
        jobs = [RigidJob(name="big", nbproc=1, duration=100.0),
                RigidJob(name="small", nbproc=1, duration=1.0)]
        assert bounds.makespan_lower_bound(jobs, 100) == 100.0

    def test_area_dominates(self):
        jobs = [RigidJob(name=f"j{i}", nbproc=1, duration=1.0) for i in range(100)]
        assert bounds.makespan_lower_bound(jobs, 10) == pytest.approx(10.0)

    def test_release_date_dominates(self):
        jobs = [RigidJob(name="late", nbproc=1, duration=1.0, release_date=50.0)]
        assert bounds.makespan_lower_bound(jobs, 4) == 51.0

    def test_empty(self):
        assert bounds.makespan_lower_bound([], 4) == 0.0

    def test_invalid_machine_count(self):
        with pytest.raises(ValueError):
            bounds.makespan_lower_bound([], 0)


class TestCompletionBounds:
    def test_single_machine_wspt_is_tight(self):
        # On one machine the squashed-area bound with WSPT order equals the optimum.
        jobs = [
            RigidJob(name="a", nbproc=1, duration=2.0, weight=1.0),
            RigidJob(name="b", nbproc=1, duration=1.0, weight=10.0),
        ]
        bound = bounds.weighted_completion_lower_bound(jobs, 1)
        # optimal order: b then a -> 10*1 + 1*3 = 13
        assert bound == pytest.approx(13.0)

    def test_sum_completion_bound_single_machine(self):
        jobs = [RigidJob(name=c, nbproc=1, duration=d) for c, d in zip("abc", (3.0, 1.0, 2.0))]
        # SPT: 1, 3, 6 -> 10
        assert bounds.sum_completion_lower_bound(jobs, 1) == pytest.approx(10.0)

    def test_bounds_are_below_any_actual_schedule(self):
        jobs = generate_rigid_jobs(30, 8, random_state=3)
        schedule = ListScheduler("wspt").schedule(jobs, 8)
        schedule.validate()
        assert bounds.weighted_completion_lower_bound(jobs, 8) <= weighted_completion_time(schedule) + 1e-9
        assert bounds.sum_completion_lower_bound(jobs, 8) <= sum_completion_times(schedule) + 1e-9
        assert bounds.makespan_lower_bound(jobs, 8) <= makespan(schedule) + 1e-9


class TestOtherBounds:
    def test_stretch_lower_bound(self):
        jobs = [RigidJob(name="a", nbproc=1, duration=4.0),
                RigidJob(name="b", nbproc=1, duration=2.0)]
        assert bounds.stretch_lower_bound(jobs) == pytest.approx(3.0)
        assert bounds.stretch_lower_bound([]) == 0.0

    def test_divisible_makespan_lower_bound(self):
        assert bounds.divisible_makespan_lower_bound(100.0, [1.0, 1.0, 2.0]) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            bounds.divisible_makespan_lower_bound(10.0, [])

    def test_performance_ratio(self):
        assert bounds.performance_ratio(3.0, 2.0) == 1.5
        assert bounds.performance_ratio(0.0, 0.0) == 1.0
        assert math.isinf(bounds.performance_ratio(1.0, 0.0))


@settings(max_examples=40, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=25),
    machines=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_makespan_bound_never_exceeds_list_schedule(n_jobs, machines, seed):
    """Property: the lower bound is below the makespan of an actual schedule."""

    jobs = generate_rigid_jobs(n_jobs, machines, random_state=seed)
    schedule = ListScheduler("lpt").schedule(jobs, machines)
    assert bounds.makespan_lower_bound(jobs, machines) <= schedule.makespan() + 1e-9
