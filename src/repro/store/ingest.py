"""Ingest legacy result files into a campaign store.

Two legacy encodings predate the store and remain in the wild:

* **campaign journals** -- the append-only JSONL files of the distributed
  runner (:mod:`repro.distributed.campaign`).  Ingest reuses the journal's
  own crash-tolerant loader, so a journal truncated mid-append recovers
  every complete entry, and keeps each entry's dedup key, so re-ingesting
  (or resuming the campaign afterwards) cannot duplicate rows.
* **CSV exports** -- ``reporting.to_csv`` output.  Values are re-typed
  (int, then float, then bool, else string); the dedup key is derived from
  the row content, so re-ingesting the same file is a no-op.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.store.columnar import CampaignStore


def _coerce_csv_value(text: str) -> Any:
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    if text in ("True", "False"):
        return text == "True"
    return text


def ingest_journal(
    path: Union[str, Path],
    store: CampaignStore,
    *,
    scenario: Optional[str] = None,
    campaign: Optional[str] = None,
) -> int:
    """Land every complete entry of a campaign journal; returns rows appended.

    ``scenario`` labels the rows (defaults to the journal's constant
    ``campaign`` experiment label); the journaled cell key is kept as the
    store dedup key, so ingest is idempotent and consistent with a live
    campaign writing through the same keying.
    """

    from repro.distributed.campaign import JOURNAL_EXPERIMENT, load_journal_entries

    label = scenario or JOURNAL_EXPERIMENT
    appended = 0
    for key, entry in load_journal_entries(Path(path)).items():
        params = entry.get("params") or {}
        metrics = entry.get("metrics") or {}
        seed = entry.get("seed")
        row: Dict[str, Any] = {"experiment": label, "seed": seed}
        row.update(params)
        row.update(metrics)
        if store.append_row(
            row,
            scenario=label,
            key=key,
            campaign=campaign,
            seed=seed,
            repetition=entry.get("repetition"),
            elapsed_seconds=float(entry.get("elapsed_seconds", 0.0)),
            replayed=True,
        ):
            appended += 1
    return appended


def ingest_csv(
    path: Union[str, Path],
    store: CampaignStore,
    *,
    scenario: Optional[str] = None,
    campaign: Optional[str] = None,
) -> int:
    """Land a CSV export; returns rows appended (duplicates are dropped)."""

    text = Path(path).read_text(encoding="utf-8")
    appended = 0
    with io.StringIO(text) as handle:
        for parsed in csv.DictReader(handle):
            row = {
                column: _coerce_csv_value(value)
                for column, value in parsed.items()
                if column is not None and value is not None
            }
            label = scenario or str(row.get("experiment") or Path(path).stem)
            seed = row.get("seed")
            if store.append_row(
                row,
                scenario=label,
                campaign=campaign,
                seed=seed if isinstance(seed, int) else None,
                replayed=True,
            ):
                appended += 1
    return appended


def ingest(
    path: Union[str, Path],
    store: CampaignStore,
    *,
    fmt: Optional[str] = None,
    scenario: Optional[str] = None,
    campaign: Optional[str] = None,
) -> int:
    """Ingest a legacy file, dispatching on ``fmt`` or the file suffix."""

    resolved = fmt
    if resolved is None:
        suffix = Path(path).suffix.lower()
        resolved = {"csv": "csv", ".csv": "csv", ".jsonl": "journal",
                    ".ndjson": "journal"}.get(suffix, "journal")
    if resolved == "csv":
        return ingest_csv(path, store, scenario=scenario, campaign=campaign)
    if resolved == "journal":
        return ingest_journal(path, store, scenario=scenario, campaign=campaign)
    raise ValueError(f"unknown ingest format {resolved!r}; expected 'journal' or 'csv'")
