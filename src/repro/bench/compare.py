"""Comparator for two ``BENCH_*.json`` reports.

``compare_reports`` diffs a baseline report against a new one, case by
case, and flags

* **regressions** -- wall-time slowdowns larger than the threshold
  (default 20%), and
* **digest changes** -- the simulation produced different results, which a
  pure performance change must never do.

The CLI wrapper (``python -m repro.bench compare OLD NEW``) exits nonzero
when any regression (or digest change) is found, unless ``--warn-only`` is
passed -- the mode the CI smoke-bench job uses, where shared-runner timing
noise would make a hard gate flaky.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

DEFAULT_THRESHOLD = 0.20


@dataclass
class CaseDelta:
    """Comparison of one case between a baseline and a new report."""

    case: str
    baseline_wall: Optional[float]
    new_wall: Optional[float]
    #: Relative wall-time change, (new - old) / old; positive = slower.
    rel_change: Optional[float]
    baseline_events_per_sec: Optional[float]
    new_events_per_sec: Optional[float]
    digest_match: Optional[bool]
    status: str  # "ok" | "regression" | "digest-change" | "tier-mismatch" | "missing"

    def describe(self) -> str:
        if self.status == "missing":
            side = "baseline" if self.baseline_wall is None else "new report"
            return f"{self.case}: only present in one report (missing from {side})"
        if self.status == "tier-mismatch":
            return (
                f"{self.case}: reports ran different tiers -- wall times and "
                "digests are not comparable  [TIER MISMATCH]"
            )
        assert self.baseline_wall is not None and self.new_wall is not None
        assert self.rel_change is not None
        direction = "slower" if self.rel_change >= 0 else "faster"
        line = (
            f"{self.case}: {self.baseline_wall * 1e3:.1f} ms -> "
            f"{self.new_wall * 1e3:.1f} ms ({abs(self.rel_change) * 100:.1f}% {direction})"
        )
        if self.baseline_events_per_sec and self.new_events_per_sec:
            speedup = self.new_events_per_sec / self.baseline_events_per_sec
            line += (
                f", {self.baseline_events_per_sec:,.0f} -> "
                f"{self.new_events_per_sec:,.0f} events/s ({speedup:.2f}x)"
            )
        if self.digest_match is False:
            line += "  [RESULTS CHANGED: digest mismatch]"
        elif self.status == "regression":
            line += "  [REGRESSION]"
        return line


@dataclass
class Comparison:
    """Full report-to-report comparison."""

    deltas: List[CaseDelta]
    threshold: float

    @property
    def regressions(self) -> List[CaseDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def digest_changes(self) -> List[CaseDelta]:
        return [d for d in self.deltas if d.status == "digest-change"]

    @property
    def tier_mismatches(self) -> List[CaseDelta]:
        return [d for d in self.deltas if d.status == "tier-mismatch"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.digest_changes and not self.tier_mismatches

    def summary(self) -> str:
        lines = [d.describe() for d in self.deltas]
        if self.ok:
            verdict = (
                "OK: no regression above "
                f"{self.threshold * 100:.0f}% and no result change"
            )
        else:
            verdict = (
                f"FAIL: {len(self.regressions)} regression(s), "
                f"{len(self.digest_changes)} result change(s), "
                f"{len(self.tier_mismatches)} tier mismatch(es) "
                f"(threshold {self.threshold * 100:.0f}%)"
            )
        return "\n".join(lines + [verdict])


def _index_cases(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {entry["case"]: entry for entry in report.get("results", [])}


def compare_reports(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    check_digests: bool = True,
) -> Comparison:
    """Diff two bench reports; see the module docstring for semantics."""

    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    base_cases = _index_cases(baseline)
    new_cases = _index_cases(new)
    deltas: List[CaseDelta] = []
    for name in sorted(set(base_cases) | set(new_cases)):
        old = base_cases.get(name)
        cur = new_cases.get(name)
        if old is None or cur is None:
            deltas.append(
                CaseDelta(
                    case=name,
                    baseline_wall=old["wall_seconds"] if old else None,
                    new_wall=cur["wall_seconds"] if cur else None,
                    rel_change=None,
                    baseline_events_per_sec=None,
                    new_events_per_sec=None,
                    digest_match=None,
                    status="missing",
                )
            )
            continue
        old_wall = float(old["wall_seconds"])
        new_wall = float(cur["wall_seconds"])
        rel = (new_wall - old_wall) / old_wall if old_wall > 0 else 0.0
        if old.get("tier") != cur.get("tier"):
            # Different parameter tiers: neither the wall times nor the
            # digests are comparable -- fail loudly instead of judging noise.
            deltas.append(
                CaseDelta(
                    case=name,
                    baseline_wall=old_wall,
                    new_wall=new_wall,
                    rel_change=None,
                    baseline_events_per_sec=old.get("events_per_sec"),
                    new_events_per_sec=cur.get("events_per_sec"),
                    digest_match=None,
                    status="tier-mismatch",
                )
            )
            continue
        digest_match = old.get("digest") == cur.get("digest")
        if check_digests and digest_match is False:
            status = "digest-change"
        elif rel > threshold:
            status = "regression"
        else:
            status = "ok"
        deltas.append(
            CaseDelta(
                case=name,
                baseline_wall=old_wall,
                new_wall=new_wall,
                rel_change=rel,
                baseline_events_per_sec=old.get("events_per_sec"),
                new_events_per_sec=cur.get("events_per_sec"),
                digest_match=digest_match,
                status=status,
            )
        )
    return Comparison(deltas=deltas, threshold=threshold)
