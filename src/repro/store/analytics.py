"""DuckDB SQL layer over a campaign store (optional ``[analytics]`` extra).

DuckDB reads the store's Parquet partitions natively (and the JSONL
fallback partitions through ``read_json``), so a store written by a machine
with pyarrow can be queried on another with only duckdb -- and vice versa.
:func:`connect` builds an in-memory connection exposing one view, ``rows``,
that unions every manifest-referenced part file *by name*: heterogeneous
sweeps whose later parts carry extra columns simply surface NULLs in the
earlier ones.

Everything in this module degrades loudly, not silently: when duckdb is
missing, :class:`~repro.store.api.StoreUnavailableError` names the extra to
install; the named queries themselves keep working through their
pure-python twins (:mod:`repro.store.queries`).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.store.api import StoreUnavailableError
from repro.store.columnar import CampaignStore


def duckdb_available() -> bool:
    try:
        import duckdb  # noqa: F401

        return True
    except ImportError:
        return False


def _file_list(paths: List[Any]) -> str:
    quoted = ", ".join("'" + str(path).replace("'", "''") + "'" for path in paths)
    return f"[{quoted}]"


def rows_view_sql(store: CampaignStore) -> str:
    """The SELECT unioning every part file of the store, by column name."""

    selects: List[str] = []
    by_format = store.files_by_format()
    parquet = by_format.get("parquet")
    if parquet:
        selects.append(
            f"SELECT * FROM read_parquet({_file_list(parquet)}, union_by_name=true)"
        )
    jsonl = by_format.get("jsonl")
    if jsonl:
        selects.append(
            f"SELECT * FROM read_json({_file_list(jsonl)}, "
            "format='newline_delimited', union_by_name=true)"
        )
    if not selects:
        raise StoreEmptyError(store)
    return " UNION ALL BY NAME ".join(selects)


class StoreEmptyError(RuntimeError):
    """The store has no landed partitions yet (nothing to query)."""

    def __init__(self, store: CampaignStore) -> None:
        super().__init__(
            f"store {store.root} has no landed partitions; run a sweep with "
            "--store/--out or `python -m repro.store ingest` first"
        )


def connect(store: CampaignStore) -> Any:
    """An in-memory DuckDB connection with the ``rows`` view installed."""

    try:
        import duckdb
    except ImportError:
        raise StoreUnavailableError("SQL analytics", "duckdb") from None
    connection = duckdb.connect(":memory:")
    connection.execute(f"CREATE VIEW rows AS {rows_view_sql(store)}")
    return connection


def fetch_dicts(connection: Any, sql: str) -> List[Dict[str, Any]]:
    """Execute ``sql`` and return the result set as a list of dict rows."""

    cursor = connection.execute(sql)
    columns = [description[0] for description in cursor.description]
    return [dict(zip(columns, values)) for values in cursor.fetchall()]


def run_sql_query(store: CampaignStore, sql: str) -> List[Dict[str, Any]]:
    """One-shot: connect, install the ``rows`` view, run ``sql``, close."""

    connection = connect(store)
    try:
        return fetch_dicts(connection, sql)
    finally:
        connection.close()
