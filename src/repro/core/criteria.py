"""Optimisation criteria (section 3 of the paper).

The paper reviews the criteria "usually used in the literature":

* minimisation of the **makespan** ``Cmax = max_j C_j``;
* minimisation of the **average completion time** ``sum_j C_j`` and its
  weighted variant ``sum_j w_j C_j``;
* minimisation of the **mean stretch** (sum of ``C_j - r_j``, i.e. the
  average response time between submission and completion);
* minimisation of the **maximum stretch** (the longest waiting time for a
  user);
* **maximum throughput** (steady state): number of elementary tasks
  completed per unit of time;
* minimisation of the **tardiness** family: number of late tasks, total
  tardiness, maximum tardiness (with respect to due dates);
* **normalised** versions of the above (with respect to the workload).

Every function takes a :class:`repro.core.allocation.Schedule` (or, where it
makes sense, raw completion-time mappings) and returns a float.  The
:class:`CriteriaReport` helper evaluates all of them at once -- it is what the
experiment harness stores for each simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.allocation import Schedule


# ---------------------------------------------------------------------------
# Elementary criteria
# ---------------------------------------------------------------------------


def makespan(schedule: Schedule) -> float:
    """``Cmax``: latest completion time over all the tasks."""

    return schedule.makespan()


def sum_completion_times(schedule: Schedule) -> float:
    """``sum_j C_j`` -- proportional to the average completion time."""

    return sum(e.completion for e in schedule)


def mean_completion_time(schedule: Schedule) -> float:
    if len(schedule) == 0:
        return 0.0
    return sum_completion_times(schedule) / len(schedule)


def weighted_completion_time(schedule: Schedule) -> float:
    """``sum_j w_j C_j`` -- the criterion of Figure 2 (top)."""

    return sum(e.job.weight * e.completion for e in schedule)


def flow_times(schedule: Schedule) -> Dict[str, float]:
    """Per-job flow time (a.k.a. response time) ``C_j - r_j``."""

    return {e.job.name: e.completion - e.job.release_date for e in schedule}


def mean_stretch(schedule: Schedule) -> float:
    """Mean of ``C_j - r_j`` -- what the paper calls the *mean stretch*.

    Note that the paper defines the stretch additively ("the sum of the
    difference between completion times and release dates"); the normalised
    variant (flow divided by processing time) is available as
    :func:`mean_normalized_stretch`.
    """

    if len(schedule) == 0:
        return 0.0
    return sum(flow_times(schedule).values()) / len(schedule)


def sum_stretch(schedule: Schedule) -> float:
    return sum(flow_times(schedule).values())


def max_stretch(schedule: Schedule) -> float:
    """Maximum of ``C_j - r_j`` -- "the longest waiting time for a user"."""

    flows = flow_times(schedule)
    return max(flows.values()) if flows else 0.0


def _reference_time(entry) -> float:
    """Smallest possible processing time of a job, used to normalise stretches."""

    job = entry.job
    try:
        best = job.best_runtime()  # MoldableJob
    except AttributeError:
        best = entry.allocation.runtime
    return max(best, 1e-12)


def mean_normalized_stretch(schedule: Schedule) -> float:
    """Mean of ``(C_j - r_j) / p_j^min`` (slowdown-style normalisation)."""

    if len(schedule) == 0:
        return 0.0
    total = 0.0
    for entry in schedule:
        total += (entry.completion - entry.job.release_date) / _reference_time(entry)
    return total / len(schedule)


def max_normalized_stretch(schedule: Schedule) -> float:
    worst = 0.0
    for entry in schedule:
        worst = max(
            worst,
            (entry.completion - entry.job.release_date) / _reference_time(entry),
        )
    return worst


def throughput(schedule: Schedule, horizon: Optional[float] = None) -> float:
    """Number of tasks completed per unit of time up to ``horizon``.

    With ``horizon=None`` the makespan is used, which gives the average
    throughput of the whole schedule.  The steady-state throughput studied in
    the DLT literature is exposed by :mod:`repro.core.dlt.steady_state`.
    """

    horizon = schedule.makespan() if horizon is None else horizon
    if horizon <= 0:
        return 0.0
    done = sum(1 for e in schedule if e.completion <= horizon + 1e-12)
    return done / horizon


def tardiness(schedule: Schedule) -> Dict[str, float]:
    """Per-job tardiness ``max(0, C_j - d_j)`` (0 when no due date is set)."""

    out = {}
    for entry in schedule:
        due = entry.job.due_date
        out[entry.job.name] = 0.0 if due is None else max(0.0, entry.completion - due)
    return out


def total_tardiness(schedule: Schedule) -> float:
    return sum(tardiness(schedule).values())


def max_tardiness(schedule: Schedule) -> float:
    values = tardiness(schedule).values()
    return max(values) if values else 0.0


def late_job_count(schedule: Schedule) -> int:
    """Number of late tasks (tardiness > 0)."""

    return sum(1 for t in tardiness(schedule).values() if t > 1e-12)


def normalized_makespan(schedule: Schedule) -> float:
    """Makespan divided by the area lower bound ``W / m`` (>= 1 when packed)."""

    work = schedule.total_work()
    if work <= 0:
        return 0.0
    return schedule.makespan() * schedule.machine_count / work


# ---------------------------------------------------------------------------
# Aggregated report
# ---------------------------------------------------------------------------


@dataclass
class CriteriaReport:
    """All criteria of section 3 evaluated on one schedule."""

    n_jobs: int
    makespan: float
    sum_completion: float
    mean_completion: float
    weighted_completion: float
    mean_stretch: float
    max_stretch: float
    mean_normalized_stretch: float
    max_normalized_stretch: float
    throughput: float
    total_tardiness: float
    max_tardiness: float
    late_jobs: int
    utilization: float
    total_work: float

    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "CriteriaReport":
        return cls(
            n_jobs=len(schedule),
            makespan=makespan(schedule),
            sum_completion=sum_completion_times(schedule),
            mean_completion=mean_completion_time(schedule),
            weighted_completion=weighted_completion_time(schedule),
            mean_stretch=mean_stretch(schedule),
            max_stretch=max_stretch(schedule),
            mean_normalized_stretch=mean_normalized_stretch(schedule),
            max_normalized_stretch=max_normalized_stretch(schedule),
            throughput=throughput(schedule),
            total_tardiness=total_tardiness(schedule),
            max_tardiness=max_tardiness(schedule),
            late_jobs=late_job_count(schedule),
            utilization=schedule.utilization(),
            total_work=schedule.total_work(),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_jobs": self.n_jobs,
            "makespan": self.makespan,
            "sum_completion": self.sum_completion,
            "mean_completion": self.mean_completion,
            "weighted_completion": self.weighted_completion,
            "mean_stretch": self.mean_stretch,
            "max_stretch": self.max_stretch,
            "mean_normalized_stretch": self.mean_normalized_stretch,
            "max_normalized_stretch": self.max_normalized_stretch,
            "throughput": self.throughput,
            "total_tardiness": self.total_tardiness,
            "max_tardiness": self.max_tardiness,
            "late_jobs": self.late_jobs,
            "utilization": self.utilization,
            "total_work": self.total_work,
        }


ALL_CRITERIA = {
    "makespan": makespan,
    "sum_completion": sum_completion_times,
    "mean_completion": mean_completion_time,
    "weighted_completion": weighted_completion_time,
    "mean_stretch": mean_stretch,
    "sum_stretch": sum_stretch,
    "max_stretch": max_stretch,
    "mean_normalized_stretch": mean_normalized_stretch,
    "max_normalized_stretch": max_normalized_stretch,
    "throughput": throughput,
    "total_tardiness": total_tardiness,
    "max_tardiness": max_tardiness,
    "normalized_makespan": normalized_makespan,
}
"""Registry mapping criterion names to their evaluation function."""
