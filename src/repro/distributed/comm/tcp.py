"""The ``tcp://`` comm backend: asyncio streams, PR-4 wire format unchanged.

One frame = 4-byte big-endian length header + that many bytes of UTF-8 JSON
(see :mod:`repro.distributed.protocol`, which owns the format).  Because the
bytes on the wire are identical to the old thread-per-connection runtime,
plain-socket peers -- external workers from older deployments, the raw
``FakeWorker`` protocol tests -- interoperate with the asyncio scheduler
without change.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, Mapping, Optional

from repro.distributed import protocol
from repro.distributed.comm import core


class TCPComm(core.Comm):
    """One framed asyncio stream connection."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()  # frames must never interleave
        self._closed = False
        try:
            peer = writer.get_extra_info("peername")
            self.peer = f"tcp://{peer[0]}:{peer[1]}" if peer else "tcp://?"
        except (OSError, IndexError, TypeError):
            self.peer = "tcp://?"

    async def send(self, message: Mapping[str, Any]) -> None:
        blob = protocol.dump_frame(message)
        frame = protocol.pack_header(len(blob)) + blob
        if self._closed:
            raise protocol.ConnectionClosed(f"comm to {self.peer} is closed")
        try:
            async with self._send_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (BrokenPipeError, ConnectionResetError, OSError) as error:
            self._closed = True
            raise protocol.ConnectionClosed(
                f"peer {self.peer} went away while sending: {error}"
            ) from error

    async def recv(self) -> Dict[str, Any]:
        if self._closed:
            raise protocol.ConnectionClosed(f"comm to {self.peer} is closed")
        try:
            header = await self._reader.readexactly(protocol.header_size())
            length = protocol.unpack_header(header)
            protocol.check_frame_length(length)
            blob = await self._reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            self._closed = True
            raise protocol.ConnectionClosed(
                f"connection to {self.peer} closed mid-frame "
                f"({len(error.partial)} of {error.expected or 0} bytes)"
            ) from error
        except (ConnectionResetError, ConnectionAbortedError, OSError) as error:
            self._closed = True
            raise protocol.ConnectionClosed(
                f"peer {self.peer} reset the connection: {error}"
            ) from error
        return protocol.load_frame(blob)

    async def close(self) -> None:
        if self._closed and self._writer.is_closing():
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass

    @property
    def closed(self) -> bool:
        return self._closed or self._writer.is_closing()


class TCPListener(core.Listener):
    """An asyncio server handing each accepted connection to the handler."""

    def __init__(self, location: str, handler: core.ConnectionHandler) -> None:
        self._host, self._port = protocol.parse_host_port(location, f"tcp://{location}")
        self._handler = handler
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._accept, self._host or None, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        await self._handler(TCPComm(reader, writer))

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except asyncio.CancelledError:
                pass
            self._server = None

    @property
    def address(self) -> str:
        # A wildcard bind is not a dialable contact address; advertise
        # loopback, matching the old scheduler's behaviour.
        host = self._host if self._host not in ("", "0.0.0.0") else "127.0.0.1"
        return protocol.format_address(host, self._port)


class TCPBackend(core.Backend):
    scheme = "tcp"

    def validate(self, location: str) -> None:
        protocol.parse_host_port(location, f"tcp://{location}")

    async def connect(self, location: str) -> core.Comm:
        host, port = protocol.parse_host_port(location, f"tcp://{location}")
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as error:
            raise core.CommClosedError(
                f"cannot connect to tcp://{host}:{port}: {error}"
            ) from error
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        return TCPComm(reader, writer)

    def listener(self, location: str, handler: core.ConnectionHandler) -> core.Listener:
        return TCPListener(location, handler)


core.register_backend(TCPBackend())
