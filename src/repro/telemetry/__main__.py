"""``python -m repro.telemetry``: flight-recorder record / replay / report."""

import sys

from repro.telemetry.cli import main

if __name__ == "__main__":
    sys.exit(main())
