"""The flight recorder: bus events landing as queryable store rows."""

from __future__ import annotations

import json

import pytest

from repro.store.columnar import CampaignStore
from repro.telemetry import TelemetryBus, TelemetryRecorder, telemetry_scenario


@pytest.fixture
def bus():
    return TelemetryBus()


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store", campaign="run1")


class TestRecording:
    def test_events_land_as_flat_rows(self, bus, store):
        with TelemetryRecorder(store, bus=bus, campaign="run1") as recorder:
            bus.emit("worker.w1.spans", "span", name="cell.execute", seconds=0.5)
            bus.emit("scheduler", "assign", worker="w1")
        assert recorder.recorded == 2
        assert recorder.dropped == 0
        records = sorted(store.records(), key=lambda r: r["row_json"])
        rows = [json.loads(record["row_json"]) for record in records]
        by_topic = {row["topic"]: row for row in rows}
        span = by_topic["worker.w1.spans"]
        assert span["kind"] == "span"
        assert span["name"] == "cell.execute"
        assert span["seconds"] == 0.5
        assert span["seq"] == 1 and span["gseq"] == 1
        assert all(
            record["scenario"] == telemetry_scenario("run1") for record in records
        )

    def test_payload_never_shadows_position_columns(self, bus, store):
        # A payload carrying its own "seq"/"topic" must not clobber the
        # recorder's position metadata (the dedup key depends on it).
        with TelemetryRecorder(store, bus=bus, campaign="run1"):
            bus.publish("t", {"kind": "weird", "seq": 999, "topic": "fake", "gseq": -1})
        (record,) = store.records()
        row = json.loads(record["row_json"])
        assert row["topic"] == "t" and row["seq"] == 1 and row["gseq"] == 1

    def test_two_recording_sessions_never_dedup_each_other(self, bus, store):
        recorder = TelemetryRecorder(store, bus=bus, campaign="run1")
        with recorder:
            bus.emit("t", "tick", n=1)
        with recorder:
            bus.emit("t", "tick", n=1)  # same topic, same per-topic seq
        assert recorder.recorded == 2
        assert recorder.skipped == 0
        assert len(list(store.records())) == 2

    def test_path_store_opens_a_campaign_store(self, bus, tmp_path):
        with TelemetryRecorder(tmp_path / "flight", bus=bus, campaign="c") as rec:
            bus.emit("t", "tick")
        assert rec.recorded == 1
        reopened = CampaignStore(tmp_path / "flight", campaign="c")
        assert len(list(reopened.records())) == 1

    def test_stop_is_idempotent_and_restartable(self, bus, store):
        recorder = TelemetryRecorder(store, bus=bus, campaign="run1")
        recorder.start()
        with pytest.raises(RuntimeError):
            recorder.start()
        recorder.stop()
        recorder.stop()  # no-op
        recorder.start()
        bus.emit("t", "tick")
        recorder.stop()
        assert recorder.recorded == 1
