"""Scheduler telemetry: the versioned stats payload and the event stream.

``SchedulerStats.to_payload()`` is the one snapshot shape consumed by the
CLI stderr line, the dashboard endpoint and these tests; the scheduler's
bus events are observation-only and must narrate a campaign without
perturbing it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import DistributedExecutor
from repro.distributed.scheduler import SchedulerStats
from repro.experiments.harness import run_experiment
from repro.telemetry import (
    TOPIC_ASSIGNMENTS,
    TOPIC_QUEUE,
    TOPIC_SCHEDULER,
    TOPIC_STATS,
    TOPIC_SWEEP,
    TOPIC_WORKERS,
    SCHEMA_VERSION,
    TelemetryBus,
)


def seeded_value(seed: int, k: int) -> dict:
    rng = np.random.default_rng(seed * 1009 + k)
    return {"value": float(rng.normal())}


class TestStatsPayload:
    def test_payload_is_versioned_with_counters_and_rates(self):
        stats = SchedulerStats(results=10, steals=2, speculations=1,
                               duplicates=2, retries=5)
        body = stats.to_payload()
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["kind"] == "scheduler-stats"
        assert body["counters"]["results"] == 10
        assert body["rates"]["steal_fraction"] == pytest.approx(0.2)
        assert body["rates"]["speculation_fraction"] == pytest.approx(0.1)
        assert body["rates"]["duplicate_fraction"] == pytest.approx(2 / 12)
        assert body["rates"]["retry_fraction"] == pytest.approx(0.5)
        assert "results_per_second" not in body["rates"]

    def test_elapsed_seconds_adds_throughput(self):
        body = SchedulerStats(results=8).to_payload(elapsed_seconds=2.0)
        assert body["rates"]["results_per_second"] == pytest.approx(4.0)

    def test_zero_results_yields_zero_rates_not_division_errors(self):
        rates = SchedulerStats().to_payload()["rates"]
        assert set(rates.values()) == {0.0}

    def test_as_dict_is_a_deprecated_alias_of_counters(self):
        stats = SchedulerStats(results=3)
        with pytest.warns(DeprecationWarning, match="as_dict\\(\\) is deprecated"):
            assert stats.as_dict() == stats.counters()


class TestCampaignEventStream:
    def test_inproc_campaign_narrates_itself_onto_the_bus(self):
        bus = TelemetryBus()
        executor = DistributedExecutor("inproc://", workers=2, telemetry=bus)
        result = run_experiment(
            "tel", seeded_value, {"k": [1, 2, 3]},
            repetitions=2, executor=executor,
        )
        assert len(result.rows) == 6

        scheduler_kinds = [e.payload["kind"] for e in bus.events(TOPIC_SCHEDULER)]
        assert scheduler_kinds[0] == "campaign-start"
        assert scheduler_kinds[-1] == "campaign-end"

        joins = [e for e in bus.events(TOPIC_WORKERS)
                 if e.payload["kind"] == "worker-joined"]
        assert len(joins) == 2

        results = [e for e in bus.events(TOPIC_ASSIGNMENTS)
                   if e.payload["kind"] == "result"]
        assert len(results) == 6
        assert all(e.payload["failed"] is False for e in results)
        assigns = [e for e in bus.events(TOPIC_ASSIGNMENTS)
                   if e.payload["kind"] in ("assign", "speculate")]
        assert len(assigns) >= 6

        samples = bus.events(TOPIC_QUEUE)
        assert samples and all(e.payload["kind"] == "queue-sample" for e in samples)

        (stats_event,) = bus.events(TOPIC_STATS)
        body = stats_event.payload
        assert body["kind"] == "scheduler-stats"
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["counters"]["results"] == 6
        assert body["rates"]["results_per_second"] > 0

    def test_telemetry_false_keeps_scheduler_topics_silent(self):
        from repro.telemetry import set_bus

        fresh = TelemetryBus()
        previous = set_bus(fresh)
        try:
            executor = DistributedExecutor("inproc://", workers=1, telemetry=False)
            run_experiment("quiet", seeded_value, {"k": [1]},
                           repetitions=1, executor=executor)
        finally:
            set_bus(previous)
        # The harness still narrates the sweep on the default bus; only the
        # scheduler's own topics were switched off.
        assert fresh.events(TOPIC_SWEEP)
        assert fresh.events(TOPIC_SCHEDULER) == []
        assert fresh.events(TOPIC_ASSIGNMENTS) == []
        assert fresh.events(TOPIC_STATS) == []
        assert executor.stats.results == 1
