"""Span/counter/histogram instrumentation: gating, payloads, aggregation."""

from __future__ import annotations

import pytest

from repro.telemetry import NULL_SPAN, SpanRecorder, TelemetryBus
from repro.telemetry.events import TOPIC_SPANS
from repro.telemetry.spans import SPANS_ENV_VAR


@pytest.fixture
def bus():
    return TelemetryBus()


class TestGating:
    def test_disabled_recorder_returns_the_shared_null_span(self):
        spans = SpanRecorder(None)
        assert not spans.enabled
        assert spans.span("anything", field=1) is NULL_SPAN
        with spans.span("anything"):
            pass  # costs one method call and a no-op with-block
        spans.record("anything", 1.0)
        spans.counter("hits")
        spans.observe("latency", 0.5)
        assert spans.flush() is False
        assert spans.spans_published == 0

    def test_for_bus_disabled_without_subscribers(self, bus, monkeypatch):
        monkeypatch.delenv(SPANS_ENV_VAR, raising=False)
        assert not SpanRecorder.for_bus(bus).enabled

    def test_for_bus_enabled_by_a_live_subscriber(self, bus, monkeypatch):
        monkeypatch.delenv(SPANS_ENV_VAR, raising=False)
        with bus.subscribe():
            assert SpanRecorder.for_bus(bus).enabled
        assert not SpanRecorder.for_bus(bus).enabled  # subscriber gone

    def test_for_bus_env_flag_forces_capture(self, bus, monkeypatch):
        monkeypatch.setenv(SPANS_ENV_VAR, "1")
        assert SpanRecorder.for_bus(bus).enabled
        monkeypatch.setenv(SPANS_ENV_VAR, "0")
        assert not SpanRecorder.for_bus(bus).enabled


class TestSpans:
    def test_span_publishes_name_seconds_and_fields(self, bus):
        spans = SpanRecorder(bus, worker="w1")
        with spans.span("cell.execute", index=3):
            pass
        (event,) = bus.events(TOPIC_SPANS)
        body = event.payload
        assert body["kind"] == "span"
        assert body["name"] == "cell.execute"
        assert body["seconds"] >= 0.0
        assert body["worker"] == "w1"
        assert body["index"] == 3
        assert "failed" not in body
        assert spans.spans_published == 1

    def test_span_marks_failures_and_reraises(self, bus):
        spans = SpanRecorder(bus)
        with pytest.raises(RuntimeError):
            with spans.span("cell.execute"):
                raise RuntimeError("boom")
        (event,) = bus.events(TOPIC_SPANS)
        assert event.payload["failed"] is True

    def test_record_publishes_premeasured_durations(self, bus):
        spans = SpanRecorder(bus, worker="w1")
        spans.record("worker.idle", 0.25, cells=2)
        (event,) = bus.events(TOPIC_SPANS)
        assert event.payload["name"] == "worker.idle"
        assert event.payload["seconds"] == 0.25
        assert event.payload["cells"] == 2

    def test_none_valued_base_fields_are_dropped(self, bus):
        spans = SpanRecorder(bus, worker=None, experiment="e")
        spans.record("x", 0.0)
        (event,) = bus.events(TOPIC_SPANS)
        assert "worker" not in event.payload
        assert event.payload["experiment"] == "e"


class TestMetrics:
    def test_counters_and_histograms_flush_as_one_event(self, bus):
        spans = SpanRecorder(bus, worker="w1")
        spans.counter("cache-hit")
        spans.counter("cache-hit", 2)
        spans.observe("latency", 0.2)
        spans.observe("latency", 0.6)
        assert spans.flush() is True
        (event,) = bus.events(TOPIC_SPANS)
        body = event.payload
        assert body["kind"] == "metrics"
        assert body["counters"] == {"cache-hit": 3}
        assert body["histograms"]["latency"] == {
            "count": 2, "total": 0.8, "min": 0.2, "max": 0.6,
        }

    def test_flush_resets_the_accumulators(self, bus):
        spans = SpanRecorder(bus)
        spans.counter("n")
        assert spans.flush() is True
        assert spans.flush() is False  # nothing new accumulated
        assert len(bus.events(TOPIC_SPANS)) == 1
