"""Centralized light-grid simulation (section 5.2, "Centralized").

"Each cluster keeps its own submission system used only for jobs that are to
be processed locally.  Additionally, there is a centralized server to which
all grid jobs are submitted.  In this setting, grid jobs are only
multi-parametric jobs, which the centralized server submits on the local
clusters in order to fill the holes of their respective schedules.  This is
achieved through the notion of best-effort jobs: the local scheduler gives no
warranty that the job will be finished.  If a locally submitted job requires
a processor currently in use by a best-effort job, the latter will be killed.
The central server then has to submit it once again.  [...]  Furthermore,
this ensures that local users of the clusters will not be disturbed by grid
jobs."

Since the unified-runtime refactor the simulator is a *configuration* of
:class:`repro.runtime.lifecycle.SchedulingRuntime`: one node per cluster
with preemption-aware free counts, plus the
:class:`repro.runtime.hooks.BestEffortHook` implementing the best-effort
protocol (fill idle processors, kill + resubmit on local demand).  The
**non-disturbance invariant** -- local jobs start exactly as if the grid
jobs did not exist -- is checked by the test-suite by comparing against a
simulation without grid jobs.

``local_policy`` accepts a single policy (name or instance, applied to
every cluster) or a mapping from cluster name to policy, so heterogeneous
grids can run a different scheduler per cluster.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Union

from repro.core.criteria import CriteriaReport
from repro.core.job import Job, ParametricSweep
from repro.core.policies.base import MoldableAllocator
from repro.core.policies.registry import (
    PolicySpec,
    resolve_cluster_policies,
)
from repro.platform.grid import LightGrid
from repro.runtime.hooks import BestEffortHook
from repro.runtime.hooks import GridServer  # noqa: F401  (compat re-export)
from repro.runtime.lifecycle import ClusterNode, RuntimeConfig, SchedulingRuntime
from repro.runtime.record import MODE_CENTRALIZED, SimulationRecord

#: Unified result model; the historical name is kept as an alias.
GridSimulationResult = SimulationRecord

_CENTRALIZED_CONFIG = RuntimeConfig(
    preempt_best_effort=True,
    local_info="local",
    track_work=True,
    starved_message="cluster {name!r} finished with {count} local jobs queued",
)


class CentralizedGridSimulator:
    """Simulate the centralized organisation of section 5.2 on a light grid."""

    def __init__(
        self,
        grid: LightGrid,
        *,
        local_policy: Union[PolicySpec, Mapping[str, PolicySpec]] = "fifo",
        allocator: Optional[MoldableAllocator] = None,
        best_effort_enabled: bool = True,
        trace_labels: bool = False,
    ) -> None:
        self.grid = grid
        self._policies = resolve_cluster_policies(
            grid, local_policy, allocator, default="fifo"
        )
        self.best_effort_enabled = best_effort_enabled
        #: Build per-event label strings (debugging aid; off on the fast path).
        self.trace_labels = trace_labels

    # -- main entry point ---------------------------------------------------------
    def run(
        self,
        local_jobs: Mapping[str, Sequence[Job]],
        grid_bags: Sequence[ParametricSweep] = (),
    ) -> SimulationRecord:
        """Run the simulation.

        Parameters
        ----------
        local_jobs:
            Mapping from cluster name to the list of jobs submitted locally on
            that cluster.
        grid_bags:
            Multi-parametric bags submitted to the central server.
        """

        unknown = [name for name in local_jobs if name not in self.grid.cluster_names]
        if unknown:
            raise ValueError(f"local jobs reference unknown clusters: {unknown}")

        server = GridServer(grid_bags if self.best_effort_enabled else [])
        nodes = [
            ClusterNode(
                cluster.name,
                cluster.processor_count,
                policy=self._policies[cluster.name],
                speed=cluster.machines[0].speed,
                cluster=cluster,
            )
            for cluster in self.grid
        ]
        runtime = SchedulingRuntime(
            nodes,
            hooks=[BestEffortHook(server)],
            config=_CENTRALIZED_CONFIG,
            trace_labels=self.trace_labels,
        )
        horizon = runtime.run(local_jobs)

        criteria: Dict[str, CriteriaReport] = {}
        utilization: Dict[str, float] = {}
        for node in nodes:
            node.schedule.validate(check_release_dates=True)
            criteria[node.name] = CriteriaReport.from_schedule(node.schedule)
            denom = node.machine_count * horizon
            utilization[node.name] = node.work / denom if denom > 0 else 0.0

        return SimulationRecord(
            mode=MODE_CENTRALIZED,
            machine_count=self.grid.processor_count,
            schedules={node.name: node.schedule for node in nodes},
            cluster_criteria=criteria,
            trace=runtime.trace,
            horizon=horizon,
            policies={node.name: node.policy.name for node in nodes},
            utilization=utilization,
            bag_completion=dict(server.bag_completion),
            runs_completed=dict(server.completed),
            kills=server.kills,
            launches=server.launches,
        )
