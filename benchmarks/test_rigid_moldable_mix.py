"""MIX-RIGID: the three strategies of section 5.1 for mixing rigid and moldable jobs.

"The first trivial idea is to separate rigid and moldable jobs and schedule
one category after the other.  Another solution is to calculate a-priori an
allocation for the moldable jobs [...].  The last solution is to modify the
bi-criteria algorithm in order to schedule each rigid job in the first batch
in which it fits.  These ideas probably lead to an increased performance
ratio."

The benchmark quantifies that increase on synthetic mixed workloads with
varying rigid fractions, for both criteria.  The (fraction, strategy) grid
is declared by the registered ``mix.rigid-moldable`` scenario: the composer
builds the same mixed workload for every strategy of a given (fraction,
seed) cell, so the strategies compete on identical instances.  Shape
assertions: every strategy stays within a small constant of the lower
bounds, and the first-fit-batch strategy (the one the paper leans towards)
is never far behind the best of the three on the weighted completion time.
"""

from __future__ import annotations


from repro.experiments.reporting import ascii_table
from repro.scenarios import get

RIGID_FRACTIONS = (0.2, 0.5, 0.8)
STRATEGIES = ("separate", "a_priori", "first_fit_batch")

SPEC = get("mix.rigid-moldable").evolve(
    sweep={
        "workload.rigid_fraction": list(RIGID_FRACTIONS),
        "policy.strategy": list(STRATEGIES),
    },
)


def test_rigid_moldable_mix_strategies(run_scenario_sweep, report):
    result = run_scenario_sweep(SPEC)
    rows = result.rows
    report("MIX-RIGID: strategies for a mix of rigid and moldable jobs (section 5.1)",
           ascii_table(rows))

    for row in rows:
        # "Increased performance ratio", but still bounded by small constants.
        assert row["makespan_ratio"] <= 5.0
        assert row["weighted_completion_ratio"] <= 8.0

    # The first-fit-batch integration stays within 50% of the best strategy on
    # the weighted completion time for every rigid fraction.
    for fraction in RIGID_FRACTIONS:
        group = {
            r["policy.strategy"]: r
            for r in rows
            if r["workload.rigid_fraction"] == fraction
        }
        best_wc = min(r["weighted_completion_ratio"] for r in group.values())
        assert group["first_fit_batch"]["weighted_completion_ratio"] <= 1.5 * best_wc + 1e-9

    # The more rigid the workload, the less the strategies differ (with few
    # moldable jobs there is little left to decide).
    def spread(fraction):
        values = [
            r["weighted_completion_ratio"]
            for r in rows
            if r["workload.rigid_fraction"] == fraction
        ]
        return max(values) - min(values)

    assert spread(RIGID_FRACTIONS[-1]) <= spread(RIGID_FRACTIONS[0]) + 1e-9
