"""Speedup and penalty models for moldable Parallel Tasks.

In the PT model (section 4 of the paper) communications are not handled
explicitly; they are folded into a *global penalty factor* that "reflects the
overhead for data distributions, synchronization, preemption or any extra
factors coming from the management of the parallel execution".  In practice
this penalty is expressed through the shape of the function
``p_j(k)`` -- the execution time of job ``j`` on ``k`` processors.

This module provides the classical parallel-profile families used to generate
synthetic moldable jobs:

* :class:`LinearSpeedup` -- perfect (embarrassingly parallel) speedup,
* :class:`AmdahlSpeedup` -- a sequential fraction bounds the speedup,
* :class:`PowerLawSpeedup` -- ``speedup(k) = k**alpha`` with ``alpha <= 1``,
* :class:`CommunicationPenaltySpeedup` -- perfect parallelism plus an
  additive per-processor overhead (the "global penalty factor"),
* :class:`RooflineSpeedup` -- linear up to a maximum useful parallelism,
  flat afterwards (a simple model of Downey-style profiles).

All models are deterministic, picklable, and callable: ``model(k)`` returns
the speedup on ``k`` processors.  :func:`make_runtime_table` converts a model
into the explicit runtime table expected by
:class:`repro.core.job.MoldableJob`, with optional monotony repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

import numpy as np


class SpeedupModel(Protocol):
    """Anything callable as ``model(nbproc) -> speedup``."""

    def __call__(self, nbproc: int) -> float:  # pragma: no cover - protocol
        ...


def _check_procs(nbproc: int) -> None:
    if nbproc < 1:
        raise ValueError(f"nbproc must be >= 1, got {nbproc}")


@dataclass(frozen=True)
class LinearSpeedup:
    """Perfect speedup: ``speedup(k) = k``."""

    def __call__(self, nbproc: int) -> float:
        _check_procs(nbproc)
        return float(nbproc)


@dataclass(frozen=True)
class AmdahlSpeedup:
    """Amdahl's law: a fraction ``serial_fraction`` of the work is sequential.

    ``speedup(k) = 1 / (serial_fraction + (1 - serial_fraction) / k)``.
    """

    serial_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")

    def __call__(self, nbproc: int) -> float:
        _check_procs(nbproc)
        return 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / nbproc)


@dataclass(frozen=True)
class PowerLawSpeedup:
    """Power-law speedup ``speedup(k) = k**alpha`` with ``0 <= alpha <= 1``.

    ``alpha = 1`` is perfect speedup, ``alpha = 0`` no speedup at all.  This
    family is frequently used in the moldable-scheduling literature because
    it yields monotonic profiles for every ``alpha`` in ``[0, 1]``.
    """

    alpha: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")

    def __call__(self, nbproc: int) -> float:
        _check_procs(nbproc)
        return float(nbproc) ** self.alpha


@dataclass(frozen=True)
class CommunicationPenaltySpeedup:
    """Perfect parallelism plus an additive communication overhead.

    The runtime on ``k`` processors of a job of sequential time ``p1`` is
    modelled as ``p1 / k + overhead * (k - 1)`` which corresponds to the
    speedup ``p1 / (p1 / k + overhead * (k - 1))``.  The model is expressed
    relative to the sequential time, so the overhead is given as a fraction
    ``overhead_fraction`` of the sequential time per extra processor.

    Beyond the optimal processor count the runtime starts increasing; to keep
    profiles monotonic (as required by the MRT analysis) the speedup is
    clamped at its maximum -- adding processors past the optimum neither
    helps nor hurts.
    """

    overhead_fraction: float = 0.01
    clamp: bool = True

    def __post_init__(self) -> None:
        if self.overhead_fraction < 0:
            raise ValueError("overhead_fraction must be >= 0")

    def raw_speedup(self, nbproc: int) -> float:
        _check_procs(nbproc)
        denom = 1.0 / nbproc + self.overhead_fraction * (nbproc - 1)
        return 1.0 / denom

    def __call__(self, nbproc: int) -> float:
        _check_procs(nbproc)
        if not self.clamp:
            return self.raw_speedup(nbproc)
        best = 0.0
        for k in range(1, nbproc + 1):
            best = max(best, self.raw_speedup(k))
        return best


@dataclass(frozen=True)
class RooflineSpeedup:
    """Linear speedup up to ``max_parallelism`` processors, flat afterwards.

    This is a simplification of the Downey model commonly used to describe
    the average parallelism of supercomputer jobs: the job cannot use more
    than ``max_parallelism`` processors effectively.
    """

    max_parallelism: int = 8

    def __post_init__(self) -> None:
        if self.max_parallelism < 1:
            raise ValueError("max_parallelism must be >= 1")

    def __call__(self, nbproc: int) -> float:
        _check_procs(nbproc)
        return float(min(nbproc, self.max_parallelism))


def _speedup_column(model: SpeedupModel, karr: "np.ndarray") -> "Optional[np.ndarray]":
    """Vectorised ``[model(1), ..., model(P)]`` for the built-in families.

    Returns ``None`` for models without a closed form (the caller falls back
    to the per-``k`` loop).  Every branch uses only elementwise ``+ - * /``,
    comparisons, and running max -- operations that are IEEE-identical to
    the scalar python evaluation -- so the resulting tables are bit-for-bit
    the same as the loop and every digest gate is preserved.  ``np.power``
    is deliberately avoided: its SIMD paths may round the last ulp
    differently from libm's ``pow`` used by python's ``**``.
    """

    if type(model) is LinearSpeedup:
        return karr.copy()
    if type(model) is AmdahlSpeedup:
        f = model.serial_fraction
        return 1.0 / (f + (1.0 - f) / karr)
    if type(model) is RooflineSpeedup:
        return np.minimum(karr, float(model.max_parallelism))
    if type(model) is CommunicationPenaltySpeedup:
        raw = 1.0 / (1.0 / karr + model.overhead_fraction * (karr - 1.0))
        # The scalar model clamps via a running max over 1..k (turning every
        # call into an O(k) loop, O(P^2) per table); maximum.accumulate is
        # the same fold in one pass.
        return np.maximum.accumulate(raw) if model.clamp else raw
    if type(model) is PowerLawSpeedup:
        alpha = model.alpha
        # Scalar ** on purpose (libm pow), vectorising only the dispatch.
        return np.array([float(k) ** alpha for k in range(1, karr.shape[0] + 1)])
    return None


def runtime_profile_array(
    sequential_time: float,
    max_procs: int,
    model: SpeedupModel,
    *,
    repair_monotony: bool = True,
) -> "np.ndarray":
    """Vectorised :func:`make_runtime_table` returning a float64 array.

    Bit-identical to the list version; this is the fast path used by the
    workload generators, which build one table per job.
    """

    if sequential_time <= 0:
        raise ValueError("sequential_time must be > 0")
    if max_procs < 1:
        raise ValueError("max_procs must be >= 1")
    karr = np.arange(1.0, max_procs + 1.0)
    speedups = _speedup_column(model, karr)
    if speedups is None:
        speedups = np.array([model(k) for k in range(1, max_procs + 1)], dtype=float)
    table = sequential_time / np.maximum(speedups, 1e-12)
    if repair_monotony:
        # Same fold as the sequential ``table[k] = min(table[k], table[k-1])``.
        np.minimum.accumulate(table, out=table)
    return table


def make_runtime_table(
    sequential_time: float,
    max_procs: int,
    model: SpeedupModel,
    *,
    repair_monotony: bool = True,
) -> List[float]:
    """Build the explicit runtime table ``[p(1), ..., p(max_procs)]``.

    When ``repair_monotony`` is true the table is post-processed so that
    runtimes never increase with the processor count (``p(k+1) <= p(k)``);
    profiles produced by well-behaved models already satisfy this, but user
    supplied callables may not.
    """

    if sequential_time <= 0:
        raise ValueError("sequential_time must be > 0")
    if max_procs < 1:
        raise ValueError("max_procs must be >= 1")
    karr = np.arange(1.0, max_procs + 1.0)
    if _speedup_column(model, karr) is not None:
        return runtime_profile_array(
            sequential_time, max_procs, model, repair_monotony=repair_monotony
        ).tolist()
    # Unknown model: evaluate it in pure python so exotic return types
    # (e.g. Fraction) keep their original arithmetic.
    table = [sequential_time / max(model(k), 1e-12) for k in range(1, max_procs + 1)]
    if repair_monotony:
        for k in range(1, len(table)):
            table[k] = min(table[k], table[k - 1])
    return table


def efficiency(model: SpeedupModel, nbproc: int) -> float:
    """Parallel efficiency ``speedup(k) / k`` of a model on ``nbproc`` processors."""

    if nbproc < 1:
        raise ValueError("nbproc must be >= 1")
    return model(nbproc) / nbproc


def optimal_allocation(
    sequential_time: float, max_procs: int, model: SpeedupModel
) -> int:
    """Processor count minimising the runtime of a job under ``model``."""

    table = make_runtime_table(sequential_time, max_procs, model, repair_monotony=False)
    best = min(range(max_procs), key=lambda k: (table[k], k))
    return best + 1
