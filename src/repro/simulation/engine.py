"""The discrete-event simulation kernel.

The :class:`Simulator` owns the clock and the event queue.  Two programming
styles are supported:

* **callbacks** -- ``sim.schedule(delay, fn)`` runs ``fn()`` after ``delay``
  time units; this is the style used by the cluster and grid simulators;
* **processes** -- generator functions that ``yield Timeout(d)`` (sleep) or
  ``yield event`` objects created by :meth:`Simulator.event` (wait until the
  event is succeeded).  Processes are convenient for writing scenario scripts
  in tests and examples.

The kernel is deterministic: simultaneous events run in scheduling order
(see :mod:`repro.simulation.events`), and there is no hidden source of
randomness -- all randomness lives in the workload generators, which take
explicit seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional, Union

from repro.simulation.events import Event, EventQueue


@dataclass
class Timeout:
    """Yielded by a process to sleep for ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("Timeout delay must be >= 0")


class SimEvent:
    """A one-shot condition processes can wait on.

    ``succeed(value)`` wakes every waiting process and stores ``value`` which
    becomes the result of the ``yield``.
    """

    def __init__(self, sim: "Simulator", label: str = "") -> None:
        self._sim = sim
        self.label = label
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError(f"event {self.label!r} already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        # Zero-delay resumes keep the kernel deterministic: each waiter gets
        # its own event at the current time, so the queue's (time, priority,
        # seq) order resumes waiters FIFO (registration order), interleaved
        # after anything already scheduled at this timestamp -- and when
        # several SimEvents trigger at the same instant, their waiters wake
        # in succeed() order.  The value is bound at schedule time so a later
        # mutation of the event cannot change what an earlier waiter sees.
        for process in waiters:
            self._sim.schedule(0.0, lambda p=process, v=value: p._resume(v))

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self._sim.schedule(0.0, lambda p=process, v=self.value: p._resume(v))
        else:
            self._waiters.append(process)


class Process:
    """A generator-based simulation process."""

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.name = name or repr(generator)
        self.finished = False
        self.result: Any = None
        self.completion_event = SimEvent(sim, label=f"{self.name}.done")

    def _start(self) -> None:
        self._sim.schedule(0.0, lambda: self._resume(None), label=f"start {self.name}")

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion_event.succeed(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._sim.schedule(yielded.delay, lambda: self._resume(None),
                               label=f"wake {self.name}")
        elif isinstance(yielded, SimEvent):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.completion_event._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded an unsupported object: {yielded!r}"
            )


class Simulator:
    """Discrete-event simulation kernel: clock + event queue + process runner."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stop_requested = False
        self.processed_events = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""

        return self._now

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Run ``callback`` after ``delay`` time units (relative to now)."""

        if delay < 0:
            raise ValueError("cannot schedule in the past (negative delay)")
        return self._queue.push(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Run ``callback`` at absolute simulation time ``time`` (>= now)."""

        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule at {time}, current time is already {self._now}"
            )
        return self._queue.push(max(time, self._now), callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    # -- processes -----------------------------------------------------------
    def process(self, generator: Generator, name: str = "") -> Process:
        """Register and start a generator-based process."""

        process = Process(self, generator, name)
        process._start()
        return process

    def event(self, label: str = "") -> SimEvent:
        """Create a waitable one-shot event."""

        return SimEvent(self, label)

    # -- run loop ------------------------------------------------------------
    def run(self, until: Optional[float] = None, *, max_events: Optional[int] = None) -> float:
        """Process events until the queue is empty, ``until`` or ``max_events``.

        Returns the simulation time reached.
        """

        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        count = 0
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until + 1e-12:
                    self._now = until
                    break
                event = self._queue.pop()
                self._now = event.time
                assert event.callback is not None
                event.callback()
                self.processed_events += 1
                count += 1
                if self._stop_requested:
                    break
                if max_events is not None and count >= max_events:
                    break
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""

        self._stop_requested = True

    def pending_events(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.3f}, pending={len(self._queue)})"
