"""Unit tests of the discrete-event kernel (events, engine, resources, traces)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Reservation
from repro.simulation.engine import Simulator, Timeout
from repro.simulation.events import EventQueue
from repro.simulation.resources import ProcessorPool
from repro.simulation.tracing import Trace, TraceEvent


class TestEventQueue:
    def test_orders_by_time_then_priority_then_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("late"))
        queue.push(1.0, lambda: order.append("early-b"), priority=1)
        queue.push(1.0, lambda: order.append("early-a"), priority=0)
        queue.push(1.0, lambda: order.append("early-c"), priority=1)
        while queue:
            queue.pop().callback()
        assert order == ["early-a", "early-b", "early-c", "late"]

    def test_cancel(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.cancel(event)
        assert len(queue) == 0
        with pytest.raises(IndexError):
            queue.pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0


class TestSimulator:
    def test_clock_advances_and_callbacks_fire_in_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(("a", sim.now)))
        sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
        end = sim.run()
        assert seen == [("b", 2.0), ("a", 5.0)]
        assert end == 5.0
        assert sim.processed_events == 2

    def test_schedule_at_and_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_stop(self):
        sim = Simulator()
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: pytest.fail("should not run"))
        sim.run()
        assert sim.now == 1.0
        assert sim.pending_events() == 1

    def test_cascading_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(3.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 4.0]

    def test_processes_with_timeouts(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            yield Timeout(delay)
            log.append((name, sim.now))
            yield Timeout(delay)
            log.append((name, sim.now))
            return name

        p1 = sim.process(worker("a", 1.0), name="a")
        p2 = sim.process(worker("b", 2.5), name="b")
        sim.run()
        assert log == [("a", 1.0), ("a", 2.0), ("b", 2.5), ("b", 5.0)]
        assert p1.finished and p1.result == "a"
        assert p2.finished and p2.result == "b"

    def test_process_waiting_on_event_and_other_process(self):
        sim = Simulator()
        gate = sim.event("gate")
        log = []

        def opener():
            yield Timeout(4.0)
            gate.succeed("open")

        def waiter():
            value = yield gate
            log.append((value, sim.now))
            return "done"

        def joiner(process):
            result = yield process
            log.append((result, sim.now))

        wait_process = sim.process(waiter(), name="waiter")
        sim.process(opener(), name="opener")
        sim.process(joiner(wait_process), name="joiner")
        sim.run()
        assert ("open", 4.0) in log
        assert ("done", 4.0) in log

    def test_invalid_timeout_and_yield(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Timeout(-1.0)

        def bad():
            yield 42

        sim.process(bad(), name="bad")
        with pytest.raises(TypeError):
            sim.run()


class TestProcessorPool:
    def test_acquire_and_release(self):
        pool = ProcessorPool(4)
        procs = pool.try_acquire("a", 3)
        assert procs == (0, 1, 2)
        assert pool.free_count() == 1
        assert pool.holder_of(1) == "a"
        assert pool.try_acquire("b", 2) is None
        pool.release("a")
        assert pool.free_count() == 4
        with pytest.raises(KeyError):
            pool.release("ghost")

    def test_duplicate_lease_rejected(self):
        pool = ProcessorPool(2)
        pool.try_acquire("a", 1)
        with pytest.raises(ValueError):
            pool.try_acquire("a", 1)

    def test_preemption_of_best_effort_leases(self):
        pool = ProcessorPool(4)
        killed = []
        pool.try_acquire("be-1", 2, preemptible=True, on_preempt=lambda p: killed.append(p))
        pool.try_acquire("be-2", 2, preemptible=True, on_preempt=lambda p: killed.append(p))
        assert pool.free_count() == 0
        # Without preemption the local job cannot start.
        assert pool.try_acquire("local-no", 3) is None
        # With preemption enough best-effort leases are killed.
        procs = pool.try_acquire("local", 3, allow_preemption=True)
        assert procs is not None and len(procs) == 3
        assert len(killed) >= 1
        assert pool.is_held("local")

    def test_preemptible_lease_cannot_preempt_others(self):
        pool = ProcessorPool(2)
        pool.try_acquire("be-1", 2, preemptible=True)
        assert pool.try_acquire("be-2", 1, preemptible=True, allow_preemption=True) is None

    def test_reservations_block_processors(self):
        reservation = Reservation(processors=(0, 1), start=0.0, end=10.0)
        pool = ProcessorPool(4, reservations=[reservation])
        assert pool.free_count(now=5.0) == 2
        assert pool.free_count(now=20.0) == 4

    def test_acquire_specific(self):
        pool = ProcessorPool(4)
        pool.acquire_specific("res", [1, 3])
        assert pool.holder_of(3) == "res"
        with pytest.raises(ValueError):
            pool.acquire_specific("other", [3])
        with pytest.raises(ValueError):
            pool.acquire_specific("oob", [9])


class TestTrace:
    def test_record_and_query(self):
        trace = Trace()
        trace.record(0.0, "submit", "j1", cluster="c")
        trace.record(1.0, "start", "j1", cluster="c", processors=[0, 1])
        trace.record(5.0, "complete", "j1", cluster="c")
        trace.record(2.0, "start", "j2", cluster="c", processors=[2])
        trace.record(3.0, "kill", "j2", cluster="c")
        assert len(trace) == 5
        assert trace.count("start") == 2
        assert trace.completion_time("j1") == 5.0
        assert trace.completion_time("ghost") is None
        assert trace.first_start("j2") == 2.0
        assert trace.kills() == 1

    def test_busy_intervals_and_utilization(self):
        trace = Trace()
        trace.record(0.0, "start", "a", cluster="c", processors=[0, 1])
        trace.record(4.0, "complete", "a", cluster="c")
        trace.record(0.0, "start", "b", cluster="c", processors=[2])
        trace.record(2.0, "kill", "b", cluster="c")
        intervals = trace.busy_intervals("c")
        assert ("a", 0.0, 4.0, 2) in intervals
        assert ("b", 0.0, 2.0, 1) in intervals
        # busy area = 2*4 + 1*2 = 10 over 4 machines * 4 time units
        assert trace.utilization(4, 4.0, "c") == pytest.approx(10 / 16)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(0.0, "explode", "j")

    def test_csv_export(self):
        trace = Trace()
        trace.record(0.0, "submit", "j1", cluster="c", info="local")
        text = trace.to_csv()
        assert "time,kind,job,cluster,processors,info" in text
        assert "submit" in text
        assert len(trace.to_records()) == 1


@settings(max_examples=30, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
def test_simulator_fires_events_in_nondecreasing_time_order(delays):
    """Property: the simulation clock never goes backwards."""

    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)


class TestSimEventResumeOrdering:
    """Regression tests pinning the zero-delay resume ordering of SimEvent.

    ``SimEvent.succeed`` wakes waiters through zero-delay events, so the
    ordering contract is inherited from the queue's (time, priority, seq)
    tie-break: waiters of one event resume FIFO, waiters of several events
    succeeding at the same timestamp resume in succeed() order, and resumes
    run after callbacks that were already scheduled at the same timestamp.
    """

    def test_waiters_resume_in_registration_order(self):
        sim = Simulator()
        event = sim.event("gate")
        order = []

        def waiter(name):
            value = yield event
            order.append((name, value))

        for name in ("first", "second", "third"):
            sim.process(waiter(name), name=name)
        sim.schedule(1.0, lambda: event.succeed("go"))
        sim.run()
        assert order == [("first", "go"), ("second", "go"), ("third", "go")]

    def test_simultaneous_events_resume_in_succeed_order(self):
        sim = Simulator()
        event_a = sim.event("a")
        event_b = sim.event("b")
        order = []

        def waiter(name, event):
            yield event
            order.append(name)

        # Registration interleaves the two events; the wake order must follow
        # the succeed() order (b first), then registration order within each.
        sim.process(waiter("a1", event_a), name="a1")
        sim.process(waiter("b1", event_b), name="b1")
        sim.process(waiter("a2", event_a), name="a2")
        sim.process(waiter("b2", event_b), name="b2")
        # Both succeed at t=1, b strictly before a.
        sim.schedule(1.0, lambda: event_b.succeed())
        sim.schedule(1.0, lambda: event_a.succeed())
        sim.run()
        assert order == ["b1", "b2", "a1", "a2"]

    def test_resumes_run_after_already_scheduled_same_time_callbacks(self):
        sim = Simulator()
        event = sim.event()
        order = []

        def waiter():
            yield event
            order.append("waiter")

        sim.process(waiter(), name="w")
        sim.schedule(1.0, lambda: event.succeed())
        # Scheduled before the succeed fires, also at t=1: runs first.
        sim.schedule(1.0, lambda: order.append("callback"))
        sim.run()
        assert order == ["callback", "waiter"]
        assert sim.now == pytest.approx(1.0)

    def test_value_bound_at_trigger_time_for_late_waiters(self):
        sim = Simulator()
        event = sim.event()
        seen = []

        def late_waiter():
            yield Timeout(2.0)
            value = yield event  # event already triggered: immediate resume
            seen.append(value)

        sim.process(late_waiter(), name="late")
        sim.schedule(1.0, lambda: event.succeed(42))
        sim.run()
        assert seen == [42]
        assert event.triggered

    def test_resume_order_is_reproducible_across_runs(self):
        def run_once():
            sim = Simulator()
            events = [sim.event(str(i)) for i in range(5)]
            order = []

            def waiter(name, event):
                yield event
                order.append(name)

            for i, event in enumerate(events):
                for j in range(3):
                    sim.process(waiter(f"e{i}w{j}", event), name=f"e{i}w{j}")
            # All five events trigger at the same timestamp.
            for event in events:
                sim.schedule(1.0, lambda e=event: e.succeed())
            sim.run()
            return order

        assert run_once() == run_once()
