"""Performance-tracking subsystem (``python -m repro.bench``).

Wraps representative simulation scenarios behind a :class:`BenchCase`
registry, times them with a warmup/repeat/median runner that emits
machine-readable ``BENCH_<timestamp>.json`` reports (wall time, events/sec,
cells/sec, git revision, result digest), and diffs two reports with a
comparator that fails on wall-time regressions or result changes.

* :mod:`repro.bench.cases` -- the case registry,
* :mod:`repro.bench.runner` -- timing + report emission,
* :mod:`repro.bench.compare` -- report-to-report regression gate,
* :mod:`repro.bench.__main__` -- the CLI.
"""

from repro.bench.cases import REGISTRY, BenchCase, CaseOutcome, get_cases, register
from repro.bench.compare import CaseDelta, Comparison, compare_reports
from repro.bench.runner import (
    CaseResult,
    load_report,
    payload_digest,
    run_benchmarks,
    time_case,
    write_report,
)

__all__ = [
    "REGISTRY",
    "BenchCase",
    "CaseOutcome",
    "get_cases",
    "register",
    "CaseDelta",
    "Comparison",
    "compare_reports",
    "CaseResult",
    "load_report",
    "payload_digest",
    "run_benchmarks",
    "time_case",
    "write_report",
]
