#!/usr/bin/env python3
"""Define, register and run a custom scenario -- all as data.

Workflow demonstrated here (the same one CONTRIBUTING.md asks for when a
new workload lands in the repository):

1. author a :class:`ScenarioSpec` as TOML (``examples/scenarios/*.toml``)
   -- or build it in Python; specs round-trip between the two;
2. register it, which validates the structure and makes it visible to the
   CLI, the CI smoke job and the bench bridge;
3. run it through :func:`run_scenario`: the sweep inherits the parallel
   executors (``REPRO_JOBS``), the on-disk cell cache (``REPRO_CACHE_DIR``)
   and deterministic seeding from the experiment harness.

Run with:  python examples/custom_scenario.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.reporting import ascii_table
from repro.scenarios import ScenarioSpec, register, run_scenario, rows_digest, unregister

SPEC_FILE = Path(__file__).parent / "scenarios" / "weekend_surge.toml"


def main() -> None:
    # 1. A spec is pure data: TOML in, TOML out.
    spec = ScenarioSpec.from_toml(SPEC_FILE.read_text())
    assert ScenarioSpec.from_toml(spec.to_toml()).to_dict() == spec.to_dict()
    print(f"loaded {spec.name!r} from {SPEC_FILE.name}: {spec.description}")

    # 2. Registering makes it enumerable (CLI list/run --all, CI smoke, bench).
    register(spec)

    # 3. Smoke tier first (what CI runs), then the full sweep.
    smoke = run_scenario(spec, smoke=True)
    print(f"smoke tier: {len(smoke.rows)} row(s), digest {rows_digest(smoke.rows)[:12]}")

    result = run_scenario(spec)
    print()
    print(ascii_table(result.rows, title=f"{spec.name} ({len(result.rows)} rows)"))
    print(f"full sweep: {len(result.rows)} rows in {result.elapsed_seconds:.2f}s, "
          f"digest {rows_digest(result.rows)[:12]}")

    # Keep the process reusable (e.g. under pytest): registration is global.
    unregister(spec.name)


if __name__ == "__main__":
    main()
