"""Integration tests across modules: workloads -> policies -> metrics -> reports.

These tests exercise the full pipelines a user of the library would run: the
"which policy for which application" comparison, the Figure 2 pipeline, the
DLT policy comparison on a platform built from the CIMENT description, and
the two grid organisations of section 5.2 compared on the same workload.
"""

import pytest

from repro.core.bounds import makespan_lower_bound
from repro.core.criteria import CriteriaReport, makespan, weighted_completion_time
from repro.core.dlt import (
    DLTPlatform,
    multi_round_distribution,
    star_single_round,
    steady_state_throughput,
    work_stealing_distribution,
)
from repro.core.policies import (
    BiCriteriaScheduler,
    ConservativeBackfilling,
    EasyBackfilling,
    ListScheduler,
    MRTScheduler,
    SmartShelfScheduler,
)
from repro.experiments.reporting import ascii_table
from repro.metrics.ratios import schedule_ratios
from repro.platform.ciment import ciment_grid
from repro.simulation.decentralized import DecentralizedGridSimulator
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.communities import community_workload
from repro.workload.models import (
    WorkloadConfig,
    generate_moldable_jobs,
    generate_rigid_jobs,
)
from repro.workload.parametric import generate_parametric_bags


class TestPolicyComparisonPipeline:
    """'Which policy for which application?' -- run several policies on the
    same workloads and check that each wins on the criterion it targets."""

    def test_makespan_policies_vs_completion_time_policies(self):
        machine_count = 32
        jobs = generate_moldable_jobs(
            60, machine_count, config=WorkloadConfig(weight_scheme="work"), random_state=42
        )
        mrt = MRTScheduler().schedule(jobs, machine_count)
        bicriteria = BiCriteriaScheduler().schedule(jobs, machine_count)
        sequential_wspt = ListScheduler("wspt").schedule(jobs, machine_count)
        for schedule in (mrt, bicriteria, sequential_wspt):
            schedule.validate()
        # MRT targets the makespan: it must be the best of the three there.
        assert makespan(mrt) <= makespan(bicriteria) + 1e-9
        assert makespan(mrt) <= makespan(sequential_wspt) + 1e-9
        # The bi-criteria schedule is not much worse than the best of each
        # criterion (that is its guarantee).
        assert makespan(bicriteria) <= 4 * makespan(mrt) + 1e-9
        assert weighted_completion_time(bicriteria) <= 4 * weighted_completion_time(
            sequential_wspt
        ) + 1e-9

    def test_rigid_policies_comparison_table(self):
        machine_count = 16
        jobs = generate_rigid_jobs(50, machine_count, random_state=7)
        jobs = poisson_arrivals(jobs, rate=1.0, random_state=7)
        rows = []
        for policy in (ConservativeBackfilling(), EasyBackfilling()):
            schedule = policy.schedule(jobs, machine_count)
            schedule.validate()
            report = schedule_ratios(schedule, jobs, machine_count=machine_count)
            rows.append({"policy": policy.name, "cmax_ratio": report.makespan_ratio})
        table = ascii_table(rows)
        assert "conservative-backfilling" in table
        assert all(row["cmax_ratio"] < 5.0 for row in rows)

    def test_smart_shelves_for_completion_time_application(self):
        machine_count = 16
        jobs = generate_rigid_jobs(
            60, machine_count, config=WorkloadConfig(weight_scheme="random"), random_state=17
        )
        smart = SmartShelfScheduler().schedule(jobs, machine_count)
        lpt = ListScheduler("lpt").schedule(jobs, machine_count)
        # SMART targets the weighted completion time: it should beat plain LPT.
        assert weighted_completion_time(smart) <= weighted_completion_time(lpt) * 1.2 + 1e-9


class TestDLTPipeline:
    def test_distribution_modes_on_a_ciment_cluster(self):
        grid = ciment_grid()
        platform = DLTPlatform.from_cluster(grid.cluster("athlon-cluster-a"),
                                            data_per_unit=0.1)
        load = 5_000.0
        single = star_single_round(load, platform)
        multi = multi_round_distribution(load, platform, rounds=4)
        dynamic = work_stealing_distribution(load, platform)
        steady = steady_state_throughput(platform)
        # All modes process the whole load.
        assert sum(single.loads) == pytest.approx(load)
        assert sum(multi.per_worker_load.values()) == pytest.approx(load)
        assert dynamic.total_load == pytest.approx(load)
        # The steady-state rate bounds every finite schedule from below.
        asymptotic = load / steady.throughput
        for result in (single.makespan, multi.makespan, dynamic.makespan):
            assert result >= asymptotic * 0.99

    def test_grid_level_divisible_load_uses_the_fast_cluster_most(self):
        grid = ciment_grid()
        platform = DLTPlatform.from_grid(grid, data_per_unit=0.01)
        result = star_single_round(100_000.0, platform)
        loads = dict(zip(result.order, result.loads))
        assert loads["icluster-itanium"] == max(loads.values())


class TestGridOrganisationsPipeline:
    def test_centralized_vs_decentralized_on_the_same_workload(self):
        grid = ciment_grid()
        local = {
            "icluster-itanium": community_workload("computer-science", 12, 208, random_state=1),
            "xeon-cluster": community_workload("numerical-physics", 6, 96, random_state=2),
            "athlon-cluster-a": community_workload("astrophysics", 8, 80, random_state=3),
            "athlon-cluster-b": community_workload("medical-research", 8, 48, random_state=4),
        }
        bags = generate_parametric_bags(3, runs_range=(30, 60), run_time_range=(0.2, 0.6),
                                        random_state=5)

        centralized = CentralizedGridSimulator(grid, local_policy="backfill").run(local, bags)
        assert centralized.total_runs_completed == sum(b.n_runs for b in bags)

        decentralized = DecentralizedGridSimulator(grid, imbalance_threshold=10.0).run(local)
        total_jobs = sum(len(jobs) for jobs in local.values())
        scheduled = sum(len(s) for s in decentralized.schedules.values())
        assert scheduled == total_jobs

        # Both organisations produce full criteria reports per cluster.
        for name in grid.cluster_names:
            assert isinstance(centralized.local_criteria[name], CriteriaReport)
            assert isinstance(decentralized.criteria[name], CriteriaReport)


class TestEndToEndRatios:
    def test_every_policy_stays_within_documented_factor_of_the_bound(self):
        machine_count = 24
        jobs = generate_moldable_jobs(40, machine_count, random_state=99)
        bound = makespan_lower_bound(jobs, machine_count)
        policies = {
            # 2.0 is the pragmatic worst-case factor of this MRT implementation
            # (see repro.core.policies.mrt); the 3/2 + eps behaviour is checked
            # on the benchmark instances in tests/core/policies/test_mrt.py.
            "mrt": (MRTScheduler(), 2.0),
            "bicriteria": (BiCriteriaScheduler(), 8.0),
            "list-lpt": (ListScheduler("lpt"), 4.0),
        }
        for name, (policy, factor) in policies.items():
            schedule = policy.schedule(jobs, machine_count)
            schedule.validate()
            assert makespan(schedule) <= factor * bound + 1e-9, name
