"""Work stealing, speculation, and the 1000-worker in-process fleet.

The ``inproc://`` backend exists so scheduler behaviour at fleet scale is
testable in one process: a thousand workers are a thousand coroutines on
the scheduler's own event loop, no sockets or forks.  The contracts:

* a 1000-worker fleet drains a multi-thousand-cell campaign with stealing
  and speculation enabled, yields rows bit-identical to serial execution
  in submission order, journals them, and evicts **nobody** (heartbeat
  liveness under full load);
* a journal-resumed campaign on a fresh fleet re-executes only the
  incomplete cells;
* stealing is two-phase and therefore duplicate-free: cells move only
  after the victim confirms it never started them (white-box tests pin the
  victim selection, tail-only policy, and confirmation bookkeeping);
* speculation duplicates a straggler onto an idle worker, the first result
  wins, and the duplicate is what rescues the campaign's tail latency.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import DistributedExecutor, Scheduler
from repro.distributed.scheduler import _Campaign, _WorkerConn
from repro.experiments.grid import CellFunction, expand_grid


def fleet_metrics(seed, i):
    # Cheap, deterministic, seed-sensitive: enough to catch any ordering
    # or attribution mistake in the scheduler.
    return {"value": (seed * 31 + i * 7) % 9973, "i": i}


def straggler_metrics(seed, i, marker=""):
    # The first execution of cell i==5 is a straggler; any re-execution of
    # it (the speculative attempt) is fast.  Metrics are identical either
    # way -- which attempt wins must not matter.
    if i == 5 and marker:
        try:
            flag = open(marker, "x")
        except FileExistsError:
            pass
        else:
            flag.close()
            time.sleep(2.5)
    return {"i": i, "value": seed % 1009}


class TestThousandWorkerFleet:
    def test_1000_workers_drain_3000_cells_bit_identically(self, tmp_path):
        journal = tmp_path / "fleet.jsonl"
        cells = expand_grid({"i": list(range(750))}, repetitions=4, base_seed=4242)
        fn = CellFunction(fleet_metrics)
        serial = [fn(cell) for cell in cells]

        with Scheduler(
            "inproc://",
            prefetch=2,
            steal=True,
            speculate=True,
            journal=str(journal),
            stall_timeout=60.0,
        ) as scheduler:
            for _ in range(1000):
                scheduler.spawn_local_worker(inline=True)
            outcomes = list(scheduler.run_campaign(fn, cells, version="fleet-v1"))
            stats = scheduler.stats

        assert len(outcomes) == len(cells)
        # Ordered streaming + per-cell seeds = bit-identical to serial.
        assert [o.cell for o in outcomes] == list(cells)
        assert [o.metrics for o in outcomes] == [o.metrics for o in serial]
        assert all(o.error is None for o in outcomes)
        # The whole fleet joined and did the work...
        assert stats.workers_joined == 1000
        assert stats.results == len(cells)
        # ...and the heartbeat monitor evicted no healthy worker even with
        # a thousand connections hammering the loop (no eviction storm).
        assert stats.evictions == 0
        assert stats.worker_lost_failures == 0

    def test_journal_resume_re_executes_only_incomplete_cells(self, tmp_path):
        journal = tmp_path / "fleet.jsonl"
        cells = expand_grid({"i": list(range(150))}, repetitions=4, base_seed=99)
        fn = CellFunction(fleet_metrics)

        # First campaign "dies" after 450 of 600 cells.
        with Scheduler("inproc://", journal=str(journal), stall_timeout=60.0) as first:
            for _ in range(50):
                first.spawn_local_worker(inline=True)
            done = list(first.run_campaign(fn, cells[:450], version="fleet-v2"))
            assert len(done) == 450

        # The resumed campaign replays 450 from the journal, executes 150.
        with Scheduler("inproc://", journal=str(journal), stall_timeout=60.0) as second:
            for _ in range(50):
                second.spawn_local_worker(inline=True)
            outcomes = list(second.run_campaign(fn, cells, version="fleet-v2"))
            stats = second.stats

        assert [o.metrics for o in outcomes] == [fn(c).metrics for c in cells]
        assert stats.journal_hits == 450
        assert stats.results == 150
        assert stats.evictions == 0


class TestWorkStealingTwoPhase:
    """White-box: victim selection, tail-only policy, confirmation."""

    @staticmethod
    def scheduler_with_campaign(cells, **kwargs):
        defaults = dict(prefetch=4, steal=True, speculate=False)
        defaults.update(kwargs)
        scheduler = Scheduler("inproc://steal-test", **defaults)
        campaign = _Campaign(
            campaign_id="c1", cells=cells, fn_payload="", version="v"
        )
        scheduler._campaign = campaign
        return scheduler, campaign

    def test_steal_asks_for_the_lease_tail_never_the_head(self):
        cells = expand_grid({"i": [0, 1, 2, 3]}, repetitions=1, base_seed=7)
        scheduler, campaign = self.scheduler_with_campaign(cells)
        victim = _WorkerConn(worker_id="victim", comm=None, last_seen=0.0)
        thief = _WorkerConn(worker_id="thief", comm=None, last_seen=0.0)
        for position in range(4):
            scheduler._assign(campaign, victim, position, speculative=False)

        target, message = scheduler._request_steal(campaign, thief)
        assert target is victim
        assert message["op"] == "revoke"
        # Half the stealable tail ([1, 2, 3]), taken from the end; the
        # (probably executing) head 0 is untouchable.
        assert message["indices"] == [2, 3]
        assert victim.assignments[2].revoking and victim.assignments[3].revoking
        # The cells are still the victim's until it confirms.
        assert list(victim.lease) == [0, 1, 2, 3]
        assert scheduler.stats.steals == 0

    def test_confirmed_cells_are_requeued_and_counted(self):
        cells = expand_grid({"i": [0, 1, 2, 3]}, repetitions=1, base_seed=7)
        scheduler, campaign = self.scheduler_with_campaign(cells)
        victim = _WorkerConn(worker_id="victim", comm=None, last_seen=0.0)
        thief = _WorkerConn(worker_id="thief", comm=None, last_seen=0.0)
        for position in range(4):
            scheduler._assign(campaign, victim, position, speculative=False)
        _, message = scheduler._request_steal(campaign, thief)

        scheduler._handle_revoked(
            victim,
            {"op": "revoked", "campaign": "c1", "indices": message["indices"], "kept": []},
        )
        assert list(campaign.pending) == [2, 3]  # oldest first, at the front
        assert list(victim.lease) == [0, 1]
        assert 2 not in campaign.running and 3 not in campaign.running
        assert scheduler.stats.steals == 2

    def test_cells_the_victim_already_started_stay_its_own(self):
        cells = expand_grid({"i": [0, 1, 2, 3]}, repetitions=1, base_seed=7)
        scheduler, campaign = self.scheduler_with_campaign(cells)
        victim = _WorkerConn(worker_id="victim", comm=None, last_seen=0.0)
        thief = _WorkerConn(worker_id="thief", comm=None, last_seen=0.0)
        for position in range(4):
            scheduler._assign(campaign, victim, position, speculative=False)
        scheduler._request_steal(campaign, thief)

        # The victim raced ahead: by the time the revoke arrived it had
        # started 2, so it only gives 3 back.
        scheduler._handle_revoked(
            victim, {"op": "revoked", "campaign": "c1", "indices": [3], "kept": [2]}
        )
        assert list(campaign.pending) == [3]
        assert 2 in victim.assignments and not victim.assignments[2].revoking
        assert scheduler.stats.steals == 1

    def test_in_flight_revokes_are_not_stolen_twice(self):
        cells = expand_grid({"i": [0, 1, 2, 3, 4, 5]}, repetitions=1, base_seed=7)
        scheduler, campaign = self.scheduler_with_campaign(cells)
        victim = _WorkerConn(worker_id="victim", comm=None, last_seen=0.0)
        for position in range(6):
            scheduler._assign(campaign, victim, position, speculative=False)
        thief_a = _WorkerConn(worker_id="a", comm=None, last_seen=0.0)
        thief_b = _WorkerConn(worker_id="b", comm=None, last_seen=0.0)

        _, first = scheduler._request_steal(campaign, thief_a)
        _, second = scheduler._request_steal(campaign, thief_b)
        assert not set(first["indices"]) & set(second["indices"])

    def test_nothing_stealable_when_leases_hold_a_single_cell(self):
        cells = expand_grid({"i": [0, 1]}, repetitions=1, base_seed=7)
        scheduler, campaign = self.scheduler_with_campaign(cells)
        busy_a = _WorkerConn(worker_id="a", comm=None, last_seen=0.0)
        busy_b = _WorkerConn(worker_id="b", comm=None, last_seen=0.0)
        scheduler._assign(campaign, busy_a, 0, speculative=False)
        scheduler._assign(campaign, busy_b, 1, speculative=False)
        thief = _WorkerConn(worker_id="t", comm=None, last_seen=0.0)
        assert scheduler._request_steal(campaign, thief) is None


class TestSpeculation:
    def test_straggler_selection_respects_delay_and_attempt_cap(self):
        cells = expand_grid({"i": [0, 1]}, repetitions=1, base_seed=7)
        scheduler, campaign = TestWorkStealingTwoPhase.scheduler_with_campaign(
            cells, speculate=True, speculation_delay=0.5, prefetch=1
        )
        busy = _WorkerConn(worker_id="busy", comm=None, last_seen=0.0)
        idle = _WorkerConn(worker_id="idle", comm=None, last_seen=0.0)
        scheduler._assign(campaign, busy, 0, speculative=False)

        # Too young to be a straggler.
        assert scheduler._speculative_candidate(campaign, idle) is None
        campaign.running[0][0].assigned_at -= 1.0
        assert scheduler._speculative_candidate(campaign, idle) == 0
        # Never a second attempt on the worker already running it.
        assert scheduler._speculative_candidate(campaign, busy) is None
        # max_speculative=1 caps the cell at two live attempts total.
        scheduler._assign(campaign, idle, 0, speculative=True)
        third = _WorkerConn(worker_id="third", comm=None, last_seen=0.0)
        assert scheduler._speculative_candidate(campaign, third) is None

    def test_speculative_duplicate_rescues_a_straggler_end_to_end(self, tmp_path):
        marker = tmp_path / "straggler-started"
        import functools

        fn = functools.partial(straggler_metrics, marker=str(marker))
        cells = expand_grid({"i": list(range(8))}, repetitions=1, base_seed=11)
        executor = DistributedExecutor(
            "inproc://",
            workers=2,
            speculation_delay=0.3,
            stall_timeout=30.0,
        )
        started = time.monotonic()
        stream = executor.map(CellFunction(fn), cells)
        outcomes = [next(stream) for _ in range(len(cells))]
        streamed_in = time.monotonic() - started
        list(stream)  # run the generator's teardown

        assert [o.metrics["i"] for o in outcomes] == list(range(8))
        assert all(o.error is None for o in outcomes)
        # The straggler's first attempt sleeps 2.5s; the full ordered stream
        # arriving well before that proves the speculative duplicate won.
        assert streamed_in < 2.0, f"speculation did not rescue the straggler ({streamed_in:.1f}s)"
        assert executor.last_stats.speculations >= 1
        assert os.path.exists(marker)
