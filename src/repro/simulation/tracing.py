"""Execution traces of the simulators.

A :class:`Trace` is an append-only list of :class:`TraceEvent` records
(submission, start, completion, kill, resubmission, ...).  The grid metrics
(best-effort kill counts, per-community usage, ...) are computed from traces,
and the traces can be exported to CSV-style records or converted into a
:class:`repro.core.allocation.Schedule` for Gantt rendering.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

EVENT_KINDS = (
    "submit",
    "start",
    "complete",
    "kill",
    "resubmit",
    "reserve",
    "release",
    "migrate",
    "reject",
    "policy-switch",
)

#: Internal set for O(1) kind validation on the per-event hot path.
_EVENT_KIND_SET = frozenset(EVENT_KINDS)

#: Process-wide trace tap picked up by every Trace constructed afterwards.
_TRACE_TAP: Optional[Callable[["TraceEvent"], None]] = None


def set_trace_tap(tap: Optional[Callable[["TraceEvent"], None]]) -> Optional[Callable]:
    """Install a process-wide tap receiving every event of traces created
    from now on (``None`` uninstalls).  Returns the previous tap.

    The tap is observation only: it must not mutate the event and it runs
    on the simulation hot path, so keep it cheap (the telemetry bus's
    :func:`repro.telemetry.trace_tap` qualifies).  Live :class:`Trace`
    instances keep the tap they were built with; per-instance ``tap=``
    overrides the global.
    """

    global _TRACE_TAP
    previous = _TRACE_TAP
    _TRACE_TAP = tap
    return previous


def get_trace_tap() -> Optional[Callable[["TraceEvent"], None]]:
    return _TRACE_TAP


class TraceEvent:
    """One timestamped event of a simulation.

    A plain ``__slots__`` record: traces grow by thousands of events per
    simulation, so construction cost matters.  Treat instances as immutable.
    """

    __slots__ = ("time", "kind", "job", "cluster", "processors", "info")

    def __init__(
        self,
        time: float,
        kind: str,
        job: str,
        cluster: Optional[str] = None,
        processors: Tuple[int, ...] = (),
        info: str = "",
    ) -> None:
        if kind not in _EVENT_KIND_SET:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if time < 0:
            raise ValueError("trace event with negative time")
        self.time = time
        self.kind = kind
        self.job = job
        self.cluster = cluster
        self.processors = processors
        self.info = info

    def _key(self) -> Tuple:
        return (self.time, self.kind, self.job, self.cluster, self.processors, self.info)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (
            f"TraceEvent(time={self.time!r}, kind={self.kind!r}, job={self.job!r}, "
            f"cluster={self.cluster!r}, processors={self.processors!r}, info={self.info!r})"
        )


class Trace:
    """Append-only list of simulation events with query helpers."""

    __slots__ = ("_events", "tap")

    def __init__(self, tap: Optional[Callable[[TraceEvent], None]] = None) -> None:
        self._events: List[TraceEvent] = []
        self.tap = tap if tap is not None else _TRACE_TAP

    def record(
        self,
        time: float,
        kind: str,
        job: str,
        *,
        cluster: Optional[str] = None,
        processors: Sequence[int] = (),
        info: str = "",
    ) -> TraceEvent:
        event = TraceEvent(
            time=time,
            kind=kind,
            job=job,
            cluster=cluster,
            processors=tuple(processors),
            info=info,
        )
        self._events.append(event)
        if self.tap is not None:
            self.tap(event)
        return event

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self, kind: Optional[str] = None, job: Optional[str] = None) -> List[TraceEvent]:
        out = self._events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if job is not None:
            out = [e for e in out if e.job == job]
        return list(out)

    def count(self, kind: str, job: Optional[str] = None) -> int:
        return len(self.events(kind, job))

    def completion_time(self, job: str) -> Optional[float]:
        """Time of the *last* completion event of ``job`` (None if never completed)."""

        times = [e.time for e in self._events if e.kind == "complete" and e.job == job]
        return max(times) if times else None

    def first_start(self, job: str) -> Optional[float]:
        times = [e.time for e in self._events if e.kind == "start" and e.job == job]
        return min(times) if times else None

    def kills(self, job: Optional[str] = None) -> int:
        """Number of best-effort kill events (section 5.2, centralized organisation)."""

        return self.count("kill", job)

    def busy_intervals(self, cluster: Optional[str] = None) -> List[Tuple[str, float, float, int]]:
        """(job, start, end, nbproc) intervals reconstructed from start/complete/kill events."""

        open_intervals: Dict[Tuple[str, Optional[str]], Tuple[float, int]] = {}
        intervals: List[Tuple[str, float, float, int]] = []
        for event in self._events:
            if cluster is not None and event.cluster != cluster:
                continue
            key = (event.job, event.cluster)
            if event.kind == "start":
                open_intervals[key] = (event.time, len(event.processors))
            elif event.kind in ("complete", "kill") and key in open_intervals:
                start, nbproc = open_intervals.pop(key)
                intervals.append((event.job, start, event.time, nbproc))
        return intervals

    def utilization(self, machine_count: int, horizon: float, cluster: Optional[str] = None) -> float:
        """Fraction of the processor-time area busy up to ``horizon``."""

        if machine_count < 1:
            raise ValueError("machine_count must be >= 1")
        if horizon <= 0:
            return 0.0
        busy = 0.0
        for _job, start, end, nbproc in self.busy_intervals(cluster):
            busy += max(0.0, min(end, horizon) - min(start, horizon)) * nbproc
        return busy / (machine_count * horizon)

    # -- export ----------------------------------------------------------------
    #: Fixed column order of the flat export row (and the CSV header).
    EXPORT_COLUMNS = ("time", "kind", "job", "cluster", "processors", "info")

    def to_records(self) -> List[Dict[str, object]]:
        return [
            {
                "time": e.time,
                "kind": e.kind,
                "job": e.job,
                "cluster": e.cluster,
                "processors": list(e.processors),
                "info": e.info,
            }
            for e in self._events
        ]

    def flat_records(self) -> List[Dict[str, object]]:
        """JSON/SQL-safe flat rows: scalar columns only, one row per event.

        This is the shape the unified results API persists -- processors are
        space-joined, a missing cluster is the empty string -- so trace rows
        can land in any :func:`repro.store.api.write_rows` target or in a
        :class:`~repro.store.columnar.CampaignStore` partition next to
        result rows.
        """

        return [
            {
                "time": e.time,
                "kind": e.kind,
                "job": e.job,
                "cluster": e.cluster or "",
                "processors": " ".join(map(str, e.processors)),
                "info": e.info,
            }
            for e in self._events
        ]

    def to_csv(self) -> str:
        from repro.experiments.reporting import to_csv

        rows = [dict(record, time=f"{record['time']:.6f}") for record in self.flat_records()]
        header = ",".join(self.EXPORT_COLUMNS) + "\n"
        if not rows:
            return header
        return to_csv(rows, columns=self.EXPORT_COLUMNS)

    def write(self, path: Union[str, Path], *, fmt: Optional[str] = None) -> Path:
        """Persist the trace through :func:`repro.store.api.write_rows`.

        Same entry point as every result-row export: CSV, JSONL or Parquet
        by suffix (or forced with ``fmt``), fixed trace columns.
        """

        from repro.store.api import write_rows

        rows = self.flat_records()
        if fmt == "csv" or (fmt is None and str(path).lower().endswith(".csv")):
            rows = [dict(record, time=f"{record['time']:.6f}") for record in rows]
        return write_rows(rows, path, fmt=fmt, columns=self.EXPORT_COLUMNS)
