"""Event queue primitives for the discrete-event simulation kernel.

Events are ordered by ``(time, priority, sequence number)``: ties on time are
broken first by an explicit integer priority (smaller runs first) and then by
insertion order, which makes every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    priority:
        Tie-break priority: events scheduled at the same time fire in
        increasing priority order (default 0).
    seq:
        Monotonic insertion counter; never set manually.
    callback:
        Callable invoked with no argument when the event fires.
    label:
        Free-form description, kept for traces and debugging.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped.
    """

    time: float
    priority: int = 0
    seq: int = field(default=0)
    callback: Optional[Callable[[], None]] = field(default=None, compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be silently dropped."""

        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        if time < 0:
            raise ValueError("cannot schedule an event at a negative time")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next non-cancelled event.

        Raises :class:`IndexError` when the queue is empty.
        """

        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None`` when empty."""

        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return max(self._live, 0)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0
