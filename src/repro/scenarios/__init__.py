"""Declarative scenario layer: specs, registry, composer, CLI.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
this package turns scenario diversity into *data*.  A scenario is a
:class:`~repro.scenarios.spec.ScenarioSpec` -- workload model + arrival
process + platform + policy + metrics + seed + sweep axes -- registered
under a unique name and materialized by the composer into the existing
parallel experiment harness, so every scenario is sweepable, cacheable
(``REPRO_CACHE_DIR``), parallelizable (``REPRO_JOBS``) and benchmarkable
(:mod:`repro.scenarios.bench`) with zero bespoke code.

Quick tour::

    from repro.scenarios import get, names, run_scenario

    names()                                   # every registered scenario
    spec = get("cluster.policy-panel")        # a spec is pure data
    result = run_scenario(spec, smoke=True)   # an ExperimentResult
    print(spec.to_toml())                     # round-trips through TOML

or from the command line::

    python -m repro.scenarios list
    python -m repro.scenarios run --all --smoke
"""

from repro.scenarios.spec import ComponentSpec, ScenarioSpec, SpecError
from repro.scenarios.registry import (
    ScenarioCollisionError,
    all_specs,
    get,
    names,
    register,
    resolve,
    scenario,
    unregister,
)
from repro.scenarios.composer import (
    run_scenario,
    run_scenario_cell,
    rows_digest,
    summarize,
)

# Importing the builtin module registers the shipped scenario families.
from repro.scenarios import builtin  # noqa: F401  (imported for side effects)

__all__ = [
    "ComponentSpec",
    "ScenarioSpec",
    "SpecError",
    "ScenarioCollisionError",
    "scenario",
    "register",
    "unregister",
    "get",
    "names",
    "all_specs",
    "resolve",
    "run_scenario",
    "run_scenario_cell",
    "rows_digest",
    "summarize",
]
