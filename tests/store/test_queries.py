"""Named queries: py twins against StreamingAggregator, SQL parity via DuckDB."""

from __future__ import annotations

import pytest

from repro.metrics.aggregate import StreamingAggregator
from repro.store.columnar import CampaignStore
from repro.store.queries import (
    QUERIES,
    QueryError,
    get_query,
    quote_ident,
    run_query,
    sql_literal,
)


def has_duckdb():
    try:
        import duckdb  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.fixture()
def seeded_store(tmp_path):
    """Two campaigns of the fig2 smoke scenario landed in one store."""

    from repro.scenarios.composer import run_scenario
    from repro.scenarios.registry import get

    spec = get("fig2.bicriteria")
    root = tmp_path / "store"
    for campaign in ("serial", "rerun"):
        sink = CampaignStore(root, campaign=campaign, fmt="jsonl")
        run_scenario(spec, smoke=True, sink=sink)
    return CampaignStore(root)


@pytest.fixture()
def telemetry_store(tmp_path):
    """Synthetic span events recorded into two campaigns."""

    from repro.telemetry import TelemetryBus, TelemetryRecorder

    root = tmp_path / "flight"
    for campaign, scale in (("serial", 1.0), ("fleet", 2.0)):
        bus = TelemetryBus()
        store = CampaignStore(root, campaign=campaign, fmt="jsonl")
        with TelemetryRecorder(store, bus=bus, campaign=campaign):
            for worker, factor in (("w1", 1.0), ("w2", 3.0)):
                topic = f"worker.{worker}.spans"
                for index in range(4):
                    bus.emit(topic, "span", name="cell.execute",
                             seconds=0.5 * scale * factor, worker=worker)
                bus.emit(topic, "span", name="worker.idle",
                         seconds=1.0 * scale, worker=worker)
                bus.emit(topic, "span", name="cell.serialize",
                         seconds=0.25 * scale, worker=worker)
            bus.emit("spans", "span", name="harness.wait", seconds=4.0 * scale)
            bus.emit("spans", "metrics", counters={"cache-hit": 2})
            bus.emit("scheduler", "assign", worker="w1")  # non-span noise
    return CampaignStore(root)


class TestGuards:
    def test_quote_ident_rejects_injection(self):
        assert quote_ident("cmax_ratio") == '"cmax_ratio"'
        assert quote_ident("utilization.grappe1") == '"utilization.grappe1"'
        for bad in ('x"; DROP TABLE rows; --', "a b", "", '"', "1x"):
            with pytest.raises(QueryError):
                quote_ident(bad)

    def test_sql_literal_escapes(self):
        assert sql_literal("o'brien") == "'o''brien'"
        assert sql_literal(3) == "3"
        assert sql_literal(True) == "TRUE"

    def test_unknown_query_and_params(self, seeded_store):
        with pytest.raises(QueryError, match="unknown query"):
            get_query("nope")
        with pytest.raises(QueryError, match="needs parameter"):
            get_query("metric-summary").sql()
        with pytest.raises(QueryError, match="does not take"):
            get_query("rows").sql(bogus=1)
        with pytest.raises(QueryError, match="engine"):
            run_query(seeded_store, "rows", engine="spark")

    def test_every_query_builds_sql(self):
        params = {"metric": "cmax_ratio", "campaign_a": "a", "campaign_b": "b"}
        for name, query in QUERIES.items():
            needed = {k: params[k] for k in query.required}
            sql = query.sql(**needed)
            assert "FROM rows" in sql, name


class TestPyEngine:
    def test_rows_query_is_the_bit_identity_channel(self, seeded_store):
        rows = run_query(seeded_store, "rows", {"campaign": "serial"}, engine="py")
        assert rows == seeded_store.rows(campaign="serial")
        assert len(rows) == 2

    def test_metric_summary_matches_streaming_aggregator(self, seeded_store):
        results = run_query(
            seeded_store, "metric-summary",
            {"metric": "cmax_ratio", "campaign": "serial"}, engine="py",
        )
        aggregator = StreamingAggregator()
        for row in seeded_store.rows(campaign="serial"):
            aggregator.update(row)
        expected = aggregator.summaries()["cmax_ratio"].as_dict()
        (result,) = results
        for field, value in expected.items():
            assert result[field] == value, field

    def test_compare_joins_identical_campaigns_as_equal(self, seeded_store):
        results = run_query(
            seeded_store, "compare",
            {"metric": "cmax_ratio", "campaign_a": "serial", "campaign_b": "rerun"},
            engine="py",
        )
        assert len(results) == 2
        assert all(r["equal"] is True for r in results)
        assert all(r["diff"] == 0.0 for r in results)
        assert all(r["a_value"] == r["b_value"] for r in results)

    def test_cell_timing_and_cache_accounting(self, seeded_store):
        (timing,) = run_query(
            seeded_store, "cell-timing", {"campaign": "serial"}, engine="py"
        )
        assert timing["cells"] == 2
        assert timing["total_seconds"] >= timing["max_seconds"] >= 0.0
        (accounting,) = run_query(
            seeded_store, "cache-accounting", {"campaign": "serial"}, engine="py"
        )
        assert accounting["rows"] == 2
        assert accounting["computed"] == 2
        assert accounting["distinct_keys"] == 2

    def test_policy_compare_uses_the_axis_column(self, tmp_path):
        store = CampaignStore(tmp_path / "s", campaign="c", fmt="jsonl")
        for seed, policy, value in ((1, "lpt", 2.0), (1, "wspt", 3.0), (2, "lpt", 4.0)):
            store.append_row(
                {"experiment": "e", "seed": seed, "policy_name": policy, "m": value},
                scenario="sc", seed=seed,
            )
        store.flush()
        results = run_query(store, "policy-compare", {"metric": "m"}, engine="py")
        assert [(r["seed"], r["axis_value"], r["mean"]) for r in results] == [
            (1, "lpt", 2.0), (1, "wspt", 3.0), (2, "lpt", 4.0),
        ]


class TestTelemetryQueries:
    def test_span_summary_groups_by_name(self, telemetry_store):
        rows = run_query(
            telemetry_store, "span-summary", {"campaign": "serial"}, engine="py"
        )
        by_name = {row["name"]: row for row in rows}
        execute = by_name["cell.execute"]
        assert execute["spans"] == 8  # 4 per worker, both workers
        assert execute["total_seconds"] == pytest.approx(0.5 * 4 + 1.5 * 4)
        assert execute["max_seconds"] == pytest.approx(1.5)
        assert by_name["harness.wait"]["spans"] == 1
        # metrics and scheduler noise events are not spans
        assert "assign" not in by_name and None not in by_name

    def test_worker_occupancy_ratio(self, telemetry_store):
        rows = run_query(
            telemetry_store, "worker-occupancy", {"campaign": "serial"}, engine="py"
        )
        by_worker = {row["worker"]: row for row in rows}
        w1 = by_worker["w1"]
        assert w1["busy_seconds"] == pytest.approx(2.0)
        assert w1["idle_seconds"] == pytest.approx(1.0)
        assert w1["overhead_seconds"] == pytest.approx(0.25)
        assert w1["cells"] == 4
        assert w1["occupancy"] == pytest.approx(2.0 / 3.25)
        assert set(by_worker) == {"w1", "w2"}

    def test_phase_attribution_shares_sum_to_one(self, telemetry_store):
        rows = run_query(
            telemetry_store, "phase-attribution", {"campaign": "serial"}, engine="py"
        )
        assert rows, "phase-attribution over a recorded run must be non-empty"
        shares = [row["share"] for row in rows]
        assert sum(shares) == pytest.approx(1.0)
        phases = {row["phase"] for row in rows}
        assert {"cell.execute", "worker.idle", "harness.wait"} <= phases

    def test_telemetry_queries_span_campaigns(self, telemetry_store):
        rows = run_query(telemetry_store, "phase-attribution", engine="py")
        campaigns = {row["campaign"] for row in rows}
        assert campaigns == {"serial", "fleet"}

    def test_result_only_stores_return_empty(self, seeded_store):
        for name in ("span-summary", "worker-occupancy", "phase-attribution"):
            assert run_query(seeded_store, name, engine="py") == []

    @pytest.mark.skipif(not has_duckdb(), reason="duckdb not installed")
    @pytest.mark.parametrize(
        "name", ["span-summary", "worker-occupancy", "phase-attribution"]
    )
    def test_sql_parity_over_recorded_spans(self, telemetry_store, name):
        sql_rows = run_query(telemetry_store, name, engine="sql")
        py_rows = run_query(telemetry_store, name, engine="py")
        assert py_rows, name
        assert len(sql_rows) == len(py_rows)
        for sql_row, py_row in zip(sql_rows, py_rows):
            for field, expected in py_row.items():
                got = sql_row[field]
                if isinstance(expected, float):
                    assert got == pytest.approx(expected, rel=1e-9), (name, field)
                else:
                    assert got == expected, (name, field)


@pytest.mark.skipif(not has_duckdb(), reason="duckdb not installed")
class TestSqlParity:
    """Every named query returns the same result set on both engines."""

    PARAMS = {
        "rows": {},
        "metric-summary": {"metric": "cmax_ratio"},
        "policy-compare": {"metric": "cmax_ratio", "axis": "family"},
        "compare": {"metric": "cmax_ratio", "campaign_a": "serial", "campaign_b": "rerun"},
        "cell-timing": {},
        "cache-accounting": {},
        # Telemetry queries are empty over a result-only store; the
        # substantive parity check runs in TestTelemetryQueries against
        # recorded spans.  Listing them here pins "empty == empty".
        "span-summary": {},
        "worker-occupancy": {},
        "phase-attribution": {},
    }

    @pytest.mark.parametrize("name", sorted(PARAMS))
    def test_sql_matches_py(self, seeded_store, name):
        params = self.PARAMS[name]
        sql_rows = run_query(seeded_store, name, params, engine="sql")
        py_rows = run_query(seeded_store, name, params, engine="py")
        assert len(sql_rows) == len(py_rows)
        for sql_row, py_row in zip(sql_rows, py_rows):
            for field, expected in py_row.items():
                got = sql_row[field]
                if isinstance(expected, float) and expected != int(expected):
                    assert got == pytest.approx(expected, rel=1e-12), (name, field)
                else:
                    assert got == expected or got == pytest.approx(expected), (name, field)
