"""Steady-state (asymptotic) throughput of divisible / multi-parametric loads.

Section 3 lists "maximum throughput (or steady state)" among the criteria:
"the maximum number of elementary tasks to execute in a given amount of time
or for asymptotically long times.  It is well-suited for some types of jobs
like parametric computations", and section 5.2 adds that "for this kind of
jobs, the theory of asymptotic behavior shows that optimal solutions can be
computed in polynomial time".

For a one-port master and independent workers the optimal steady-state
throughput has the classical *bandwidth-centric* closed form: give priority
to the workers with the fastest links, each worker ``i`` can absorb at most
``1 / w_i`` load units per time unit, and the master port can ship at most
``1`` message-second per second, i.e. ``sum_i rho_i * z_i <= 1``.  The greedy
solution (serve workers by increasing ``z_i`` until the port saturates) is
optimal.  When every ``z_i`` is zero the port never saturates and the
throughput is simply the sum of the compute rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.dlt.platform import DLTPlatform, DLTWorker


@dataclass(frozen=True)
class SteadyStateSolution:
    """Optimal steady-state rates per worker."""

    throughput: float
    rates: Dict[str, float]
    port_usage: float
    saturated: bool

    def rate_of(self, worker_name: str) -> float:
        return self.rates.get(worker_name, 0.0)


def steady_state_throughput(platform: DLTPlatform) -> SteadyStateSolution:
    """Optimal steady-state throughput (load units per time unit).

    Greedy bandwidth-centric allocation: workers are served by increasing
    communication time; each receives the rate it can compute
    (``1 / compute_time``) as long as the master port (``sum rho_i z_i <= 1``)
    allows it; the first worker that would overflow the port gets the
    remaining port capacity and every later worker gets nothing.
    """

    workers = sorted(platform.workers, key=lambda w: (w.comm_time, w.compute_time, w.name))
    rates: Dict[str, float] = {w.name: 0.0 for w in platform.workers}
    port = 0.0
    throughput = 0.0
    saturated = False
    for worker in workers:
        desired = worker.compute_rate
        if worker.comm_time <= 0:
            rates[worker.name] = desired
            throughput += desired
            continue
        room = 1.0 - port
        if room <= 1e-15:
            saturated = True
            break
        feasible = min(desired, room / worker.comm_time)
        rates[worker.name] = feasible
        port += feasible * worker.comm_time
        throughput += feasible
        if feasible < desired - 1e-15:
            saturated = True
            break
    return SteadyStateSolution(
        throughput=throughput,
        rates=rates,
        port_usage=port,
        saturated=saturated,
    )


def steady_state_lower_bound_makespan(total_load: float, platform: DLTPlatform) -> float:
    """Asymptotic lower bound on the makespan: load divided by the optimal throughput."""

    if total_load < 0:
        raise ValueError("total_load must be >= 0")
    solution = steady_state_throughput(platform)
    if solution.throughput <= 0:
        raise ValueError("platform has zero throughput")
    return total_load / solution.throughput


def parametric_completion_rate(
    run_time: float,
    platform: DLTPlatform,
    *,
    data_per_run: float = 0.0,
) -> float:
    """Steady-state rate (runs per time unit) for a multi-parametric bag.

    Each run takes ``run_time`` on a reference processor and requires
    ``data_per_run`` units of input data.  This is the quantity the grid
    benchmarks compare against the measured best-effort throughput.
    """

    if run_time <= 0:
        raise ValueError("run_time must be > 0")
    scaled = DLTPlatform(
        [
            DLTWorker(
                name=w.name,
                compute_time=w.compute_time * run_time,
                comm_time=w.comm_time * data_per_run,
                latency=w.latency,
            )
            for w in platform.workers
        ]
    )
    return steady_state_throughput(scaled).throughput
