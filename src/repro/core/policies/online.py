"""The on-line scheduling-policy protocol and the basic queue policies.

:class:`SchedulingPolicy` is the single policy interface of the unified
scheduling runtime (:mod:`repro.runtime`): at every scheduling point
(arrival or completion) the runtime asks the policy which waiting jobs to
start on the currently free processors.  Everything else -- single cluster,
centralized best-effort grid, decentralized exchange -- is runtime
configuration, so any policy implementing this protocol runs on every
platform shape.

The three basic queue policies (FCFS, aggressive backfilling,
smallest-first) live here; the schedule-constructing policies of
:mod:`repro.core.policies` are adapted to the same protocol by
:class:`repro.core.policies.adapter.PlannedPolicy`, and every policy is
constructible by name through :mod:`repro.core.policies.registry`.

Historically this protocol was ``repro.simulation.cluster_sim.QueuePolicy``;
that import path is kept as a deprecated shim.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.job import Job, MoldableJob, RigidJob
from repro.core.policies.base import MoldableAllocator


class SchedulingPolicy:
    """Decides which waiting jobs to start when processors are free.

    ``select(queue, free, now, machine_count)`` returns a list of
    ``(job, nbproc)`` pairs to start immediately; the returned jobs must be
    pairwise distinct members of ``queue`` and their total processor demand
    must not exceed ``free``.  Deterministic implementations must order
    equal-priority jobs by ``(criterion, job.name)`` -- never by container
    iteration order alone -- so simulations are reproducible regardless of
    how the queue was populated.
    """

    name = "abstract"

    def __init__(self, allocator: Optional[MoldableAllocator] = None) -> None:
        self.allocator = allocator or MoldableAllocator("bounded_efficiency")

    def reset(self) -> None:
        """Drop any cross-run state; the runtime calls this at run start.

        Queue policies are stateless, so the default is a no-op; stateful
        adapters (e.g. :class:`~repro.core.policies.adapter.PlannedPolicy`)
        override it so a policy instance reused across simulations never
        applies a stale plan to a fresh workload.
        """

    def allocation(self, job: Job, machine_count: int, free: int) -> int:
        """Processor count for ``job``, never exceeding the currently free count."""

        nbproc = self.allocator.allocate(job, machine_count)
        if isinstance(job, MoldableJob):
            nbproc = max(job.min_procs, min(nbproc, free)) if free >= job.min_procs else nbproc
        return nbproc

    def select(
        self, queue: Sequence[Job], free: int, now: float, machine_count: int
    ) -> List[Tuple[Job, int]]:
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Strict first-come-first-served: the head of the queue blocks everyone."""

    name = "fifo"

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        decisions = []
        remaining = free
        for job in queue:
            nbproc = self.allocation(job, machine_count, remaining)
            if nbproc <= remaining:
                decisions.append((job, nbproc))
                remaining -= nbproc
            else:
                break  # FCFS: do not bypass the blocked head of queue
        return decisions


class BackfillPolicy(SchedulingPolicy):
    """FCFS with aggressive backfilling: later jobs may use leftover processors.

    Unlike the clairvoyant EASY implementation of
    :mod:`repro.core.policies.backfilling` this on-line policy does not
    compute a shadow time; it simply lets any queued job that fits in the
    currently free processors start.  It therefore favours utilisation at the
    possible expense of large jobs -- the simulation benchmarks quantify this
    trade-off.
    """

    name = "backfill"

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        decisions = []
        remaining = free
        for job in queue:
            nbproc = self.allocation(job, machine_count, remaining)
            if nbproc <= remaining:
                decisions.append((job, nbproc))
                remaining -= nbproc
            if remaining == 0:
                break
        return decisions


class SmallestFirstPolicy(SchedulingPolicy):
    """Start the smallest waiting jobs first (good for the mean stretch)."""

    name = "smallest-first"

    def select(self, queue: Sequence[Job], free: int, now: float, machine_count: int):
        def key(job: Job) -> Tuple[float, str]:
            if isinstance(job, MoldableJob):
                return (job.min_work(), job.name)
            if isinstance(job, RigidJob):
                return (job.duration * job.nbproc, job.name)
            return (math.inf, job.name)

        decisions = []
        remaining = free
        for job in sorted(queue, key=key):
            nbproc = self.allocation(job, machine_count, remaining)
            if nbproc <= remaining:
                decisions.append((job, nbproc))
                remaining -= nbproc
        return decisions
