"""The campaign worker: connect, register, heartbeat, pull cells, stream results.

A worker is a small state machine around one TCP connection to the
scheduler (:mod:`repro.distributed.scheduler`):

* connect and ``hello``, read the ``welcome`` (which advertises the
  heartbeat interval);
* loop: ``request`` a cell; on ``task`` execute the shipped cell function
  and send the ``result`` back; on ``idle`` sleep briefly and re-request;
* while a cell executes, a daemon thread sends ``heartbeat`` frames on the
  same socket (writes are serialised behind a lock; idle re-requests double
  as heartbeats, so the thread only matters during long cells).

The cell function travels pickled inside the first ``task`` of each
campaign and is cached for the campaign's duration, so it must either be
importable from the worker process (module-level functions,
``functools.partial`` of them -- true for every registered scenario and
bench case) or the worker must have been forked from the submitting process
(how :class:`~repro.distributed.executor.DistributedExecutor` spawns its
local mini-cluster, which keeps even test-local functions picklable by
reference).

When the scheduler goes away the worker loops back to reconnecting, so one
long-lived worker serves any number of consecutive campaigns; ``max_idle``
bounds how long it lingers without useful work (connection attempts
included) before exiting -- the knob CI uses to make workers self-reap.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from typing import Callable, Optional, Tuple

from repro.distributed import protocol
from repro.experiments.grid import Cell, CellOutcome

#: How long a worker waits between connection attempts while the scheduler
#: is down (e.g. between two campaigns bound to the same address).
RECONNECT_DELAY = 0.2

#: How long a worker waits for the scheduler's reply to a frame it sent
#: before declaring the connection (or its host) dead.  Replies are
#: immediate in a healthy system; only the worker's own cell execution is
#: slow, and no recv happens during it.
REPLY_TIMEOUT = 30.0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class Worker:
    """One worker process' connect-and-serve loop."""

    def __init__(
        self,
        address: str,
        *,
        worker_id: Optional[str] = None,
        max_idle: Optional[float] = None,
        reconnect_delay: float = RECONNECT_DELAY,
        once: bool = False,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.host, self.port = protocol.parse_address(address)
        self.address = protocol.format_address(self.host, self.port)
        self.worker_id = worker_id or default_worker_id()
        self.max_idle = max_idle
        self.reconnect_delay = reconnect_delay
        self.once = once
        self.log = log or (lambda message: None)
        self.cells_executed = 0
        self._last_useful = time.monotonic()

    # -- outer loop ---------------------------------------------------------

    def run(self) -> int:
        """Serve campaigns until idle for too long; returns cells executed."""

        while True:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=5.0)
            except OSError:
                if self._idled_out():
                    return self.cells_executed
                time.sleep(self.reconnect_delay)
                continue
            self._mark_useful()
            try:
                self._serve(sock)
            except (protocol.ProtocolError, OSError):
                pass  # scheduler went away; reconnect (or idle out) below
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if self.once or self._idled_out():
                return self.cells_executed

    def _idled_out(self) -> bool:
        return (
            self.max_idle is not None
            and time.monotonic() - self._last_useful > self.max_idle
        )

    def _mark_useful(self) -> None:
        self._last_useful = time.monotonic()

    # -- one connection -----------------------------------------------------

    def _serve(self, sock: socket.socket) -> None:
        # The scheduler answers every request immediately (task or idle), so
        # a reply that takes this long means the peer host died without a
        # FIN/RST (power loss, partition).  The timeout surfaces as an
        # OSError, dropping us back to the reconnect loop where --max-idle
        # can fire -- without it a worker would block in recv forever.
        sock.settimeout(REPLY_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_lock = threading.Lock()

        def send(message: dict) -> None:
            with send_lock:
                protocol.send_message(sock, message)

        send({"op": "hello", "worker": self.worker_id})
        welcome = protocol.recv_message(sock)
        if welcome.get("op") != "welcome":
            raise protocol.ProtocolError(f"expected welcome, got {welcome!r}")
        heartbeat_interval = float(welcome.get("heartbeat_interval", 1.0))
        self.log(f"worker {self.worker_id} connected to {self.address}")

        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(send, stop, heartbeat_interval),
            name="repro-worker-heartbeat",
            daemon=True,
        )
        beat.start()
        fn_cache: Tuple[Optional[str], Optional[Callable[[Cell], CellOutcome]]] = (None, None)
        try:
            while True:
                send({"op": "request"})
                message = protocol.recv_message(sock)
                op = message.get("op")
                if op == "task":
                    fn_cache = self._execute(send, message, fn_cache)
                    self._mark_useful()
                elif op == "idle":
                    if self._idled_out():
                        send({"op": "bye", "worker": self.worker_id})
                        return
                    time.sleep(float(message.get("delay", 0.05)))
                else:
                    raise protocol.ProtocolError(f"unexpected op {op!r} from scheduler")
        finally:
            stop.set()

    def _heartbeat_loop(
        self, send: Callable[[dict], None], stop: threading.Event, interval: float
    ) -> None:
        while not stop.wait(interval):
            try:
                send({"op": "heartbeat", "worker": self.worker_id})
            except (protocol.ProtocolError, OSError):
                return  # main loop will observe the dead socket itself

    def _execute(
        self,
        send: Callable[[dict], None],
        message: dict,
        fn_cache: Tuple[Optional[str], Optional[Callable[[Cell], CellOutcome]]],
    ) -> Tuple[str, Callable[[Cell], CellOutcome]]:
        campaign = str(message.get("campaign"))
        cell: Cell = protocol.decode_payload(str(message.get("cell")))
        cached_campaign, fn = fn_cache
        if "fn" in message:
            fn = protocol.decode_payload(str(message["fn"]))
        elif cached_campaign != campaign or fn is None:
            raise protocol.ProtocolError(
                f"task for campaign {campaign} arrived without a cell function"
            )
        try:
            outcome = fn(cell)
        except Exception as error:  # fn is CellFunction, but be safe
            import traceback

            outcome = CellOutcome(
                cell=cell,
                error=traceback.format_exc(),
                error_type=type(error).__name__,
            )
        # KeyboardInterrupt/SystemExit deliberately propagate: the
        # connection drops and the scheduler's worker-loss path retries the
        # cell elsewhere -- Ctrl-C on one worker must cost a retry, never
        # poison the campaign with a fake cell failure.
        send(
            {
                "op": "result",
                "worker": self.worker_id,
                "campaign": campaign,
                "index": int(message.get("index", -1)),
                "outcome": protocol.encode_payload(outcome),
            }
        )
        self.cells_executed += 1
        return campaign, fn


def run_worker(
    address: str,
    *,
    worker_id: Optional[str] = None,
    max_idle: Optional[float] = None,
    once: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Module-level entry point (picklable as a ``multiprocessing`` target)."""

    return Worker(
        address, worker_id=worker_id, max_idle=max_idle, once=once, log=log
    ).run()
