"""The dashboard HTTP server: a stdlib front-end over the telemetry bus.

:class:`DashboardServer` wraps a ``ThreadingHTTPServer`` running in a
daemon thread; every handler only *reads* bus state (snapshot, topic
history), so serving any number of pollers cannot perturb a running
campaign -- that invariant is what the determinism tests pin down.

Endpoints (all JSON unless noted):

===========================  =============================================
``/``                        the live HTML view (:data:`INDEX_HTML`)
``/api/status``              :meth:`TelemetryBus.snapshot`
``/api/topics``              topic -> latest sequence number
``/api/events``              ring history; ``?topic=&since=&limit=`` or the
                             cursor form ``?topics=a,b,worker.*&since_global=``
                             (returns ``next``, the new cursor)
``/api/scenarios``           registered scenarios (+ Gantt capability)
``/gantt.svg``               SVG Gantt; ``?scenario=&seed=&full=1``
===========================  =============================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.telemetry import TelemetryBus, get_bus


def _scenario_index() -> Dict[str, Any]:
    from repro.scenarios import registry
    from repro.scenarios.composer import RECORD_MODELS

    return {
        "scenarios": [
            {
                "name": spec.name,
                "model": spec.model,
                "description": spec.description,
                "tags": list(spec.tags),
                "gantt": spec.model in RECORD_MODELS,
            }
            for spec in registry.all_specs()
        ]
    }


class _Handler(BaseHTTPRequestHandler):
    """One request; the bus to read from hangs off the server object."""

    server_version = "repro-dashboard/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # observation must stay silent; errors surface as HTTP statuses

    # -- helpers -------------------------------------------------------------
    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, default=repr).encode("utf-8")
        self._send(status, body, "application/json; charset=utf-8")

    def _query(self) -> Tuple[str, Dict[str, str]]:
        parts = urlsplit(self.path)
        query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        return parts.path, query

    # -- routing -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            path, query = self._query()
            bus: TelemetryBus = self.server.bus  # type: ignore[attr-defined]
            if path == "/":
                from repro.dashboard.static import INDEX_HTML

                self._send(200, INDEX_HTML.encode("utf-8"),
                           "text/html; charset=utf-8")
            elif path == "/api/status":
                self._json(bus.snapshot())
            elif path == "/api/topics":
                self._json({"topics": bus.topics()})
            elif path == "/api/events":
                self._events(bus, query)
            elif path == "/api/scenarios":
                self._json(_scenario_index())
            elif path == "/gantt.svg":
                self._gantt(query)
            else:
                self._json({"error": f"unknown path {path!r}"}, status=404)
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to clean up
        except Exception as error:  # pragma: no cover - defensive
            try:
                self._json({"error": repr(error)}, status=500)
            except Exception:
                pass

    def _events(self, bus: TelemetryBus, query: Dict[str, str]) -> None:
        limit = min(int(query.get("limit", "256")), 4096)
        topic = query.get("topic", "")
        if topic:
            # Legacy single-topic form with a per-topic seq cursor.
            since = int(query.get("since", "0"))
            events = bus.events(topic, since=since, limit=limit)
            self._json({
                "topic": topic,
                "events": [event.as_dict() for event in events],
            })
            return
        # Cursor form: one request covers every topic of interest.  The
        # client resends the returned "next" as since_global, so each tick
        # downloads only new events instead of the full ring history.
        since_global = int(query.get("since_global", "0"))
        raw_topics = query.get("topics", "")
        topics = [t for t in (s.strip() for s in raw_topics.split(",")) if t]
        events = bus.events_since(
            since_global, topics=topics or None, limit=limit,
        )
        cursor = events[-1].gseq if events else since_global
        self._json({
            "events": [event.as_dict() for event in events],
            "next": cursor,
        })

    def _gantt(self, query: Dict[str, str]) -> None:
        from repro.dashboard.gantt import render_scenario_gantt
        from repro.scenarios.spec import SpecError

        scenario = query.get("scenario", "")
        if not scenario:
            self._json({"error": "missing ?scenario="}, status=400)
            return
        seed = int(query["seed"]) if "seed" in query else None
        smoke = query.get("full", "") not in ("1", "true")
        try:
            svg = render_scenario_gantt(scenario, seed=seed, smoke=smoke)
        except KeyError as error:
            self._json({"error": str(error)}, status=404)
            return
        except SpecError as error:
            self._json({"error": str(error)}, status=400)
            return
        self._send(200, svg.encode("utf-8"), "image/svg+xml; charset=utf-8")


class DashboardServer:
    """A threaded HTTP dashboard bound to one telemetry bus.

    ::

        server = DashboardServer(port=0)     # 0 = pick a free port
        server.start()
        print(server.url)                    # http://127.0.0.1:NNNNN
        ...
        server.stop()

    Also usable as a context manager.  The server thread and every handler
    thread are daemons: an exiting CLI never hangs on a connected poller.
    """

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        bus: Optional[TelemetryBus] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.bus = bus if bus is not None else get_bus()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "DashboardServer":
        if self._httpd is not None:
            raise RuntimeError("dashboard server already started")
        httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        httpd.daemon_threads = True
        httpd.bus = self.bus  # type: ignore[attr-defined]
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-dashboard",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "serving" if self._httpd is not None else "stopped"
        return f"DashboardServer(url={self.url!r}, {state})"
