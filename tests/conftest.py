"""Shared fixtures of the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.job import MoldableJob, RigidJob
from repro.core.speedup import AmdahlSpeedup, PowerLawSpeedup, make_runtime_table
from repro.platform.generators import homogeneous_cluster
from repro.workload.models import generate_moldable_jobs, generate_rigid_jobs


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_rigid_jobs():
    """A tiny deterministic rigid instance used by many policy tests."""

    return [
        RigidJob(name="a", nbproc=2, duration=4.0, weight=2.0),
        RigidJob(name="b", nbproc=1, duration=10.0, weight=1.0),
        RigidJob(name="c", nbproc=3, duration=2.0, weight=5.0),
        RigidJob(name="d", nbproc=1, duration=1.0, weight=1.0),
        RigidJob(name="e", nbproc=2, duration=6.0, weight=3.0),
    ]


@pytest.fixture
def small_moldable_jobs():
    """A tiny deterministic moldable instance (monotonic profiles)."""

    return [
        MoldableJob(name="m1", runtimes=make_runtime_table(12.0, 4, AmdahlSpeedup(0.1))),
        MoldableJob(name="m2", runtimes=make_runtime_table(6.0, 4, PowerLawSpeedup(0.9))),
        MoldableJob(name="m3", runtimes=[5.0]),
        MoldableJob(name="m4", runtimes=make_runtime_table(20.0, 4, AmdahlSpeedup(0.3)), weight=4.0),
        MoldableJob(name="m5", runtimes=make_runtime_table(3.0, 2, PowerLawSpeedup(0.8)), weight=2.0),
    ]


@pytest.fixture
def random_moldable_jobs():
    return generate_moldable_jobs(25, 16, random_state=7)


@pytest.fixture
def random_rigid_jobs():
    return generate_rigid_jobs(25, 16, random_state=7)


@pytest.fixture
def cluster16():
    return homogeneous_cluster("test-cluster", 16)
