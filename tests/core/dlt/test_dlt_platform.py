"""Unit tests of the DLT platform description."""

import pytest

from repro.core.dlt.platform import DLTPlatform, DLTWorker
from repro.platform.ciment import ciment_grid
from repro.platform.generators import heterogeneous_cluster, homogeneous_cluster


class TestDLTWorker:
    def test_compute_rate(self):
        worker = DLTWorker("w", compute_time=0.5)
        assert worker.compute_rate == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DLTWorker("w", compute_time=0.0)
        with pytest.raises(ValueError):
            DLTWorker("w", compute_time=1.0, comm_time=-1.0)
        with pytest.raises(ValueError):
            DLTWorker("w", compute_time=1.0, latency=-1.0)


class TestDLTPlatform:
    def test_homogeneous_constructor(self):
        platform = DLTPlatform.homogeneous(4, compute_time=2.0, comm_time=0.1)
        assert len(platform) == 4
        assert platform.is_bus()
        assert platform.total_compute_rate == pytest.approx(2.0)

    def test_duplicate_names_rejected(self):
        workers = [DLTWorker("w", 1.0), DLTWorker("w", 2.0)]
        with pytest.raises(ValueError):
            DLTPlatform(workers)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DLTPlatform([])

    def test_is_bus_detects_heterogeneous_links(self):
        workers = [DLTWorker("a", 1.0, comm_time=0.1), DLTWorker("b", 1.0, comm_time=0.2)]
        assert not DLTPlatform(workers).is_bus()

    def test_from_cluster(self):
        cluster = homogeneous_cluster("c", 8, speed=2.0, bandwidth=100.0)
        platform = DLTPlatform.from_cluster(cluster, data_per_unit=1.0)
        assert len(platform) == 8
        assert platform[0].compute_time == pytest.approx(0.5)
        assert platform[0].comm_time == pytest.approx(0.01)

    def test_from_heterogeneous_cluster_orders_match_speeds(self):
        cluster = heterogeneous_cluster("h", 4, speed_range=(0.5, 2.0), random_state=1)
        platform = DLTPlatform.from_cluster(cluster)
        speeds = cluster.processor_speeds()
        for worker, speed in zip(platform, speeds):
            assert worker.compute_time == pytest.approx(1.0 / speed)

    def test_from_grid_one_worker_per_cluster(self):
        grid = ciment_grid()
        platform = DLTPlatform.from_grid(grid)
        assert len(platform) == len(grid)
        names = [w.name for w in platform]
        assert set(names) == set(grid.cluster_names)
        # The Itanium cluster is the largest and fastest: highest compute rate.
        itanium = next(w for w in platform if w.name == "icluster-itanium")
        assert itanium.compute_rate == max(w.compute_rate for w in platform)
