"""Unit tests of the bi-criteria doubling-batch scheduler (section 4.4)."""

import pytest

from repro.core.bounds import (
    makespan_lower_bound,
    weighted_completion_lower_bound,
)
from repro.core.criteria import makespan, weighted_completion_time
from repro.core.job import MoldableJob
from repro.core.policies.bicriteria import BiCriteriaScheduler
from repro.core.policies.list_scheduling import ListScheduler
from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import WorkloadConfig, generate_moldable_jobs


class TestBiCriteriaScheduler:
    def test_empty(self):
        assert len(BiCriteriaScheduler().schedule([], 4)) == 0

    def test_invalid_initial_deadline(self):
        with pytest.raises(ValueError):
            BiCriteriaScheduler(initial_deadline=0.0)

    def test_all_jobs_scheduled_and_valid(self, random_moldable_jobs):
        scheduler = BiCriteriaScheduler()
        schedule = scheduler.schedule(random_moldable_jobs, 16)
        schedule.validate()
        assert len(schedule) == len(random_moldable_jobs)

    def test_batches_have_doubling_deadlines(self, random_moldable_jobs):
        scheduler = BiCriteriaScheduler()
        scheduler.schedule(random_moldable_jobs, 16)
        deadlines = [b.deadline for b in scheduler.last_batches]
        assert len(deadlines) >= 2
        for previous, current in zip(deadlines, deadlines[1:]):
            assert current >= 2 * previous - 1e-9

    def test_small_heavy_jobs_finish_early(self):
        """The whole point of the bi-criteria schedule: small jobs do not wait
        behind huge ones, unlike a pure makespan (LPT) schedule."""

        jobs = [
            MoldableJob(name="huge", runtimes=[1000.0], weight=1.0),
            MoldableJob(name="tiny", runtimes=[1.0], weight=1.0),
        ]
        bicriteria = BiCriteriaScheduler().schedule(jobs, 1)
        lpt = ListScheduler("lpt").schedule(jobs, 1)
        assert bicriteria["tiny"].completion < lpt["tiny"].completion
        assert bicriteria["tiny"].completion <= 2.0 + 1e-9

    def test_release_dates_respected(self):
        jobs = [
            MoldableJob(name="a", runtimes=[2.0], release_date=0.0),
            MoldableJob(name="b", runtimes=[2.0], release_date=40.0),
        ]
        schedule = BiCriteriaScheduler().schedule(jobs, 4)
        schedule.validate()
        assert schedule["b"].start >= 40.0

    def test_four_rho_bound_on_both_criteria(self):
        """Empirical check of the 4*rho guarantee (rho = 2 for the greedy inner)."""

        rho = 2.0
        for seed in range(3):
            jobs = generate_moldable_jobs(
                40, 16, config=WorkloadConfig(weight_scheme="work"), random_state=seed
            )
            scheduler = BiCriteriaScheduler(GreedyMoldableScheduler())
            schedule = scheduler.schedule(jobs, 16)
            schedule.validate()
            assert makespan(schedule) <= 4 * rho * makespan_lower_bound(jobs, 16) * (1 + 1e-9)
            assert weighted_completion_time(schedule) <= (
                4 * rho * weighted_completion_lower_bound(jobs, 16) * (1 + 1e-9)
            )

    def test_deadline_aware_inner_is_default(self):
        scheduler = BiCriteriaScheduler()
        assert "deadline-aware" in scheduler.name
        assert scheduler.offline is None

    def test_explicit_mrt_inner(self, random_moldable_jobs):
        scheduler = BiCriteriaScheduler(MRTScheduler())
        schedule = scheduler.schedule(random_moldable_jobs, 16)
        schedule.validate()
        assert "mrt" in scheduler.name

    def test_online_instance(self):
        jobs = generate_moldable_jobs(30, 8, random_state=5)
        jobs = poisson_arrivals(jobs, rate=0.5, random_state=5)
        schedule = BiCriteriaScheduler().schedule(jobs, 8)
        schedule.validate()
        assert len(schedule) == 30
        for job in jobs:
            assert schedule[job.name].start >= job.release_date - 1e-9

    def test_batch_records_cover_all_jobs(self, random_moldable_jobs):
        scheduler = BiCriteriaScheduler()
        scheduler.schedule(random_moldable_jobs, 16)
        names = [name for batch in scheduler.last_batches for name in batch.jobs]
        assert sorted(names) == sorted(j.name for j in random_moldable_jobs)
