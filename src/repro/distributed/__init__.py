"""Distributed campaign runner: scheduler/worker runtime over TCP sockets.

The single-host sweep engine (``REPRO_JOBS=N`` process pools) tops out at
one machine; this package is the execution layer that outgrows it.  A
central :class:`~repro.distributed.scheduler.Scheduler` owns the cell queue
of one *campaign* (a sweep routed through the harness) and speaks a
length-prefixed JSON-over-TCP protocol
(:mod:`repro.distributed.protocol`) to any number of
:class:`~repro.distributed.worker.Worker` processes -- on the same host or
across a cluster -- which register, heartbeat, pull cells and stream
outcomes back.  Fault tolerance is retry-based (dead workers' in-flight
cells are requeued under a bounded budget) and campaigns are resumable
through an append-only JSONL journal
(:class:`~repro.distributed.campaign.CampaignJournal`).

The public entry points:

* :class:`~repro.distributed.executor.DistributedExecutor` plugs the
  runtime into the ordinary ``Executor`` interface, so any sweep, scenario
  or bench case runs distributed unchanged and bit-identically (selected by
  ``REPRO_JOBS=tcp://host:port``, ``executor="distributed"``, or
  explicitly);
* ``python -m repro.distributed`` drives it from the command line
  (``scheduler`` / ``worker`` / ``run`` -- see :mod:`repro.distributed.cli`).
"""

from repro.distributed.campaign import CampaignJournal
from repro.distributed.executor import (
    DistributedExecutor,
    executor_from_address,
    local_mini_cluster,
)
from repro.distributed.protocol import (
    ConnectionClosed,
    ProtocolError,
    format_address,
    parse_address,
)
from repro.distributed.scheduler import CampaignStalled, Scheduler, SchedulerStats
from repro.distributed.worker import Worker, run_worker

__all__ = [
    "CampaignJournal",
    "CampaignStalled",
    "ConnectionClosed",
    "DistributedExecutor",
    "ProtocolError",
    "Scheduler",
    "SchedulerStats",
    "Worker",
    "executor_from_address",
    "format_address",
    "local_mini_cluster",
    "parse_address",
    "run_worker",
]
