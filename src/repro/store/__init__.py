"""Columnar campaign store: the unified results API and SQL analytics layer.

The package has four layers, importable a la carte:

* :mod:`repro.store.api` -- the :class:`RowSink`/:class:`RowSource`
  protocols every row store implements, plus :func:`write_rows`, the single
  export entry point behind the CLIs' ``--out`` flags.
* :mod:`repro.store.columnar` -- :class:`CampaignStore`, Parquet (or JSONL
  fallback) partitions published through an atomic manifest.
* :mod:`repro.store.queries` / :mod:`repro.store.analytics` -- named SQL
  queries over a DuckDB view of the store, each with a pure-python twin.
* :mod:`repro.store.validate` -- the paper's ratio bounds as validation
  queries; :mod:`repro.store.ingest` -- legacy journal/CSV import.

Only the standard library and numpy are required; duckdb and pyarrow are
the optional ``[analytics]`` extra and every entry point degrades to a
pure-python path without them.
"""

from repro.store.api import (
    FORMATS,
    RowSink,
    RowSource,
    StoreUnavailableError,
    compose_row,
    infer_format,
    read_rows,
    union_columns,
    write_rows,
)
from repro.store.columnar import CampaignStore, Partition, StoreStats
from repro.store.queries import QUERIES, Query, QueryError, get_query, run_query
from repro.store.validate import RULES, RuleResult, ValidationRule, validate_store

__all__ = [
    "FORMATS",
    "QUERIES",
    "Query",
    "QueryError",
    "RULES",
    "RowSink",
    "RowSource",
    "RuleResult",
    "CampaignStore",
    "Partition",
    "StoreStats",
    "StoreUnavailableError",
    "ValidationRule",
    "compose_row",
    "get_query",
    "infer_format",
    "read_rows",
    "run_query",
    "union_columns",
    "validate_store",
    "write_rows",
]
