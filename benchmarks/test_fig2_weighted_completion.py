"""FIG2-WC: Figure 2 (top) -- sum w_i C_i ratio of the bi-criteria algorithm.

Reproduces the top plot of Figure 2: the ratio of the achieved weighted
completion time to the lower bound, as a function of the number of tasks
(cluster of 100 machines, Parallel and Non Parallel workloads).

Shape assertions (absolute values depend on the unknown workload of the
authors): ratios are bounded by a small constant, they do not grow with the
number of tasks, and for large task counts the Parallel workload achieves a
ratio at least as good as the Non Parallel one.

The sweep is declared through the scenario registry (the registered
``fig2.bicriteria`` spec with the benchmark's task counts and seed); the
composer produces cells bit-identical to the historical hand-wired
``run_figure2`` call.
"""

from __future__ import annotations


from repro.experiments.figure2 import figure2_curves, points_from_rows
from repro.experiments.reporting import ascii_plot, ascii_table
from repro.scenarios import get

TASK_COUNTS = (50, 100, 200, 400, 700, 1000)

SPEC = get("fig2.bicriteria").evolve(
    repetitions=2,
    seed=2004,
    sweep={
        "workload.family": ["non_parallel", "parallel"],
        "workload.n_tasks": list(TASK_COUNTS),
    },
)


def test_figure2_weighted_completion_ratio(run_scenario_sweep, report):
    result = run_scenario_sweep(SPEC)
    curves = figure2_curves(points_from_rows(result.rows))["wici"]

    rows = [
        {"n_tasks": n, "non_parallel": curves["non_parallel"][n], "parallel": curves["parallel"][n]}
        for n in TASK_COUNTS
    ]
    report(
        "Figure 2 (top): sum w_i C_i ratio vs number of tasks (100 machines)",
        ascii_table(rows)
        + "\n"
        + ascii_plot(
            {"parallel": curves["parallel"], "non parallel": curves["non_parallel"]},
            title="WiCi ratio",
            x_label="number of tasks",
        ),
    )

    for family in ("parallel", "non_parallel"):
        curve = curves[family]
        values = [curve[n] for n in TASK_COUNTS]
        # Bounded by a small constant, far below the worst-case guarantee.
        assert all(1.0 - 1e-9 <= v <= 4.0 for v in values), family
        # Ratios flatten: the largest instance is no worse than the smallest.
        assert values[-1] <= values[0] + 0.25, family
    # For large task counts the moldable (Parallel) workload is served at
    # least as well as the sequential one.
    assert curves["parallel"][1000] <= curves["non_parallel"][1000] + 0.5
