"""Processor-pool resource with reservations and preemption.

The pool tracks which processor indices of a cluster are busy, grants
allocation requests (possibly queueing them FIFO), honours advance
reservations (section 5.1 "Reservations") and supports *preemptible*
allocations: a best-effort grid task (section 5.2, centralized organisation)
holds its processors preemptibly, and the pool can reclaim them when a local
job needs the space ("If a locally submitted job requires a processor
currently in use by a best-effort job, the latter will be killed").
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.allocation import Reservation


@dataclass
class AllocationRequest:
    """A pending request for ``nbproc`` processors."""

    name: str
    nbproc: int
    preemptible: bool = False
    callback: Optional[Callable[[Tuple[int, ...]], None]] = None

    def __post_init__(self) -> None:
        if self.nbproc < 1:
            raise ValueError("nbproc must be >= 1")


class _Lease:
    """One active allocation; a plain ``__slots__`` record (hot path)."""

    __slots__ = ("name", "processors", "preemptible", "on_preempt")

    def __init__(
        self,
        name: str,
        processors: Tuple[int, ...],
        preemptible: bool,
        on_preempt: Optional[Callable[[Tuple[int, ...]], None]] = None,
    ) -> None:
        self.name = name
        self.processors = processors
        self.preemptible = preemptible
        self.on_preempt = on_preempt


class ProcessorPool:
    """Tracks busy/free processors of a cluster at the current simulation time."""

    def __init__(self, machine_count: int, *, reservations: Sequence[Reservation] = ()) -> None:
        if machine_count < 1:
            raise ValueError("machine_count must be >= 1")
        self.machine_count = machine_count
        self.reservations: Tuple[Reservation, ...] = tuple(reservations)
        self._leases: Dict[str, _Lease] = {}
        self._busy: Set[int] = set()
        #: Free processor indices, maintained in ascending order (bisect
        #: insertion on release): allocation takes the ``nbproc`` smallest
        #: indices -- the historical lowest-index-first selection -- as a
        #: front slice instead of an O(machine_count) range scan per call.
        self._free: List[int] = list(range(machine_count))
        self._queue: List[AllocationRequest] = []

    # -- state -----------------------------------------------------------------
    def free_processors(self, now: float = 0.0) -> List[int]:
        """Processor indices currently free and not blocked by a reservation."""

        if not self.reservations:
            # Fast path: without reservations a processor is free iff it is
            # not busy, and the free-list already holds exactly those in
            # ascending order.
            return list(self._free)
        return [
            p
            for p in self._free
            if not any(r.blocks(p, now, now + 1e-12) for r in self.reservations)
        ]

    def free_count(self, now: float = 0.0) -> int:
        if not self.reservations:
            return len(self._free)
        return len(self.free_processors(now))

    def preemptible_processors(self) -> List[int]:
        """Processors currently held by preemptible (best-effort) leases."""

        out: List[int] = []
        for lease in self._leases.values():
            if lease.preemptible:
                out.extend(lease.processors)
        return sorted(out)

    def busy_count(self) -> int:
        return len(self._busy)

    def utilization(self, now: float = 0.0) -> float:
        return len(self._busy) / self.machine_count

    def holder_of(self, processor: int) -> Optional[str]:
        for lease in self._leases.values():
            if processor in lease.processors:
                return lease.name
        return None

    def leases(self) -> List[str]:
        return list(self._leases)

    # -- acquire / release -------------------------------------------------------
    def try_acquire(
        self,
        name: str,
        nbproc: int,
        *,
        now: float = 0.0,
        preemptible: bool = False,
        on_preempt: Optional[Callable[[Tuple[int, ...]], None]] = None,
        allow_preemption: bool = False,
    ) -> Optional[Tuple[int, ...]]:
        """Try to allocate ``nbproc`` processors to ``name`` immediately.

        Returns the tuple of processor indices on success, ``None`` when not
        enough processors are free.  With ``allow_preemption=True`` the pool
        may first kill preemptible leases (best-effort jobs) to make room;
        their ``on_preempt`` callbacks are invoked with the processors taken
        back.
        """

        if name in self._leases:
            raise ValueError(f"lease {name!r} already active")
        if nbproc < 1:
            raise ValueError("nbproc must be >= 1")
        free = self.free_processors(now)
        if len(free) < nbproc and allow_preemption and not preemptible:
            # Kill best-effort leases until enough processors are free.
            missing = nbproc - len(free)
            victims: List[_Lease] = [
                lease for lease in self._leases.values() if lease.preemptible
            ]
            reclaimed: List[_Lease] = []
            freed = 0
            for lease in victims:
                reclaimed.append(lease)
                freed += len(lease.processors)
                if freed >= missing:
                    break
            if freed >= missing:
                for lease in reclaimed:
                    self.release(lease.name)
                    if lease.on_preempt is not None:
                        lease.on_preempt(lease.processors)
                free = self.free_processors(now)
        if len(free) < nbproc:
            return None
        chosen = tuple(free[:nbproc])
        self._take_free(chosen, contiguous=not self.reservations)
        self._busy.update(chosen)
        self._leases[name] = _Lease(name, chosen, preemptible, on_preempt)
        return chosen

    def _take_free(self, processors: Sequence[int], *, contiguous: bool = False) -> None:
        """Remove ``processors`` from the sorted free-list.

        ``contiguous`` marks the common case where the processors are the
        current head of the list (lowest-index selection without
        reservations), which removes them as one front slice.
        """

        if contiguous:
            del self._free[: len(processors)]
            return
        free = self._free
        for p in processors:
            # Bisect would also work, but the list is typically short-lived
            # and remove() on ints is a C-level scan.
            free.remove(p)

    def acquire_specific(
        self,
        name: str,
        processors: Sequence[int],
        *,
        now: float = 0.0,
        preemptible: bool = False,
        on_preempt: Optional[Callable[[Tuple[int, ...]], None]] = None,
    ) -> Tuple[int, ...]:
        """Allocate an explicit set of processors (used by reservation handling)."""

        if name in self._leases:
            raise ValueError(f"lease {name!r} already active")
        processors = tuple(int(p) for p in processors)
        for p in processors:
            if not 0 <= p < self.machine_count:
                raise ValueError(f"processor {p} outside pool")
            if p in self._busy:
                raise ValueError(f"processor {p} is busy (held by {self.holder_of(p)!r})")
        self._take_free(processors)
        self._busy.update(processors)
        self._leases[name] = _Lease(name, processors, preemptible, on_preempt)
        return processors

    def release(self, name: str) -> Tuple[int, ...]:
        """Release the processors held by ``name``."""

        try:
            lease = self._leases.pop(name)
        except KeyError:
            raise KeyError(f"no active lease named {name!r}") from None
        self._busy.difference_update(lease.processors)
        free = self._free
        for p in lease.processors:
            insort(free, p)
        return lease.processors

    def is_held(self, name: str) -> bool:
        return name in self._leases

    def __repr__(self) -> str:
        return (
            f"ProcessorPool(machines={self.machine_count}, busy={len(self._busy)}, "
            f"leases={len(self._leases)})"
        )
