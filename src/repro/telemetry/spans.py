"""Monotonic-clock spans, counters and histograms for hot runtime paths.

A :class:`SpanRecorder` wraps a :class:`~repro.telemetry.bus.TelemetryBus`
with the three primitives the runtime instruments itself with:

``span(name)``
    A context manager timing one region with :func:`time.monotonic` and
    publishing a ``kind="span"`` event (``name`` + ``seconds``) on exit.
``counter(name)`` / ``observe(name, value)``
    Locally-aggregated counters and histograms; :meth:`flush` publishes one
    compact ``kind="metrics"`` event instead of one event per increment.

Two rules keep instrumentation safe on digested paths:

1. **Span-gated**: a recorder built over no bus, or via :meth:`for_bus`
   when the bus has no subscribers (and ``REPRO_SPANS`` is unset), is
   *disabled* — ``span()`` returns a shared no-op context manager, no clock
   is read, no payload dict is built.  Instrumented loops pay one attribute
   load and one ``with`` on a do-nothing object.
2. **Monotonic only**: durations come from :func:`time.monotonic`; wall
   clocks never enter a payload field that could feed a digest.  (The bus
   stamps its own wall-clock receive time on every event, which is fine --
   that metadata never reaches result rows.)
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from repro.telemetry.events import TOPIC_SPANS

#: Environment flag forcing span capture on even with no live subscriber
#: (useful when a recorder attaches later than the instrumented code runs).
SPANS_ENV_VAR = "REPRO_SPANS"


class _NullSpan:
    """Shared do-nothing context manager for disabled recorders."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """One live timed region; publishes on exit, even when the body raises."""

    __slots__ = ("_recorder", "name", "fields", "_started", "seconds")

    def __init__(self, recorder: "SpanRecorder", name: str, fields: Dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.fields = fields
        self._started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.monotonic()
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        self.seconds = time.monotonic() - self._started
        self._recorder._publish_span(self, failed=exc_type is not None)
        return None


class SpanRecorder:
    """Publishes spans and aggregated metrics for one instrumented component.

    ``base_fields`` (e.g. ``worker="w1"``) ride on every span payload so
    post-hoc queries can group without joins.  A recorder with ``bus=None``
    is permanently disabled and free to call.
    """

    def __init__(self, bus: Optional[Any], *, topic: str = TOPIC_SPANS, **base_fields: Any) -> None:
        self._bus = bus
        self.topic = topic
        self.base_fields = {key: value for key, value in base_fields.items() if value is not None}
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}
        self.spans_published = 0

    @classmethod
    def for_bus(cls, bus: Any, *, topic: str = TOPIC_SPANS, **base_fields: Any) -> "SpanRecorder":
        """A recorder enabled only if someone is listening.

        Enabled when ``bus`` has at least one live subscription or the
        ``REPRO_SPANS`` environment flag is truthy; disabled (zero-cost)
        otherwise.
        """

        enabled = os.environ.get(SPANS_ENV_VAR, "") not in ("", "0")
        if not enabled and bus is not None:
            has = getattr(bus, "has_subscribers", None)
            enabled = bool(has()) if callable(has) else False
        return cls(bus if enabled else None, topic=topic, **base_fields)

    @property
    def enabled(self) -> bool:
        return self._bus is not None

    # -- spans ---------------------------------------------------------------
    def span(self, name: str, **fields: Any):
        """Time a region; emits ``kind="span"`` with ``name``/``seconds``."""

        if self._bus is None:
            return NULL_SPAN
        return _Span(self, name, fields)

    def record(self, name: str, seconds: float, **fields: Any) -> None:
        """Publish an already-measured duration as a ``span`` event.

        For call sites that time a region manually (an await that must not
        sit inside a ``with``, a latency computed across callbacks).
        """

        bus = self._bus
        if bus is None:
            return
        body: Dict[str, Any] = {"name": name, "seconds": float(seconds)}
        if self.base_fields:
            body.update(self.base_fields)
        if fields:
            body.update(fields)
        bus.emit(self.topic, "span", **body)
        self.spans_published += 1

    def _publish_span(self, span: _Span, *, failed: bool) -> None:
        bus = self._bus
        if bus is None:  # pragma: no cover - recorder disabled mid-span
            return
        body: Dict[str, Any] = {"name": span.name, "seconds": span.seconds}
        if self.base_fields:
            body.update(self.base_fields)
        if span.fields:
            body.update(span.fields)
        if failed:
            body["failed"] = True
        bus.emit(self.topic, "span", **body)
        self.spans_published += 1

    # -- counters + histograms ----------------------------------------------
    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` to a named counter (published on :meth:`flush`)."""

        if self._bus is None:
            return
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a named histogram (count/total/min/max)."""

        if self._bus is None:
            return
        stats = self._histograms.get(name)
        if stats is None:
            self._histograms[name] = {
                "count": 1,
                "total": float(value),
                "min": float(value),
                "max": float(value),
            }
            return
        stats["count"] += 1
        stats["total"] += float(value)
        stats["min"] = min(stats["min"], float(value))
        stats["max"] = max(stats["max"], float(value))

    def flush(self) -> bool:
        """Publish accumulated counters/histograms as one ``metrics`` event.

        Returns True when something was published; a no-op (and False) when
        disabled or nothing accumulated since the last flush.
        """

        bus = self._bus
        if bus is None or (not self._counters and not self._histograms):
            return False
        body: Dict[str, Any] = {}
        if self.base_fields:
            body.update(self.base_fields)
        body["counters"] = dict(self._counters)
        body["histograms"] = {name: dict(stats) for name, stats in self._histograms.items()}
        self._counters.clear()
        self._histograms.clear()
        bus.emit(self.topic, "metrics", **body)
        return True

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"SpanRecorder({state}, topic={self.topic!r}, spans={self.spans_published})"
