"""Unit tests of the list-scheduling policies."""


from repro.core.criteria import makespan, weighted_completion_time
from repro.core.job import RigidJob
from repro.core.policies.base import MoldableAllocator
from repro.core.policies.list_scheduling import ListScheduler, OnlineListScheduler
from repro.workload.models import generate_mixed_jobs, generate_rigid_jobs


class TestListScheduler:
    def test_empty_instance(self):
        schedule = ListScheduler("lpt").schedule([], 4)
        assert len(schedule) == 0

    def test_all_jobs_scheduled_and_valid(self, small_rigid_jobs):
        schedule = ListScheduler("lpt").schedule(small_rigid_jobs, 4)
        schedule.validate()
        assert len(schedule) == len(small_rigid_jobs)

    def test_lpt_beats_or_matches_fcfs_on_makespan(self):
        jobs = generate_rigid_jobs(40, 8, random_state=11)
        lpt = ListScheduler("lpt").schedule(jobs, 8)
        fcfs = ListScheduler("fcfs").schedule(jobs, 8)
        # LPT is not always better instance-by-instance, but on this seeded
        # instance it is, and both must be valid.
        lpt.validate()
        fcfs.validate()
        assert makespan(lpt) <= makespan(fcfs) + 1e-9

    def test_wspt_beats_lpt_on_weighted_completion(self):
        jobs = generate_rigid_jobs(40, 8, random_state=13)
        wspt = ListScheduler("wspt").schedule(jobs, 8)
        lpt = ListScheduler("lpt").schedule(jobs, 8)
        assert weighted_completion_time(wspt) <= weighted_completion_time(lpt) + 1e-9

    def test_moldable_jobs_use_allocator(self, small_moldable_jobs):
        sequential = ListScheduler("lpt", MoldableAllocator("sequential"))
        parallel = ListScheduler("lpt", MoldableAllocator("min_runtime"))
        s_seq = sequential.schedule(small_moldable_jobs, 4)
        s_par = parallel.schedule(small_moldable_jobs, 4)
        s_seq.validate()
        s_par.validate()
        assert all(e.nbproc == 1 for e in s_seq)
        assert any(e.nbproc > 1 for e in s_par)

    def test_mixed_rigid_and_moldable(self):
        jobs = generate_mixed_jobs(20, 8, rigid_fraction=0.5, random_state=3)
        schedule = ListScheduler("area").schedule(jobs, 8)
        schedule.validate()
        assert len(schedule) == 20

    def test_policy_name(self):
        assert ListScheduler("spt").name == "list-spt"


class TestOnlineListScheduler:
    def test_release_dates_respected(self):
        jobs = [
            RigidJob(name="a", nbproc=1, duration=5.0, release_date=0.0),
            RigidJob(name="b", nbproc=1, duration=5.0, release_date=100.0),
        ]
        schedule = OnlineListScheduler().schedule(jobs, 4)
        schedule.validate()
        assert schedule["b"].start >= 100.0

    def test_empty(self):
        assert len(OnlineListScheduler().schedule([], 2)) == 0
