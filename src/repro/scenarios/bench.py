"""Bridge between the scenario registry and the ``repro.bench`` runner.

Every registered scenario can be benchmarked for free: its smoke tier maps
to the bench ``quick`` tier and its full sweep to the ``full`` tier, with
the result rows as the digest payload -- so the perf-tracking pipeline
(median timing, ``BENCH_*.json`` reports, the regression comparator) covers
scenarios exactly like the hand-written kernel cases.

Scenario cases are not registered on import (the default ``python -m
repro.bench`` run stays the small curated suite); call
:func:`register_scenario_benchmarks` -- or pass ``--scenarios`` to the bench
CLI -- to add them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.cases import REGISTRY as BENCH_REGISTRY
from repro.bench.cases import BenchCase, CaseOutcome
from repro.bench.cases import register as bench_register
from repro.scenarios import registry
from repro.scenarios.composer import run_scenario
from repro.scenarios.spec import ScenarioSpec

#: Bench-case name prefix for scenario-derived cases.
PREFIX = "scenario."


def _run_scenario_case(name: str, smoke: bool) -> CaseOutcome:
    spec = registry.get(name)
    # Pin the serial executor: REPRO_JOBS would fan the sweep out and make
    # timings incomparable across machines (digests stay identical anyway).
    result = run_scenario(spec, smoke=smoke, executor="serial")
    return CaseOutcome(cells=len(result.rows), payload=result.rows)


def scenario_bench_case(spec: ScenarioSpec) -> BenchCase:
    """A :class:`BenchCase` wrapping one registered scenario."""

    return BenchCase(
        name=f"{PREFIX}{spec.name}",
        description=f"scenario: {spec.description or spec.name}",
        run=_run_scenario_case,
        params={
            "quick": {"name": spec.name, "smoke": True},
            "full": {"name": spec.name, "smoke": False},
        },
    )


def register_scenario_benchmarks(names: Optional[List[str]] = None) -> List[BenchCase]:
    """Register bench cases for the given scenarios (default: all); idempotent."""

    cases = []
    for spec in registry.resolve(names):
        case_name = f"{PREFIX}{spec.name}"
        if case_name in BENCH_REGISTRY:
            cases.append(BENCH_REGISTRY[case_name])
            continue
        cases.append(bench_register(scenario_bench_case(spec)))
    return cases
