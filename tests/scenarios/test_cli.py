"""CLI: list/describe/run/sweep behaviour and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import get, names
from repro.scenarios.cli import main
from repro.scenarios.spec import ScenarioSpec


class TestList:
    def test_list_exits_zero_and_shows_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in names():
            assert name in out
        assert f"{len(names())} scenario(s) registered" in out

    def test_names_only_output(self, capsys):
        assert main(["list", "--names-only"]) == 0
        assert capsys.readouterr().out.split() == names()

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "grid", "--names-only"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == names("grid") and listed


class TestDescribe:
    def test_toml_output_round_trips(self, capsys):
        name = names()[0]
        assert main(["describe", name]) == 0
        text = capsys.readouterr().out
        assert ScenarioSpec.from_toml(text).to_dict() == get(name).to_dict()

    def test_json_output(self, capsys):
        name = names()[0]
        assert main(["describe", name, "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["name"] == name

    def test_unknown_name_exits_two(self, capsys):
        assert main(["describe", "no.such.scenario"]) == 2


class TestRun:
    def test_single_scenario_smoke_exits_zero(self, capsys, tmp_path):
        summary = tmp_path / "summary.json"
        code = main(["run", "mix.rigid-moldable", "--smoke",
                     "--output", str(summary)])
        assert code == 0
        report = json.loads(summary.read_text())
        assert report["tier"] == "smoke"
        (entry,) = report["scenarios"]
        assert entry["ok"] and entry["name"] == "mix.rigid-moldable"
        assert entry["rows"] > 0 and len(entry["digest"]) == 64
        assert "1/1 scenario(s) passed" in capsys.readouterr().out

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["run", "no.such.scenario"]) == 2

    def test_no_selection_exits_two(self, capsys):
        assert main(["run"]) == 2

    def test_malformed_executor_spec_is_a_usage_error(self, capsys):
        """A bad --executor is one exit-2 message, not N scenario FAILs."""

        code = main(["run", "mix.rigid-moldable", "--smoke",
                     "--executor", "carrier-pigeon"])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot resolve an executor" in captured.err
        assert "FAIL" not in captured.out
        assert main(["sweep", "mix.rigid-moldable", "--smoke",
                     "--executor", "tcp://nohost"]) == 2

    def test_executor_flag_accepts_job_counts(self, capsys, tmp_path):
        code = main(["run", "mix.rigid-moldable", "--smoke", "--jobs", "1"])
        assert code == 0
        assert "1/1 scenario(s) passed" in capsys.readouterr().out

    def test_spec_file(self, capsys, tmp_path):
        spec_file = tmp_path / "mini.toml"
        spec_file.write_text(
            get("mix.rigid-moldable")
            .evolve(name="test.cli-toml")
            .smoke_spec()
            .to_toml()
        )
        assert main(["run", "--spec", str(spec_file)]) == 0
        assert "test.cli-toml" in capsys.readouterr().out

    def test_unreadable_spec_file_exits_two(self, capsys, tmp_path):
        assert main(["run", "--spec", str(tmp_path / "missing.toml")]) == 2

    def test_broken_scenario_exits_one(self, capsys, tmp_path):
        spec_file = tmp_path / "broken.toml"
        broken = get("mix.rigid-moldable").evolve(
            name="test.cli-broken", metrics=("no_such_metric",),
        )
        spec_file.write_text(broken.to_toml())
        summary = tmp_path / "summary.json"
        assert main(["run", "--smoke", "--spec", str(spec_file),
                     "--output", str(summary)]) == 1
        out = capsys.readouterr().out
        assert "FAIL test.cli-broken" in out
        (entry,) = json.loads(summary.read_text())["scenarios"]
        assert entry["ok"] is False and "no_such_metric" in entry["error"]


class TestSweep:
    def test_sweep_with_axis_override_and_csv(self, capsys, tmp_path):
        csv = tmp_path / "rows.csv"
        with pytest.warns(DeprecationWarning, match="--csv"):
            code = main([
                "sweep", "mix.rigid-moldable", "--smoke",
                "--axis", "policy.strategy=separate,first_fit_batch",
                "--repetitions", "1",
                "--csv", str(csv),
                "--group-by", "policy.strategy",
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "digest" in out and "means by policy.strategy" in out
        header = csv.read_text().splitlines()[0]
        assert "makespan_ratio" in header

    def test_bad_axis_exits_two(self, capsys):
        assert main(["sweep", "mix.rigid-moldable", "--axis", "nonsense"]) == 2

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["sweep", "no.such.scenario"]) == 2


class TestExportSurface:
    def test_sweep_out_csv(self, capsys, tmp_path):
        out = tmp_path / "rows.csv"
        assert main(["sweep", "fig2.bicriteria", "--smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        assert "cmax_ratio" in out.read_text().splitlines()[0]

    def test_sweep_out_jsonl(self, capsys, tmp_path):
        import json as _json

        out = tmp_path / "rows.jsonl"
        assert main(["sweep", "fig2.bicriteria", "--smoke", "--out", str(out)]) == 0
        capsys.readouterr()
        rows = [_json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 2 and all("cmax_ratio" in row for row in rows)

    def test_sweep_out_unknown_suffix_needs_format(self, capsys, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="infer"):
            main(["sweep", "fig2.bicriteria", "--smoke",
                  "--out", str(tmp_path / "rows.dat")])

    def test_csv_flag_is_a_deprecated_alias(self, capsys, tmp_path):
        import pytest

        legacy = tmp_path / "legacy.csv"
        with pytest.warns(DeprecationWarning, match="--out"):
            assert main(["sweep", "fig2.bicriteria", "--smoke",
                         "--csv", str(legacy)]) == 0
        capsys.readouterr()
        modern = tmp_path / "modern.csv"
        assert main(["sweep", "fig2.bicriteria", "--smoke", "--out", str(modern)]) == 0
        capsys.readouterr()
        assert legacy.read_bytes() == modern.read_bytes()

    def test_csv_and_out_together_exit_two(self, capsys, tmp_path):
        import pytest

        with pytest.warns(DeprecationWarning):
            code = main(["sweep", "fig2.bicriteria", "--smoke",
                         "--csv", str(tmp_path / "a.csv"),
                         "--out", str(tmp_path / "b.csv")])
        assert code == 2
        assert "only one" in capsys.readouterr().err

    def test_run_streams_into_a_campaign_store(self, capsys, tmp_path):
        from repro.store.columnar import CampaignStore

        store_dir = tmp_path / "store"
        assert main(["run", "fig2.bicriteria", "--smoke",
                     "--store", str(store_dir), "--campaign", "smoke"]) == 0
        capsys.readouterr()
        store = CampaignStore(store_dir)
        assert store.campaigns() == ["smoke"]
        assert len(store) == 2
        rows = store.rows()
        assert all(row["experiment"] == "fig2.bicriteria" for row in rows)

    def test_run_out_concatenates_scenario_rows(self, capsys, tmp_path):
        out = tmp_path / "rows.jsonl"
        assert main(["run", "fig2.bicriteria", "--smoke", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "2 row(s) written" in output
        assert len(out.read_text().splitlines()) == 2

    def test_campaign_without_store_exits_two(self, capsys):
        assert main(["run", "fig2.bicriteria", "--smoke", "--campaign", "x"]) == 2
        assert "--store" in capsys.readouterr().err
