"""End-to-end tests of ``DistributedExecutor``: identity, faults, resume.

The acceptance contract of the distributed runtime:

* a 64-cell sweep through 4 workers is bit-identical (rows and digests) to
  :class:`SerialExecutor`, in submission order;
* a worker SIGKILLed mid-sweep costs a retry, not the sweep;
* a journal-resumed campaign re-executes exactly the incomplete cells;
* a cell whose retry budget is exhausted by worker deaths surfaces as
  :class:`CellExecutionError` carrying the failing configuration.

Run functions live at module level; workers are forked from the test
process, so they stay picklable by reference.
"""

from __future__ import annotations

import functools
import os
import signal
import time

import numpy as np
import pytest

from repro.distributed import DistributedExecutor
from repro.experiments.grid import CellFunction, expand_grid
from repro.experiments.harness import CellExecutionError, run_experiment
from repro.scenarios.composer import rows_digest

GRID_4x4 = {"a": [1, 2, 3, 4], "b": [10, 20, 30, 40]}  # x4 reps = 64 cells

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="mini-cluster tests fork local workers",
)


def fast_executor(**kwargs):
    """A mini-cluster tuned for tests: tight heartbeats, finite stall guard."""

    defaults = dict(
        workers=4, heartbeat_interval=0.1, heartbeat_timeout=1.5, stall_timeout=30.0
    )
    defaults.update(kwargs)
    return DistributedExecutor(**defaults)


def seeded_metrics(seed, a, b):
    rng = np.random.default_rng(seed * 100_003 + a * 1009 + b)
    return {"value": float(rng.normal()), "score": float(rng.random()) * a + b}


def slow_cell(seed, slot):
    time.sleep(0.05)
    return {"slot": slot, "seed_used": seed}


def logging_cell(seed, x, log_path=""):
    # One line per actual execution; O_APPEND keeps concurrent writers safe.
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{seed},{x}\n")
    return {"y": float(x * seed)}


def worker_killing_cell(seed, n):
    if n == 3:
        os._exit(17)  # die like a crashed/preempted worker, mid-cell
    return {"n_squared": n * n}


class TestBitIdentity:
    def test_64_cells_4_workers_identical_to_serial(self):
        serial = run_experiment("identity", seeded_metrics, GRID_4x4,
                                repetitions=4, base_seed=42, executor="serial")
        distributed = run_experiment("identity", seeded_metrics, GRID_4x4,
                                     repetitions=4, base_seed=42,
                                     executor=fast_executor())
        assert len(serial) == 64
        assert distributed.rows == serial.rows  # same values, same order
        assert rows_digest(distributed.rows) == rows_digest(serial.rows)
        assert distributed.executor == "distributed"

    def test_empty_sweep_runs_without_binding_anything(self):
        result = run_experiment("empty", seeded_metrics, {"a": [], "b": [1]},
                                repetitions=2, executor=fast_executor())
        assert result.rows == []


class TestWorkerLoss:
    def test_sigkilled_worker_mid_sweep_is_retried(self):
        grid = {"slot": list(range(16))}  # x4 reps = 64 cells, ~50ms each
        serial = run_experiment("kill", slow_cell, grid,
                                repetitions=4, executor="serial")
        executor = fast_executor()
        cells = expand_grid(grid, repetitions=4, base_seed=1234)
        stream = executor.map(CellFunction(slow_cell), cells)
        outcomes = []
        stats = None
        for outcome in stream:
            outcomes.append(outcome)
            if len(outcomes) == 8:
                # Every worker is busy mid-cell at this point: killing one
                # strands its in-flight cell, which must be requeued.
                stats = executor.scheduler.stats
                os.kill(executor.processes[0].pid, signal.SIGKILL)
        assert len(outcomes) == 64
        rows = [dict(outcome.metrics) for outcome in outcomes]
        expected = [{"slot": row["slot"], "seed_used": row["seed_used"]}
                    for row in serial.rows]
        assert rows == expected
        # The SIGKILLed worker's in-flight cell went back to the queue ...
        assert stats.retries >= 1
        # ... and the babysitter replaced the dead worker, so the sweep
        # finished at full strength (no worker-lost failures).
        assert stats.worker_lost_failures == 0
        assert executor.scheduler is None  # torn down once the stream ends

    def test_retry_budget_exhaustion_surfaces_failing_config(self):
        executor = fast_executor(workers=2, max_retries=2)
        with pytest.raises(CellExecutionError) as excinfo:
            run_experiment("poison", worker_killing_cell, {"n": [1, 2, 3, 4]},
                           repetitions=1, base_seed=77, executor=executor)
        error = excinfo.value
        assert error.params == {"n": 3}
        assert error.seed == 77
        assert error.error_type == "WorkerLostError"
        assert "retry budget" in str(error)


class TestJournalResume:
    def test_killed_campaign_resumes_re_running_only_incomplete_cells(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        log = tmp_path / "executions.log"
        log.touch()
        run = functools.partial(logging_cell, log_path=str(log))
        grid = {"x": list(range(16))}  # x4 reps = 64 cells

        # First campaign dies after 30 completed cells (simulated by mapping
        # only the first 30 cells of the very same expansion the harness
        # would produce -- journal keys ignore the cell index, so they match).
        cells = expand_grid(grid, repetitions=4, base_seed=1234)
        first = fast_executor(workers=2, journal=str(journal))
        completed = list(first.map(CellFunction(run), cells[:30]))
        assert len(completed) == 30
        assert len(log.read_text().splitlines()) == 30
        assert len(journal.read_text().splitlines()) == 30

        # Restart: exactly the 34 incomplete cells run, nothing cached re-runs.
        second = fast_executor(workers=2, journal=str(journal))
        resumed = run_experiment("resume", run, grid, repetitions=4,
                                 base_seed=1234, executor=second)
        assert resumed.cache_hits == 30
        executions = log.read_text().splitlines()
        assert len(executions) == 30 + 34
        serial = run_experiment("resume", run, grid, repetitions=4,
                                base_seed=1234, executor="serial")
        assert resumed.rows == serial.rows

    def test_changed_run_function_invalidates_the_journal(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        log = tmp_path / "executions.log"
        log.touch()
        run = functools.partial(logging_cell, log_path=str(log))
        grid = {"x": [1, 2, 3]}
        run_experiment("vers", run, grid, repetitions=1,
                       executor=fast_executor(workers=2, journal=str(journal)))
        # Same journal, different run function: nothing replays.
        other = run_experiment("vers", seeded_metrics, {"a": [1], "b": [2]},
                               repetitions=1,
                               executor=fast_executor(workers=2, journal=str(journal)))
        assert other.cache_hits == 0


class TestScenarioDigests:
    @pytest.mark.parametrize("backend", ["tcp", "inproc"])
    def test_registered_scenario_smoke_digest_matches_serial(self, backend):
        from repro.scenarios import get, run_scenario

        spec = get("fig2.bicriteria")
        serial = run_scenario(spec, smoke=True, executor="serial")
        if backend == "tcp":
            executor = fast_executor(workers=2)
        else:
            executor = DistributedExecutor("inproc://", workers=4, stall_timeout=30.0)
        # Stealing and speculation are the executor's defaults -- the digest
        # must not depend on which attempt of a cell wins.
        assert executor.steal and executor.speculate
        distributed = run_scenario(spec, smoke=True, executor=executor)
        assert rows_digest(distributed.rows) == rows_digest(serial.rows)
