"""Tests of the parallel sweep engine: executors, determinism, cache, errors.

The run functions live at module level so they are picklable by the
process-pool executor.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.executors import (
    JOBS_ENV_VAR,
    ExecutorSpecError,
    ProcessPoolExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.experiments.grid import Cell, cell_key, expand_grid
from repro.experiments.harness import (
    CellExecutionError,
    run_experiment,
    run_fingerprint,
)

GRID_4x4 = {"a": [1, 2, 3, 4], "b": [10, 20, 30, 40]}  # x4 reps = 64 cells


def seeded_metrics(seed, a, b):
    """Deterministic floating-point metrics (bit-identical across runs)."""

    rng = np.random.default_rng(seed * 100_003 + a * 1009 + b)
    return {"value": float(rng.normal()), "score": float(rng.random()) * a + b}


def failing_on_three(seed, n):
    if n == 3:
        raise ValueError(f"bad cell n={n}")
    return {"n_squared": n * n}


def sleeping_cell(seed, slot):
    """A cell dominated by waiting (I/O-like): overlaps even on one core."""

    time.sleep(0.02)
    return {"slot": slot, "seed_used": seed}


CALL_LOG = []


def counting_cell(seed, x):
    CALL_LOG.append((seed, x))
    return {"double": 2 * x}


class TestGridExpansion:
    def test_order_params_and_seeds(self):
        cells = expand_grid({"b": [5, 1], "a": ["x"]}, repetitions=2, base_seed=100)
        assert [cell.index for cell in cells] == [0, 1, 2, 3]
        # Sorted key order, values in given order, repetitions innermost.
        assert cells[0].params == (("a", "x"), ("b", 5))
        assert cells[2].params == (("a", "x"), ("b", 1))
        assert [cell.seed for cell in cells] == [100, 101, 100, 101]

    def test_empty_grid_is_one_combo(self):
        cells = expand_grid({}, repetitions=3, base_seed=7)
        assert len(cells) == 3
        assert all(cell.params == () for cell in cells)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            expand_grid({}, repetitions=0)

    def test_cell_key_distinguishes_cells_and_versions(self):
        cell_a, cell_b = expand_grid({"n": [1, 2]}, repetitions=1)
        assert cell_key("e", cell_a) != cell_key("e", cell_b)
        assert cell_key("e", cell_a) != cell_key("other", cell_a)
        assert cell_key("e", cell_a, "v1") != cell_key("e", cell_a, "v2")
        assert cell_key("e", cell_a) == cell_key("e", Cell(0, 0, 1234, (("n", 1),)))


class TestExecutorSelection:
    def test_resolve_specs(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor(1), SerialExecutor)
        pool = resolve_executor(6)
        assert isinstance(pool, ProcessPoolExecutor) and pool.jobs == 6
        assert isinstance(resolve_executor("process"), ProcessPoolExecutor)
        existing = SerialExecutor()
        assert resolve_executor(existing) is existing
        with pytest.raises(ValueError):
            resolve_executor("carrier-pigeon")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert isinstance(resolve_executor(None), SerialExecutor)
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        pool = resolve_executor(None)
        assert isinstance(pool, ProcessPoolExecutor) and pool.jobs == 3
        monkeypatch.setenv(JOBS_ENV_VAR, "1")
        assert isinstance(resolve_executor(None), SerialExecutor)

    def test_malformed_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "ten")
        with pytest.raises(ExecutorSpecError) as excinfo:
            resolve_executor(None)
        message = str(excinfo.value)
        # The error must say where the bad value came from and what is
        # accepted, not surface as a bare int() conversion failure.
        assert f"{JOBS_ENV_VAR}=ten" in message
        assert "tcp://HOST:PORT" in message and "'serial'" in message

    def test_negative_job_counts_are_rejected(self, monkeypatch):
        with pytest.raises(ExecutorSpecError):
            resolve_executor(-2)
        monkeypatch.setenv(JOBS_ENV_VAR, "-3")
        with pytest.raises(ExecutorSpecError) as excinfo:
            resolve_executor(None)
        assert f"{JOBS_ENV_VAR}=-3" in str(excinfo.value)

    def test_tcp_spec_resolves_to_distributed_executor(self):
        from repro.distributed import DistributedExecutor

        executor = resolve_executor("tcp://127.0.0.1:8765")
        assert isinstance(executor, DistributedExecutor)
        assert executor.address == "tcp://127.0.0.1:8765"
        assert executor.workers == 0  # external workers connect themselves
        local = resolve_executor("distributed", jobs=3)
        assert isinstance(local, DistributedExecutor) and local.workers == 3

    def test_malformed_tcp_spec_is_friendly(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "tcp://nohost")
        with pytest.raises(ExecutorSpecError) as excinfo:
            resolve_executor(None)
        message = str(excinfo.value)
        assert f"{JOBS_ENV_VAR}=tcp://nohost" in message
        with pytest.raises(ExecutorSpecError):
            resolve_executor("udp://127.0.0.1:1")
        # ExecutorSpecError stays a ValueError for existing callers.
        assert issubclass(ExecutorSpecError, ValueError)


class TestParallelIdentity:
    def test_pool_rows_identical_to_serial_64_cells(self):
        serial = run_experiment("identity", seeded_metrics, GRID_4x4,
                                repetitions=4, base_seed=42, executor="serial")
        pooled = run_experiment("identity", seeded_metrics, GRID_4x4,
                                repetitions=4, base_seed=42,
                                executor=ProcessPoolExecutor(4))
        assert len(serial) == 64
        # Same rows, same values (bit-identical floats), same order.
        assert pooled.rows == serial.rows
        assert pooled.executor == "process"
        assert serial.executor == "serial"

    def test_chunked_dispatch_preserves_order(self):
        serial = run_experiment("chunks", seeded_metrics, GRID_4x4,
                                repetitions=2, executor="serial")
        chunked = run_experiment("chunks", seeded_metrics, GRID_4x4, repetitions=2,
                                 executor=ProcessPoolExecutor(2, chunk_size=5))
        assert chunked.rows == serial.rows

    def test_env_var_end_to_end(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        pooled = run_experiment("env", seeded_metrics, {"a": [1, 2], "b": [3]},
                                repetitions=2)
        monkeypatch.setenv(JOBS_ENV_VAR, "1")
        serial = run_experiment("env", seeded_metrics, {"a": [1, 2], "b": [3]},
                                repetitions=2)
        assert pooled.executor == "process"
        assert pooled.rows == serial.rows

    def test_parallel_sweep_is_faster_on_overlappable_cells(self):
        """64 wait-bound cells: the pool overlaps them, serial cannot.

        Uses sleep-dominated cells so the speedup shows regardless of the
        number of physical cores (on >= 2 cores CPU-bound cells scale the
        same way).
        """

        grid = {"slot": list(range(16))}  # x4 reps = 64 cells, ~20ms each
        serial = run_experiment("speed", sleeping_cell, grid,
                                repetitions=4, executor="serial")
        pooled = run_experiment("speed", sleeping_cell, grid,
                                repetitions=4, executor=ProcessPoolExecutor(8))
        assert pooled.rows == serial.rows
        assert len(serial) == 64
        # Serial: >= 64 * 20ms = 1.28s.  Pool of 8: ~8 batches + startup.
        assert pooled.elapsed_seconds < serial.elapsed_seconds * 0.7

    def test_progress_and_timing_capture(self):
        # progress=/on_row= are deprecated shims around listener=; they
        # must still deliver the exact legacy callbacks while they warn.
        messages = []
        streamed = []
        with pytest.warns(DeprecationWarning, match="progress= and on_row="):
            result = run_experiment("progress", seeded_metrics,
                                    {"a": [1], "b": [2, 3]},
                                    repetitions=2, progress=messages.append,
                                    on_row=streamed.append)
        assert len(messages) == 4
        assert streamed == result.rows
        assert len(result.cell_seconds) == 4
        assert all(elapsed >= 0.0 for elapsed in result.cell_seconds)
        # Summaries were folded while the rows streamed (no second pass).
        streamed_summary = result.summary()
        assert streamed_summary["value"].count == 4
        assert streamed_summary["value"] == result.aggregate()["value"]


class TestErrorCapture:
    def test_worker_exception_surfaces_with_failing_config(self):
        with pytest.raises(CellExecutionError) as excinfo:
            run_experiment("boom", failing_on_three, {"n": [1, 2, 3, 4]},
                           repetitions=1, base_seed=77,
                           executor=ProcessPoolExecutor(2))
        error = excinfo.value
        assert error.params == {"n": 3}
        assert error.seed == 77
        assert error.error_type == "ValueError"
        assert "bad cell n=3" in str(error)
        assert "worker traceback" in str(error)

    def test_serial_exception_surfaces_identically(self):
        with pytest.raises(CellExecutionError) as excinfo:
            run_experiment("boom", failing_on_three, {"n": [3]},
                           repetitions=1, executor="serial")
        assert excinfo.value.params == {"n": 3}

    def test_cell_execution_error_pickle_round_trip(self):
        """Regression: the two-argument constructor used to break unpickling.

        The default exception reduction re-calls ``cls(*args)`` with the
        formatted message, which does not match ``__init__(experiment,
        outcome)`` -- so a :class:`CellExecutionError` crossing a process or
        socket boundary (nested harness in a pool worker, distributed
        failure reporting) blew up with a ``TypeError`` instead of
        arriving intact.
        """

        import pickle

        with pytest.raises(CellExecutionError) as excinfo:
            run_experiment("boom", failing_on_three, {"n": [3]},
                           repetitions=1, base_seed=9, executor="serial")
        error = excinfo.value
        restored = pickle.loads(pickle.dumps(error))
        assert isinstance(restored, CellExecutionError)
        assert restored.experiment == "boom"
        assert restored.params == {"n": 3}
        assert restored.seed == 9
        assert restored.error_type == "ValueError"
        assert restored.worker_traceback == error.worker_traceback
        assert str(restored) == str(error)

    def test_cell_execution_error_json_payload_round_trip(self):
        import json

        with pytest.raises(CellExecutionError) as excinfo:
            run_experiment("boom", failing_on_three, {"n": [3]},
                           repetitions=1, executor="serial")
        error = excinfo.value
        payload = json.loads(json.dumps(error.to_payload()))
        restored = CellExecutionError.from_payload(payload)
        assert restored.params == {"n": 3}
        assert restored.error_type == "ValueError"
        assert "bad cell n=3" in restored.worker_traceback

    def test_capture_errors_records_and_continues(self):
        result = run_experiment("soft", failing_on_three, {"n": [1, 2, 3, 4]},
                                repetitions=1, capture_errors=True)
        assert len(result.rows) == 3
        assert result.column("n_squared") == [1, 4, 16]
        assert len(result.errors) == 1
        failed = result.errors[0]
        assert failed.cell.params_dict == {"n": 3}
        assert failed.error_type == "ValueError"
        assert "ValueError" in failed.error


class TestResultCache:
    def test_rerun_hits_cache_and_skips_execution(self, tmp_path):
        CALL_LOG.clear()
        cache = ResultCache(tmp_path)
        first = run_experiment("cached", counting_cell, {"x": [1, 2, 3]},
                               repetitions=2, cache=cache, executor="serial")
        assert len(CALL_LOG) == 6
        assert cache.stats.stores == 6
        assert first.cache_hits == 0

        second = run_experiment("cached", counting_cell, {"x": [1, 2, 3]},
                                repetitions=2, cache=cache, executor="serial")
        assert len(CALL_LOG) == 6  # nothing re-executed
        assert second.cache_hits == 6
        assert second.rows == first.rows

    def test_partial_cache_recomputes_only_missing_cells(self, tmp_path):
        CALL_LOG.clear()
        cache = ResultCache(tmp_path)
        run_experiment("partial", counting_cell, {"x": [1, 2]},
                       repetitions=1, cache=cache)
        assert len(CALL_LOG) == 2
        grown = run_experiment("partial", counting_cell, {"x": [1, 2, 3]},
                               repetitions=1, cache=cache)
        assert len(CALL_LOG) == 3  # only x=3 ran
        assert grown.cache_hits == 2
        assert grown.column("double") == [2, 4, 6]

    def test_different_function_does_not_reuse_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment("vers", counting_cell, {"x": [1]}, repetitions=1, cache=cache)
        other = run_experiment("vers", seeded_metrics, {"a": [1], "b": [1]},
                               repetitions=1, cache=cache)
        assert other.cache_hits == 0
        assert run_fingerprint(counting_cell) != run_fingerprint(seeded_metrics)

    def test_unserialisable_metrics_are_recomputed_not_corrupted(self, tmp_path):
        cache = ResultCache(tmp_path)

        result = run_experiment("rich", _rich_object_cell, {"x": [1]},
                                repetitions=1, cache=cache)
        assert cache.stats.skipped == 1
        again = run_experiment("rich", _rich_object_cell, {"x": [1]},
                               repetitions=1, cache=cache)
        assert again.cache_hits == 0
        assert isinstance(again.rows[0]["payload"], set)
        assert result.rows[0]["payload"] == again.rows[0]["payload"]

    def test_clear_empties_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment("clear", counting_cell, {"x": [5]}, repetitions=1, cache=cache)
        assert cache.clear() == 1
        rerun = run_experiment("clear", counting_cell, {"x": [5]},
                               repetitions=1, cache=cache)
        assert rerun.cache_hits == 0


def _rich_object_cell(seed, x):
    return {"payload": {("tuple", x)}}  # a set: not JSON-serialisable
