#!/usr/bin/env python3
"""Reproduce Figure 2 of the paper from the command line.

Runs the bi-criteria simulation on a 100-machine cluster for the two workload
families ("Non Parallel" and "Parallel"), prints the two ratio curves as text
tables and ASCII plots, and writes the raw points to ``figure2_points.csv``
for external plotting.

Run with:  python examples/figure2_reproduction.py [--quick]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.figure2 import Figure2Config, figure2_curves, run_figure2
from repro.experiments.reporting import ascii_plot, ascii_table, to_csv


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for a fast demo)")
    parser.add_argument("--output", default="figure2_points.csv",
                        help="CSV file for the raw simulation points")
    args = parser.parse_args(argv)

    if args.quick:
        config = Figure2Config(task_counts=(50, 200, 600), repetitions=1)
    else:
        config = Figure2Config(task_counts=(50, 100, 200, 400, 600, 800, 1000),
                               repetitions=3)

    print(f"Simulating {len(config.task_counts)} task counts x "
          f"{len(config.families)} families x {config.repetitions} seeds "
          f"on a {config.machine_count}-machine cluster...")
    points = run_figure2(config)
    curves = figure2_curves(points)

    for criterion, label in (("wici", "sum w_i C_i ratio (Figure 2, top)"),
                             ("cmax", "Cmax ratio (Figure 2, bottom)")):
        rows = [
            {
                "n_tasks": n,
                "non_parallel": curves[criterion]["non_parallel"][n],
                "parallel": curves[criterion]["parallel"][n],
            }
            for n in config.task_counts
        ]
        print()
        print(ascii_table(rows, title=label))
        print(ascii_plot(
            {"parallel": curves[criterion]["parallel"],
             "non parallel": curves[criterion]["non_parallel"]},
            title=label, x_label="number of tasks",
        ))

    output = Path(args.output)
    output.write_text(to_csv([p.as_dict() for p in points]))
    print(f"Raw points written to {output} ({len(points)} rows).")


if __name__ == "__main__":
    main()
