"""The telemetry bus: publishing, history, fan-out, snapshots."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    SCHEMA_VERSION,
    TOPIC_SWEEP,
    TelemetryBus,
    get_bus,
    payload,
    set_bus,
    trace_tap,
)


class TestPayload:
    def test_payload_is_versioned_and_kinded(self):
        body = payload("thing-happened", value=3)
        assert body == {
            "schema_version": SCHEMA_VERSION,
            "kind": "thing-happened",
            "value": 3,
        }


class TestPublishing:
    def test_per_topic_sequence_numbers_are_independent(self):
        bus = TelemetryBus()
        first = bus.emit("a", "x")
        second = bus.emit("a", "x")
        other = bus.emit("b", "x")
        assert (first.seq, second.seq, other.seq) == (1, 2, 1)
        assert bus.published == 3
        assert bus.topics() == {"a": 2, "b": 1}

    def test_ring_history_is_bounded_and_since_filters(self):
        bus = TelemetryBus(history=4)
        for index in range(10):
            bus.emit("t", "tick", index=index)
        events = bus.events("t")
        assert [event.seq for event in events] == [7, 8, 9, 10]
        assert [event.seq for event in bus.events("t", since=8)] == [9, 10]
        assert [event.seq for event in bus.events("t", limit=2)] == [9, 10]
        assert bus.events("unknown") == []

    def test_event_as_dict_round_trips_payload(self):
        bus = TelemetryBus()
        event = bus.emit("t", "tick", n=1)
        data = event.as_dict()
        assert data["topic"] == "t"
        assert data["seq"] == 1
        assert data["payload"]["kind"] == "tick"
        assert data["payload"]["schema_version"] == SCHEMA_VERSION


class TestSubscriptions:
    def test_subscription_receives_only_its_topics(self):
        bus = TelemetryBus()
        with bus.subscribe(["a"]) as sub:
            bus.emit("a", "x")
            bus.emit("b", "x")
            events = sub.poll()
        assert [event.topic for event in events] == ["a"]

    def test_slow_subscriber_drops_oldest_and_counts(self):
        bus = TelemetryBus()
        sub = bus.subscribe(buffer=3)
        for index in range(5):
            bus.emit("t", "tick", index=index)
        assert sub.dropped == 2
        assert [event.seq for event in sub.poll()] == [3, 4, 5]
        sub.close()
        bus.emit("t", "tick")
        assert sub.poll() == []  # closed: no longer offered events

    def test_publishing_is_thread_safe(self):
        bus = TelemetryBus()

        def hammer() -> None:
            for _ in range(200):
                bus.emit("t", "tick")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert bus.topics()["t"] == 800
        assert bus.published == 800


class TestOverflow:
    """Ring wraparound and subscriber back-pressure under a saturating publisher."""

    def test_ring_wraparound_keeps_seq_contiguous(self):
        bus = TelemetryBus(history=8)
        for index in range(1000):
            bus.emit("t", "tick", index=index)
        seqs = [event.seq for event in bus.events("t")]
        assert seqs == list(range(993, 1001))  # newest 8, no gaps, no repeats
        assert bus.topics()["t"] == 1000

    def test_saturating_publisher_drop_counter_is_exact(self):
        bus = TelemetryBus()
        sub = bus.subscribe(["t"], buffer=4)
        for index in range(20):
            bus.emit("t", "tick", index=index)
        assert sub.dropped == 16
        kept = sub.poll()
        assert [event.seq for event in kept] == [17, 18, 19, 20]  # newest survive
        assert sub.dropped == 16  # draining does not disturb the counter
        bus.emit("t", "tick", index=20)
        assert sub.dropped == 16 and len(sub.poll()) == 1

    def test_concurrent_saturation_conserves_events(self):
        bus = TelemetryBus(history=16)
        sub = bus.subscribe(["t"], buffer=32)
        received = []
        stop = threading.Event()

        def drain() -> None:
            while not stop.is_set():
                received.extend(sub.poll())
            received.extend(sub.poll())

        drainer = threading.Thread(target=drain)
        drainer.start()
        threads = [
            threading.Thread(
                target=lambda: [bus.emit("t", "tick") for _ in range(250)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        drainer.join()
        # Every published event was either delivered or counted as dropped.
        assert len(received) + sub.dropped == 1000
        seqs = [event.seq for event in received]
        assert seqs == sorted(seqs)  # delivery preserves publish order


class TestGlobalCursor:
    def test_gseq_is_monotonic_across_topics(self):
        bus = TelemetryBus()
        events = [bus.emit("a", "x"), bus.emit("b", "x"), bus.emit("a", "x")]
        assert [event.gseq for event in events] == [1, 2, 3]
        assert events[0].as_dict()["gseq"] == 1

    def test_events_since_walks_all_topics_in_publish_order(self):
        bus = TelemetryBus()
        bus.emit("a", "x")
        bus.emit("b", "x")
        bus.emit("a", "x")
        first = bus.events_since(0)
        assert [(event.topic, event.gseq) for event in first] == [
            ("a", 1), ("b", 2), ("a", 3),
        ]
        assert bus.events_since(first[-1].gseq) == []
        bus.emit("c", "x")
        tail = bus.events_since(first[-1].gseq)
        assert [event.topic for event in tail] == ["c"]

    def test_events_since_limit_keeps_cursor_contiguous(self):
        bus = TelemetryBus()
        for _ in range(6):
            bus.emit("t", "tick")
        page = bus.events_since(0, limit=4)
        assert [event.gseq for event in page] == [1, 2, 3, 4]  # oldest first
        rest = bus.events_since(page[-1].gseq)
        assert [event.gseq for event in rest] == [5, 6]  # nothing skipped

    def test_topic_prefix_filters(self):
        bus = TelemetryBus()
        bus.emit("scheduler", "x")
        bus.emit("worker.w1.spans", "x")
        bus.emit("worker.w2.spans", "x")
        bus.emit("sweep", "x")
        topics = [
            event.topic
            for event in bus.events_since(0, topics=["scheduler", "worker.*"])
        ]
        assert topics == ["scheduler", "worker.w1.spans", "worker.w2.spans"]

    def test_has_subscribers_reflects_lifecycle(self):
        bus = TelemetryBus()
        assert not bus.has_subscribers()
        sub = bus.subscribe()
        assert bus.has_subscribers()
        sub.close()
        assert not bus.has_subscribers()


class TestSnapshot:
    def test_snapshot_merges_sources_and_survives_dying_ones(self):
        bus = TelemetryBus()
        bus.add_snapshot_source("good", lambda: {"value": 1})

        def dying():
            raise RuntimeError("gone")

        bus.add_snapshot_source("bad", dying)
        snap = bus.snapshot()
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["sources"]["good"] == {"value": 1}
        assert "RuntimeError" in snap["sources"]["bad"]["error"]
        bus.remove_snapshot_source("good")
        assert "good" not in bus.snapshot()["sources"]

    def test_sweep_listener_side_builds_progress_table(self):
        bus = TelemetryBus()

        class Outcome:
            cached = False
            elapsed_seconds = 0.01

        class Cell:
            index = 0
            seed = 7

            def describe(self) -> str:
                return "seed=7"

        bus.on_sweep_start("exp", 2)
        bus.on_row("exp", Cell(), {"v": 1}, Outcome())
        state = bus.snapshot()["sweeps"]["exp"]
        assert state["total"] == 2
        assert state["done"] == 1
        assert state["cells_per_second"] > 0
        assert state["finished"] is None
        bus.on_sweep_end("exp", None)
        assert bus.snapshot()["sweeps"]["exp"]["finished"] is not None
        kinds = [event.payload["kind"] for event in bus.events(TOPIC_SWEEP)]
        assert kinds == ["sweep-start", "cell-row", "sweep-end"]


class TestDefaultBus:
    def test_set_bus_swaps_and_returns_previous(self):
        replacement = TelemetryBus()
        previous = set_bus(replacement)
        try:
            assert get_bus() is replacement
        finally:
            assert set_bus(previous) is replacement
        assert get_bus() is previous

    def test_set_bus_rejects_none(self):
        with pytest.raises(ValueError):
            set_bus(None)


class TestTraceTap:
    def test_tap_publishes_trace_events_with_label(self):
        from repro.simulation.tracing import Trace

        bus = TelemetryBus()
        trace = Trace(tap=trace_tap(bus, label="run-1"))
        trace.record(1.0, "start", "job-a", cluster="c0", processors=(0, 1))
        events = bus.events("trace")
        assert len(events) == 1
        body = events[0].payload
        assert body["kind"] == "trace-event"
        assert body["label"] == "run-1"
        assert body["event"] == "start"
        assert body["processors"] == 2  # count, not the index tuple
