"""Moldable makespan scheduling: the MRT dual-approximation algorithm.

Section 4.1 of the paper recalls "the best known algorithm" for the off-line
scheduling of ``n`` independent moldable jobs on ``m`` identical processors
(Mounié, Rapine, Trystram), with performance ratio ``3/2 + eps``:

* the job allocations are chosen "with great care in order to fit them into a
  particular packing scheme that is inspired from the shape of the optimal
  one": two shelves of respective heights ``lambda`` and ``lambda / 2``;
* ``lambda`` is a *guess* of the optimal makespan refined by a binary search
  (the dual-approximation scheme of Hochbaum and Shmoys);
* for a given guess, the constraints used are exactly the ones listed in the
  paper: every job must fit under ``lambda`` (``p_j(nbproc(j)) <= lambda``),
  the total work must fit in the area (``sum W_j <= lambda * m``), and jobs
  longer than ``lambda/2`` cannot share a processor, so fewer than ``m``
  processors are used by such jobs.

Implementation note (also recorded in DESIGN.md): the original algorithm
proves the 3/2 bound through a fairly intricate transformation of the
knapsack solution into a two-shelf schedule.  This reproduction keeps the
structure -- canonical allocations ``gamma(j, lambda)`` and
``gamma(j, lambda/2)``, a knapsack choosing which jobs go to the small shelf
so as to minimise the total work under the big-shelf capacity ``m``, and the
area feasibility test -- and then *builds* the schedule with an LPT list
scheduling of the resulting rigid jobs, accepting the guess only when the
constructed makespan is at most ``3/2 * lambda``.  The binary search
therefore returns a schedule that satisfies the same a-posteriori guarantee,
and the ``RATIO-MRT`` benchmark verifies the 3/2 + eps ratio empirically
against the lower bound.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Schedule
from repro.core.bounds import makespan_lower_bound
from repro.core.job import Job, MoldableJob, RigidJob, validate_jobs
from repro.core.policies.base import (
    MoldableAllocator,
    OfflineScheduler,
    SchedulerError,
    list_schedule_rigid,
    sort_jobs,
)


def _as_moldable(job: Job, machine_count: int) -> MoldableJob:
    """View any PT job as a moldable job (a rigid job has a single allocation)."""

    if isinstance(job, MoldableJob):
        return job
    if isinstance(job, RigidJob):
        if job.nbproc > machine_count:
            raise SchedulerError(
                f"rigid job {job.name!r} needs {job.nbproc} processors, "
                f"platform has {machine_count}"
            )
        # Degenerate profile: only the rigid allocation is admissible (entries
        # below min_procs are placeholders that canonical_allocation never
        # returns because min_procs == nbproc).
        if job.nbproc == 1:
            profile = [job.duration]
        else:
            profile = [job.duration * job.nbproc / k for k in range(1, job.nbproc)]
            profile.append(job.duration)
        return MoldableJob(
            name=job.name,
            release_date=job.release_date,
            weight=job.weight,
            due_date=job.due_date,
            owner=job.owner,
            runtimes=profile,
            min_procs=job.nbproc,
            enforce_monotony=False,
        )
    raise SchedulerError(f"MRT cannot schedule job of type {type(job)!r}")


class GreedyMoldableScheduler(OfflineScheduler):
    """Baseline: fix allocations with a simple strategy, then LPT list scheduling.

    This is the "first trivial idea" style baseline the MRT algorithm is
    compared against in the ``RATIO-MRT`` benchmark.
    """

    def __init__(self, allocator: Optional[MoldableAllocator] = None, order: str = "lpt") -> None:
        self.allocator = allocator or MoldableAllocator("bounded_efficiency")
        self.order = order
        self.name = f"greedy-moldable-{self.allocator.strategy}"

    def schedule(
        self, jobs: Sequence[Job], machine_count: int, *, start_time: float = 0.0
    ) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        ordered = sort_jobs(jobs, self.order)
        allocations = self.allocator.freeze(ordered, machine_count)
        return list_schedule_rigid(allocations, machine_count, start_time=start_time)


class MRTScheduler(OfflineScheduler):
    """Dual-approximation two-shelf algorithm for moldable makespan (3/2 + eps)."""

    def __init__(self, epsilon: float = 0.05, *, max_iterations: int = 60) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.epsilon = epsilon
        self.max_iterations = max_iterations
        self.name = "mrt-dual-approx"

    # -- public API -----------------------------------------------------------
    def schedule(
        self, jobs: Sequence[Job], machine_count: int, *, start_time: float = 0.0
    ) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        moldable = [_as_moldable(job, machine_count) for job in jobs]
        original = {job.name: job for job in jobs}

        lower = makespan_lower_bound(jobs, machine_count)
        fallback = GreedyMoldableScheduler().schedule(jobs, machine_count)
        upper = max(fallback.makespan(), lower)
        best = fallback

        if lower <= 0:
            return fallback if start_time == 0 else fallback.shift(start_time)

        iterations = 0
        while upper - lower > self.epsilon * lower and iterations < self.max_iterations:
            iterations += 1
            guess = 0.5 * (lower + upper)
            placement = self._try_guess(moldable, machine_count, guess)
            if placement is None:
                lower = guess
                continue
            schedule = list_schedule_rigid(
                [(original[j.name], k) for j, k in placement],
                machine_count,
            )
            # Keep the best schedule seen so far even when the guess is
            # rejected: a failed guess can still yield a good packing, and the
            # final answer is the minimum over every constructed schedule.
            if schedule.makespan() < best.makespan():
                best = schedule
            if schedule.makespan() <= 1.5 * guess + 1e-9:
                upper = guess
            else:
                lower = guess
        if start_time != 0.0:
            best = best.shift(start_time)
        return best

    # -- internals ------------------------------------------------------------
    def _try_guess(
        self, jobs: Sequence[MoldableJob], machine_count: int, guess: float
    ) -> Optional[List[Tuple[MoldableJob, int]]]:
        """Choose allocations for makespan guess ``guess``.

        Returns ``None`` when the guess is provably too small (some job cannot
        meet it, or the minimal total work exceeds the area ``guess * m``);
        otherwise returns the chosen (job, nbproc) pairs.
        """

        m = machine_count
        big_alloc: List[int] = []     # gamma(j, guess)
        big_work: List[float] = []
        small_alloc: List[Optional[int]] = []  # gamma(j, guess / 2)
        small_work: List[float] = []
        for job in jobs:
            a1 = job.canonical_allocation(guess)
            if a1 is None or a1 > m:
                return None
            big_alloc.append(a1)
            big_work.append(a1 * job.runtime(a1))
            a2 = job.canonical_allocation(guess / 2)
            if a2 is not None and a2 <= m:
                small_alloc.append(a2)
                small_work.append(a2 * job.runtime(a2))
            else:
                small_alloc.append(None)
                small_work.append(math.inf)

        n = len(jobs)
        INF = math.inf
        # dp[c] = minimal total work of the jobs processed so far, using at
        # most c processors for the jobs placed in the big shelf (the shelf
        # of height `guess`).  Jobs placed in the small shelf consume no
        # big-shelf capacity in the knapsack; their processor usage is
        # checked globally through the area constraint, as in the paper.
        dp = np.zeros(m + 1)
        choice = np.zeros((n, m + 1), dtype=bool)  # True = big shelf
        for idx in range(n):
            a1, w1 = big_alloc[idx], big_work[idx]
            w2 = small_work[idx]
            stay_small = dp + w2 if small_alloc[idx] is not None else np.full(m + 1, INF)
            go_big = np.full(m + 1, INF)
            if a1 <= m:
                go_big[a1:] = dp[:-a1] + w1 if a1 > 0 else dp + w1
            new_dp = np.minimum(stay_small, go_big)
            choice[idx] = go_big < stay_small
            if not np.isfinite(new_dp[m]):
                return None
            dp = new_dp

        if dp[m] > guess * m + 1e-9:
            return None

        # Backtrack the knapsack choices to recover the allocations.
        placement: List[Tuple[MoldableJob, int]] = []
        capacity = m
        for idx in range(n - 1, -1, -1):
            if choice[idx, capacity]:
                placement.append((jobs[idx], big_alloc[idx]))
                capacity -= big_alloc[idx]
            else:
                alloc = small_alloc[idx]
                assert alloc is not None
                placement.append((jobs[idx], alloc))
        placement.reverse()
        return placement
