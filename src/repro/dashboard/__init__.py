"""Live observability dashboard over the telemetry bus.

::

    python -m repro.dashboard                     # serve on :8484
    python -m repro.dashboard serve --port 0      # free port, URL on stderr
    python -m repro.dashboard gantt cluster.policy-panel --out gantt.svg
    python -m repro.dashboard smoke               # CI self-check

The server (:class:`~repro.dashboard.app.DashboardServer`) is a read-only
consumer of the process-wide :class:`~repro.telemetry.bus.TelemetryBus`:
it can watch any campaign running in the same process (``--dashboard
PORT`` on the scenarios and distributed CLIs) without perturbing it.  The
Gantt explorer (:mod:`repro.dashboard.gantt`) renders the schedule of any
simulator-backed scenario as SVG, on demand.
"""

from repro.dashboard.app import DashboardServer
from repro.dashboard.gantt import (
    render_gantt_svg,
    render_scenario_gantt,
    schedule_from_trace,
)

__all__ = [
    "DashboardServer",
    "render_gantt_svg",
    "render_scenario_gantt",
    "schedule_from_trace",
]
