"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a pure-data description of one simulation
scenario: which workload to generate, how jobs arrive, which platform they
run on, which policy schedules them, which metrics to report, and which
parameter axes to sweep.  Specs are plain dataclasses of JSON/TOML-friendly
values, so they

* round-trip through ``dict`` and TOML (:meth:`ScenarioSpec.to_dict` /
  :meth:`from_dict`, :meth:`to_toml` / :meth:`from_toml`),
* pickle cleanly into the worker processes of the parallel sweep harness,
* and can be diffed, stored and generated as data.

The *meaning* of a spec -- how a ``workload`` kind becomes jobs, a
``platform`` kind becomes a cluster or grid, a ``policy`` kind becomes a
scheduler -- lives in :mod:`repro.scenarios.composer`; this module only
checks structure (names, sections, sweep axes), so a spec can be authored
and validated without importing any simulation code.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

#: Simulation models a spec can target (the composer owns one runner each).
MODELS = (
    "offline",            # schedule-constructing policies on a static job set
    "cluster-online",     # event-driven single-cluster simulation
    "grid-centralized",   # best-effort central server on a light grid
    "grid-decentralized", # load-threshold work exchange between clusters
    "figure2",            # the paper's Figure-2 bi-criteria experiment
    "dlt",                # divisible-load multi-round distribution
)

#: Sections a sweep axis / smoke override may address (``section.param``).
SECTIONS = ("workload", "arrival", "platform", "policy")

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


class SpecError(ValueError):
    """A scenario spec is structurally invalid."""


@dataclass
class ComponentSpec:
    """One building block of a scenario: a ``kind`` plus free-form params.

    The admissible kinds and their parameters are defined by the composer
    (:data:`repro.scenarios.composer.WORKLOAD_KINDS` and friends); the spec
    layer treats them as opaque data.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        out.update(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, section: str) -> "ComponentSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"section {section!r} must be a mapping, got {type(data).__name__}")
        if "kind" not in data:
            raise SpecError(f"section {section!r} is missing the 'kind' key")
        params = {k: _plain(v) for k, v in data.items() if k != "kind"}
        kind = data["kind"]
        if not isinstance(kind, str) or not kind:
            raise SpecError(f"section {section!r}: 'kind' must be a non-empty string")
        return cls(kind=kind, params=params)


def _plain(value: Any) -> Any:
    """Normalise tuples to lists so dict round-trips compare equal."""

    if isinstance(value, (tuple, list)):
        return [_plain(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _plain(v) for k, v in value.items()}
    return value


@dataclass
class ScenarioSpec:
    """Complete declarative description of one scenario family."""

    name: str
    model: str
    workload: ComponentSpec
    platform: ComponentSpec
    policy: ComponentSpec = field(default_factory=lambda: ComponentSpec("default"))
    arrival: ComponentSpec = field(default_factory=lambda: ComponentSpec("inherit"))
    description: str = ""
    tags: Tuple[str, ...] = ()
    #: Metric columns kept in the result rows (empty = keep everything the
    #: runner produces).
    metrics: Tuple[str, ...] = ()
    #: Seeded repetitions per sweep cell (harness semantics: seeds are
    #: ``seed + repetition``).
    repetitions: int = 3
    seed: int = 1234
    #: Sweep axes: ``"section.param"`` (or ``"section.kind"``) -> values.
    sweep: Dict[str, List[Any]] = field(default_factory=dict)
    #: Smoke-tier overrides: may replace ``repetitions``, the whole
    #: ``sweep``, or individual ``section.param`` values -- used by CI to
    #: run every scenario at tiny sizes.
    smoke: Dict[str, Any] = field(default_factory=dict)

    # -- validation ---------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        if not _NAME_RE.match(self.name or ""):
            raise SpecError(
                f"invalid scenario name {self.name!r}: use lowercase letters, "
                "digits, '.', '_' and '-', starting with a letter or digit"
            )
        if self.model not in MODELS:
            raise SpecError(f"unknown model {self.model!r}; known: {MODELS}")
        if self.repetitions < 1:
            raise SpecError("repetitions must be >= 1")
        if not isinstance(self.seed, int):
            raise SpecError("seed must be an integer")
        for axis, values in self.sweep.items():
            _check_override_path(axis, context="sweep axis")
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise SpecError(f"sweep axis {axis!r} must map to a non-empty list")
        for key in self.smoke:
            if key in ("repetitions", "sweep"):
                continue
            _check_override_path(key, context="smoke override")
        if "sweep" in self.smoke:
            smoke_sweep = self.smoke["sweep"]
            if not isinstance(smoke_sweep, Mapping):
                raise SpecError("smoke 'sweep' must be a mapping of axis -> values")
            for axis, values in smoke_sweep.items():
                _check_override_path(axis, context="smoke sweep axis")
                if not isinstance(values, (list, tuple)) or len(values) == 0:
                    raise SpecError(f"smoke sweep axis {axis!r} must map to a non-empty list")
        for metric in self.metrics:
            if not isinstance(metric, str) or not metric:
                raise SpecError("metrics must be non-empty strings")
        return self

    # -- derivation ---------------------------------------------------------

    def evolve(self, **changes: Any) -> "ScenarioSpec":
        """A copy with top-level fields replaced (sweep/seed/repetitions...)."""

        spec = dataclasses.replace(_copy_spec(self), **changes)
        return spec.validate()

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A copy with ``section.param`` (and ``section.kind``) values set.

        This is how sweep-axis values and smoke overrides are folded into a
        concrete spec before a cell runs.
        """

        spec = _copy_spec(self)
        for path, value in overrides.items():
            section, param = _check_override_path(path, context="override")
            component: ComponentSpec = getattr(spec, section)
            if param == "kind":
                component.kind = value
            else:
                component.params[param] = _plain(value)
        return spec

    def smoke_spec(self) -> "ScenarioSpec":
        """The smoke-tier variant: tiny sizes, few repetitions, short sweep."""

        overrides = dict(self.smoke)
        repetitions = overrides.pop("repetitions", 1)
        sweep = overrides.pop("sweep", None)
        spec = self.with_overrides(overrides)
        spec.repetitions = int(repetitions)
        if sweep is not None:
            spec.sweep = {axis: list(values) for axis, values in sweep.items()}
        return spec.validate()

    # -- dict round trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "model": self.model,
            "description": self.description,
            "tags": list(self.tags),
            "metrics": list(self.metrics),
            "repetitions": self.repetitions,
            "seed": self.seed,
            "workload": self.workload.to_dict(),
            "arrival": self.arrival.to_dict(),
            "platform": self.platform.to_dict(),
            "policy": self.policy.to_dict(),
            "sweep": {axis: _plain(list(values)) for axis, values in self.sweep.items()},
            "smoke": _plain(dict(self.smoke)),
        }
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, Mapping):
            raise SpecError(f"spec must be a mapping, got {type(data).__name__}")
        known = {
            "name", "model", "description", "tags", "metrics", "repetitions",
            "seed", "workload", "arrival", "platform", "policy", "sweep", "smoke",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown spec keys: {unknown}; known: {sorted(known)}")
        for required in ("name", "model", "workload", "platform"):
            if required not in data:
                raise SpecError(f"spec is missing required key {required!r}")
        sweep_raw = data.get("sweep", {})
        if not isinstance(sweep_raw, Mapping):
            raise SpecError("'sweep' must be a mapping of axis -> values")
        smoke_raw = data.get("smoke", {})
        if not isinstance(smoke_raw, Mapping):
            raise SpecError("'smoke' must be a mapping")
        spec = cls(
            name=data["name"],
            model=data["model"],
            description=data.get("description", ""),
            tags=tuple(data.get("tags", ())),
            metrics=tuple(data.get("metrics", ())),
            repetitions=int(data.get("repetitions", 3)),
            seed=int(data.get("seed", 1234)),
            workload=ComponentSpec.from_dict(data["workload"], section="workload"),
            arrival=ComponentSpec.from_dict(data.get("arrival", {"kind": "inherit"}), section="arrival"),
            platform=ComponentSpec.from_dict(data["platform"], section="platform"),
            policy=ComponentSpec.from_dict(data.get("policy", {"kind": "default"}), section="policy"),
            sweep={axis: _plain(list(values)) for axis, values in sweep_raw.items()},
            smoke=_plain(dict(smoke_raw)),
        )
        return spec.validate()

    # -- TOML round trip ----------------------------------------------------

    def to_toml(self) -> str:
        """Serialise to TOML (parse back with :meth:`from_toml`)."""

        data = self.to_dict()
        lines: List[str] = []
        for key in ("name", "model", "description"):
            lines.append(f"{_toml_key(key)} = {_toml_value(data[key])}")
        for key in ("tags", "metrics", "repetitions", "seed"):
            lines.append(f"{_toml_key(key)} = {_toml_value(data[key])}")
        for section in ("workload", "arrival", "platform", "policy"):
            lines.append("")
            lines.append(f"[{section}]")
            lines.extend(_toml_table(data[section]))
        if data["sweep"]:
            lines.append("")
            lines.append("[sweep]")
            lines.extend(_toml_table(data["sweep"]))
        if data["smoke"]:
            lines.append("")
            lines.append("[smoke]")
            lines.extend(_toml_table(data["smoke"]))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise SpecError(f"invalid scenario TOML: {error}") from None
        return cls.from_dict(data)


def _copy_spec(spec: ScenarioSpec) -> ScenarioSpec:
    return ScenarioSpec.from_dict(spec.to_dict())


def _check_override_path(path: str, *, context: str) -> Tuple[str, str]:
    if not isinstance(path, str) or "." not in path:
        raise SpecError(
            f"{context} {path!r} must be of the form 'section.param' "
            f"with section in {SECTIONS}"
        )
    section, param = path.split(".", 1)
    if section not in SECTIONS:
        raise SpecError(
            f"{context} {path!r} addresses unknown section {section!r}; "
            f"known sections: {SECTIONS}"
        )
    if not param:
        raise SpecError(f"{context} {path!r} has an empty parameter name")
    return section, param


# ---------------------------------------------------------------------------
# Minimal TOML emitter (tomllib only parses; keep output within the subset
# tomllib understands: strings, ints, floats, bools, arrays, inline tables).
# ---------------------------------------------------------------------------

_BARE_KEY_RE = re.compile(r"^[A-Za-z0-9_-]+$")


def _toml_key(key: str) -> str:
    if _BARE_KEY_RE.match(key):
        return key
    escaped = key.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SpecError("non-finite floats cannot be serialised to TOML")
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    if isinstance(value, Mapping):
        inner = ", ".join(f"{_toml_key(k)} = {_toml_value(v)}" for k, v in value.items())
        return "{" + inner + "}"
    raise SpecError(f"cannot serialise {type(value).__name__} value {value!r} to TOML")


def _toml_table(table: Mapping[str, Any]) -> List[str]:
    return [f"{_toml_key(key)} = {_toml_value(value)}" for key, value in table.items()]
