"""The discrete-event simulation kernel.

The :class:`Simulator` owns the clock and the event queue.  Two programming
styles are supported:

* **callbacks** -- ``sim.schedule(delay, fn)`` runs ``fn()`` after ``delay``
  time units; this is the style used by the cluster and grid simulators;
* **processes** -- generator functions that ``yield Timeout(d)`` (sleep) or
  ``yield event`` objects created by :meth:`Simulator.event` (wait until the
  event is succeeded).  Processes are convenient for writing scenario scripts
  in tests and examples.

The kernel is deterministic: simultaneous events run in scheduling order
(see :mod:`repro.simulation.events`), and there is no hidden source of
randomness -- all randomness lives in the workload generators, which take
explicit seeds.

Fast path: the run loop works directly on the queue's tuple heap (no
per-event ``peek``/``pop`` method round-trips) and dispatches every event
tied at the current timestamp in one batch, re-checking only the stop /
max-events guards between callbacks.  Event labels are allocated lazily:
unless ``trace_labels`` is enabled on the simulator, scheduling call sites
skip building the per-event description strings entirely.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.simulation.events import Event, EventQueue
from repro.simulation.kernel import load_ckernel, resolve_kernel


@dataclass
class Timeout:
    """Yielded by a process to sleep for ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("Timeout delay must be >= 0")


class SimEvent:
    """A one-shot condition processes can wait on.

    ``succeed(value)`` wakes every waiting process and stores ``value`` which
    becomes the result of the ``yield``.
    """

    __slots__ = ("_sim", "label", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator", label: str = "") -> None:
        self._sim = sim
        self.label = label
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise RuntimeError(f"event {self.label!r} already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        # Zero-delay resumes keep the kernel deterministic: each waiter gets
        # its own event at the current time, so the queue's (time, priority,
        # seq) order resumes waiters FIFO (registration order), interleaved
        # after anything already scheduled at this timestamp -- and when
        # several SimEvents trigger at the same instant, their waiters wake
        # in succeed() order.  The value is bound at schedule time so a later
        # mutation of the event cannot change what an earlier waiter sees.
        for process in waiters:
            self._sim.schedule(0.0, lambda p=process, v=value: p._resume(v))

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self._sim.schedule(0.0, lambda p=process, v=self.value: p._resume(v))
        else:
            self._waiters.append(process)


class Process:
    """A generator-based simulation process."""

    __slots__ = ("_sim", "_generator", "name", "finished", "result", "completion_event")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.name = name or repr(generator)
        self.finished = False
        self.result: Any = None
        self.completion_event = SimEvent(sim, label=f"{self.name}.done")

    def _start(self) -> None:
        sim = self._sim
        label = f"start {self.name}" if sim.trace_labels else ""
        sim.schedule(0.0, lambda: self._resume(None), label=label)

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion_event.succeed(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            sim = self._sim
            label = f"wake {self.name}" if sim.trace_labels else ""
            sim.schedule(yielded.delay, lambda: self._resume(None), label=label)
        elif isinstance(yielded, SimEvent):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.completion_event._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded an unsupported object: {yielded!r}"
            )


class Simulator:
    """Discrete-event simulation kernel: clock + event queue + process runner.

    ``trace_labels`` opts into per-event description strings (useful when
    debugging a simulation); it is off by default because building one
    f-string per scheduled event measurably slows the hot path down.

    ``kernel`` selects the implementation tier (``pure`` / ``compiled`` /
    ``auto``; see :mod:`repro.simulation.kernel`); it defaults to the
    ``REPRO_KERNEL`` environment variable.  The tiers are observably
    identical -- every digest-gated result is bit-for-bit the same -- so
    switching is purely a performance decision.
    """

    __slots__ = (
        "_queue",
        "_now",
        "_running",
        "_stop_requested",
        "processed_events",
        "trace_labels",
    )

    #: Implementation tier of this instance (overridden by the compiled tier).
    kernel_tier = "pure"

    def __new__(cls, *args: Any, **kwargs: Any) -> "Simulator":
        # Constructing the base class transparently yields the compiled
        # subclass when the resolved tier asks for it; explicit subclasses
        # (and direct _CompiledSimulator construction) are left alone.
        if cls is Simulator and resolve_kernel(kwargs.get("kernel")) == "compiled":
            return object.__new__(_CompiledSimulator)
        return object.__new__(cls)

    def __init__(self, *, trace_labels: bool = False, kernel: Optional[str] = None) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stop_requested = False
        self.processed_events = 0
        self.trace_labels = trace_labels

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""

        return self._now

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Run ``callback`` after ``delay`` time units (relative to now)."""

        if delay < 0:
            raise ValueError("cannot schedule in the past (negative delay)")
        return self._queue.push(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Run ``callback`` at absolute simulation time ``time`` (>= now)."""

        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule at {time}, current time is already {self._now}"
            )
        return self._queue.push(max(time, self._now), callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    # -- processes -----------------------------------------------------------
    def process(self, generator: Generator, name: str = "") -> Process:
        """Register and start a generator-based process."""

        process = Process(self, generator, name)
        process._start()
        return process

    def event(self, label: str = "") -> SimEvent:
        """Create a waitable one-shot event."""

        return SimEvent(self, label)

    # -- run loop ------------------------------------------------------------
    def run(self, until: Optional[float] = None, *, max_events: Optional[int] = None) -> float:
        """Process events until the queue is empty, ``until`` or ``max_events``.

        Returns the simulation time reached.
        """

        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        queue = self._queue
        heap = queue._heap
        pop = heapq.heappop
        limit = None if until is None else until + 1e-12
        # ``remaining`` mirrors the historical semantics: at least one event
        # is dispatched before a (possibly zero) max_events budget is checked.
        remaining = max_events
        try:
            while heap:
                head = heap[0]
                if head[3].cancelled:
                    pop(heap)
                    continue
                now = head[0]
                if limit is not None and now > limit:
                    self._now = until  # type: ignore[assignment]
                    return self._now
                self._now = now
                # Batched same-time dispatch: every live event tied at ``now``
                # is inside the horizon checked above, so the inner loop pays
                # only the pop + cancelled test per event.  Events scheduled
                # by a callback at the current time join the batch in (time,
                # priority, seq) order; cancellations made mid-batch are
                # honoured because each event is re-checked when popped.
                while heap and heap[0][0] == now:
                    event = pop(heap)[3]
                    if event.cancelled:
                        continue
                    queue._live -= 1
                    event.callback()  # type: ignore[misc]
                    self.processed_events += 1
                    if self._stop_requested:
                        return self._now
                    if remaining is not None:
                        remaining -= 1
                        if remaining <= 0:
                            return self._now
            # Queue fully drained: advance the clock to the horizon.
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""

        self._stop_requested = True

    def pending_events(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.3f}, pending={len(self._queue)})"


class _CompiledSimulator(Simulator):
    """Simulator backed by the ``repro._ckernel`` C core.

    The core object implements the whole scheduling surface (push/schedule/
    schedule_at/cancel/run/stop plus the EventQueue protocol), so the hot
    methods are bound straight onto the instance: call sites pay one C call
    with no python-level indirection.  Instance attributes shadow the pure
    methods (plain functions are non-data descriptors), while ``now`` /
    ``processed_events`` are re-exposed as properties reading the core.
    """

    # Subclass intentionally has no __slots__: the instance __dict__ holds
    # the core-bound methods that shadow the pure-python hot paths.

    kernel_tier = "compiled"

    def __init__(self, *, trace_labels: bool = False, kernel: Optional[str] = None) -> None:
        ckernel = load_ckernel()
        if ckernel is None:  # pragma: no cover - guarded by resolve_kernel()
            raise RuntimeError(
                "compiled kernel requested but repro._ckernel is not built "
                "(run `make kernel`)"
            )
        core = ckernel.KernelCore()
        self._queue = core
        self.trace_labels = trace_labels
        self.schedule = core.schedule
        self.schedule_at = core.schedule_at
        self.cancel = core.cancel
        self.run = core.run
        self.stop = core.stop

    @property
    def now(self) -> float:
        return self._queue.now

    @property
    def processed_events(self) -> int:
        return self._queue.processed

    @processed_events.setter
    def processed_events(self, value: int) -> None:
        self._queue.processed = value

    def pending_events(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self._queue.now:.3f}, pending={len(self._queue)})"
