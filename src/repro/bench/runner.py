"""Benchmark runner: warmup/repeat/median timing + ``BENCH_*.json`` reports.

The runner executes each registered :class:`~repro.bench.cases.BenchCase`
``warmup`` times untimed, then ``repeats`` times under ``time.perf_counter``,
and reports the **median** wall time together with derived rates
(events/sec, cells/sec) and a SHA-256 digest of the case's result payload.
Reports are written as ``BENCH_<timestamp>.json`` so that successive runs
never overwrite each other and the comparator (:mod:`repro.bench.compare`)
can diff any two of them.
"""

from __future__ import annotations

import hashlib
import json
import platform
import statistics
import subprocess
import sys
import time
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.cases import BenchCase, CaseOutcome

SCHEMA = "repro.bench/1"


class PerturbedTimingError(RuntimeError):
    """Raised when timed bench repeats would run with observation overhead on."""

#: Default directory for benchmark reports (relative to the repo root /
#: current working directory).
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"


@dataclass
class CaseResult:
    """Timing + determinism summary of one bench case at one tier."""

    case: str
    tier: str
    wall_seconds: float
    samples: Sequence[float]
    repeats: int
    warmup: int
    events: Optional[int]
    events_per_sec: Optional[float]
    cells: Optional[int]
    cells_per_sec: Optional[float]
    digest: str
    phases: Dict[str, Dict[str, float]] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "tier": self.tier,
            "wall_seconds": self.wall_seconds,
            "samples": list(self.samples),
            "repeats": self.repeats,
            "warmup": self.warmup,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "cells": self.cells,
            "cells_per_sec": self.cells_per_sec,
            "digest": self.digest,
            "phases": self.phases,
        }


def payload_digest(payload: Any) -> str:
    """Stable SHA-256 of a JSON-serialisable result payload."""

    encoded = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(encoded).hexdigest()


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except OSError:
        return "unknown"


def assert_unperturbed_timing() -> None:
    """Fail fast if the timed repeats would not measure the bare hot path.

    Two observation switches add per-event/per-span overhead to every run:
    a live subscriber on the process-wide telemetry bus (a dashboard, a
    flight recorder) and the ``REPRO_SPANS`` environment flag, which forces
    span capture on even with no subscriber.  A committed BENCH report taken
    with either one active understates the engine by tens of percent and
    poisons every later comparison against it, so the runner refuses to time
    under them instead of silently recording the slow numbers.
    """

    import os

    from repro.telemetry.bus import get_bus
    from repro.telemetry.spans import SPANS_ENV_VAR

    if os.environ.get(SPANS_ENV_VAR, "").strip():
        raise PerturbedTimingError(
            f"refusing to time benchmarks with {SPANS_ENV_VAR}="
            f"{os.environ[SPANS_ENV_VAR]!r} set: forced span capture perturbs "
            f"the timed repeats. Unset {SPANS_ENV_VAR} and re-run "
            "(the runner collects its own span profile on the untimed "
            "reference run)."
        )
    bus = get_bus()
    if bus.has_subscribers():
        raise PerturbedTimingError(
            "refusing to time benchmarks while the telemetry bus has live "
            "subscribers (a dashboard, recorder or listener is attached): "
            "span capture switches on and perturbs the timed repeats. "
            "Close the subscribers (or run the bench in a fresh process) "
            "and re-run."
        )


def time_case(
    case: BenchCase,
    tier: str,
    *,
    repeats: int = 3,
    warmup: int = 1,
) -> CaseResult:
    """Run one case: ``warmup`` untimed runs, ``repeats`` timed, median wall."""

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    # The determinism reference run doubles as the profiling run: a private
    # bus with a span subscriber turns the harness/worker spans on for this
    # run only.  Warmups and timed repeats see the restored bus (and, with
    # no subscriber, zero-cost NULL spans), so timing stays unperturbed.
    outcome, phases = _profiled_reference_run(case, tier)
    digest = payload_digest(outcome.payload)
    # The reference run above observed itself through a *private* bus that
    # is already restored; from here on, timing must see the bare hot path.
    assert_unperturbed_timing()
    for _ in range(warmup):
        case.run_tier(tier)
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        timed = case.run_tier(tier)
        samples.append(time.perf_counter() - start)
        if payload_digest(timed.payload) != digest:
            raise RuntimeError(
                f"bench case {case.name!r} is non-deterministic: "
                "result payload changed between repeats"
            )
    wall = statistics.median(samples)
    return CaseResult(
        case=case.name,
        tier=tier,
        wall_seconds=wall,
        samples=samples,
        repeats=repeats,
        warmup=warmup,
        events=outcome.events,
        events_per_sec=(outcome.events / wall) if outcome.events and wall > 0 else None,
        cells=outcome.cells,
        cells_per_sec=(outcome.cells / wall) if outcome.cells and wall > 0 else None,
        digest=digest,
        phases=phases,
    )


def _profiled_reference_run(
    case: BenchCase, tier: str
) -> "tuple[CaseOutcome, Dict[str, Dict[str, float]]]":
    """Run the case once with spans enabled; return (outcome, phase summary)."""

    from repro.telemetry.bus import TelemetryBus, set_bus
    from repro.telemetry.events import TOPIC_SCHEDULER_SPANS, TOPIC_SPANS

    bus = TelemetryBus(history=256, subscriber_buffer=65536)
    subscription = bus.subscribe([TOPIC_SPANS, TOPIC_SCHEDULER_SPANS])
    previous = set_bus(bus)
    try:
        outcome: CaseOutcome = case.run_tier(tier)
    finally:
        set_bus(previous)
    phases: Dict[str, Dict[str, float]] = {}
    for event in subscription.poll():
        body = event.payload
        name = body.get("name")
        seconds = body.get("seconds")
        if body.get("kind") != "span" or not name:
            continue
        if not isinstance(seconds, (int, float)):
            continue
        bucket = phases.setdefault(
            str(name), {"count": 0, "total_seconds": 0.0}
        )
        bucket["count"] += 1
        bucket["total_seconds"] += float(seconds)
    subscription.close()
    for bucket in phases.values():
        bucket["mean_seconds"] = bucket["total_seconds"] / bucket["count"]
    return outcome, phases


def run_benchmarks(
    cases: Sequence[BenchCase],
    *,
    tier: str = "quick",
    repeats: int = 3,
    warmup: int = 1,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run ``cases`` and return the full (JSON-serialisable) report."""

    from repro.simulation.kernel import requested_kernel, resolve_kernel

    results = []
    for case in cases:
        if progress is not None:
            progress(f"running {case.name} [{tier}] ...")
        result = time_case(case, tier, repeats=repeats, warmup=warmup)
        if progress is not None:
            rate = (
                f"{result.events_per_sec:,.0f} events/s"
                if result.events_per_sec
                else f"{result.cells_per_sec:,.1f} cells/s"
                if result.cells_per_sec
                else "n/a"
            )
            progress(
                f"  {case.name}: median {result.wall_seconds * 1e3:.1f} ms "
                f"({rate}, digest {result.digest[:12]})"
            )
        results.append(result.to_dict())
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": git_revision(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "tier": tier,
        # The simulation-kernel tier the timed runs actually executed on
        # (requested via $REPRO_KERNEL, resolved against extension
        # availability): pure-vs-compiled numbers must never be compared
        # as if they were the same engine.
        "kernel": resolve_kernel(),
        "kernel_requested": requested_kernel(),
        "results": results,
    }


def write_report(report: Dict[str, Any], output: Optional[Path] = None) -> Path:
    """Write the report to ``BENCH_<timestamp>.json`` (or an explicit path)."""

    if output is None:
        output = DEFAULT_RESULTS_DIR / f"BENCH_{time.strftime('%Y%m%dT%H%M%S')}.json"
    elif output.suffix.lower() != ".json" or output.is_dir():
        # Anything that is not an explicit .json file path is a directory to
        # drop a timestamped report into (it may not exist yet, e.g. the CI
        # scratch dir).
        output = output / f"BENCH_{time.strftime('%Y%m%dT%H%M%S')}.json"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return output


def load_report(path: Path) -> Dict[str, Any]:
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown bench report schema {report.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    return report
