"""Light grid model (Figure 1 of the paper).

A *light grid* is "a collection of few clusters in a same geographical area".
Jobs are submitted through specific front-end nodes ("the submissions of jobs
is done by some specific nodes by the way of several priority files"), each
cluster is administrated separately, and the clusters are connected by
wide-area links that are slower than the cluster interconnects.

The :class:`LightGrid` object is a static description; the dynamics (local
schedulers, the centralized best-effort server, the decentralized exchange
protocol) live in :mod:`repro.simulation.grid_sim` and
:mod:`repro.simulation.decentralized`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.platform.cluster import Cluster


@dataclass(frozen=True)
class GridLink:
    """A wide-area link between two clusters of the grid."""

    src: str
    dst: str
    bandwidth: float = 10.0
    latency: float = 0.01

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.src == self.dst:
            raise ValueError("a grid link must connect two distinct clusters")

    def transfer_time(self, volume: float) -> float:
        if volume < 0:
            raise ValueError("volume must be >= 0")
        if volume == 0:
            return 0.0
        return self.latency + volume / self.bandwidth


class LightGrid:
    """A few clusters connected by wide-area links, with submission front-ends."""

    def __init__(
        self,
        name: str,
        clusters: Sequence[Cluster],
        links: Sequence[GridLink] = (),
        *,
        default_bandwidth: float = 10.0,
        default_latency: float = 0.05,
    ) -> None:
        if not clusters:
            raise ValueError("a grid needs at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate cluster names in grid")
        self.name = name
        self.clusters: Tuple[Cluster, ...] = tuple(clusters)
        self._by_name: Dict[str, Cluster] = {c.name: c for c in clusters}
        self._links: Dict[Tuple[str, str], GridLink] = {}
        for link in links:
            if link.src not in self._by_name or link.dst not in self._by_name:
                raise ValueError(
                    f"link {link.src!r} -> {link.dst!r} references an unknown cluster"
                )
            self._links[(link.src, link.dst)] = link
            self._links.setdefault(
                (link.dst, link.src),
                GridLink(link.dst, link.src, link.bandwidth, link.latency),
            )
        self.default_bandwidth = default_bandwidth
        self.default_latency = default_latency

    # -- lookups -----------------------------------------------------------
    def cluster(self, name: str) -> Cluster:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no cluster named {name!r} in grid {self.name!r}") from None

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    @property
    def cluster_names(self) -> List[str]:
        return [c.name for c in self.clusters]

    # -- sizes -------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return sum(c.node_count for c in self.clusters)

    @property
    def processor_count(self) -> int:
        return sum(c.processor_count for c in self.clusters)

    @property
    def total_compute_rate(self) -> float:
        return sum(c.total_compute_rate for c in self.clusters)

    def largest_cluster(self) -> Cluster:
        return max(self.clusters, key=lambda c: c.processor_count)

    # -- links ---------------------------------------------------------------
    def link(self, src: str, dst: str) -> GridLink:
        """Link between two clusters; a default link is synthesised if missing."""

        if src == dst:
            raise ValueError("no link from a cluster to itself")
        self.cluster(src)
        self.cluster(dst)
        key = (src, dst)
        if key in self._links:
            return self._links[key]
        return GridLink(src, dst, self.default_bandwidth, self.default_latency)

    def transfer_time(self, src: str, dst: str, volume: float) -> float:
        if src == dst:
            return 0.0
        return self.link(src, dst).transfer_time(volume)

    # -- reports -------------------------------------------------------------
    def describe(self) -> List[Dict[str, object]]:
        return [c.describe() for c in self.clusters]

    def summary(self) -> str:
        lines = [f"Light grid {self.name!r}: {len(self.clusters)} clusters, "
                 f"{self.node_count} nodes, {self.processor_count} processors"]
        for c in self.clusters:
            lines.append(
                f"  - {c.name}: {c.node_count} nodes x {c.machines[0].cores} cores "
                f"({c.interconnect.name}, community={c.community})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"LightGrid({self.name!r}, clusters={len(self.clusters)}, "
            f"processors={self.processor_count})"
        )
