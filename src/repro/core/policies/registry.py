"""Registry: every scheduling policy constructible by name.

One flat namespace covers both the native on-line queue policies and the
schedule-constructing policies (wrapped by
:class:`~repro.core.policies.adapter.PlannedPolicy`), so simulators,
scenario specs and CLIs can all say ``policy="bicriteria"`` and get a
:class:`~repro.core.policies.online.SchedulingPolicy` for the unified
runtime.

    make_policy("backfill")                       # native queue policy
    make_policy("bicriteria")                     # PlannedPolicy(BiCriteriaScheduler())
    make_policy("mixed", strategy="a_priori")     # factory kwargs pass through
    make_policy(existing_policy_instance)         # passed through unchanged

New policies register with :func:`register_policy`; names are unique and
collisions raise, exactly like the scenario registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Union

from repro.core.policies.adapter import PlannedPolicy
from repro.core.policies.base import MoldableAllocator
from repro.core.policies.online import (
    BackfillPolicy,
    FifoPolicy,
    SchedulingPolicy,
    SmallestFirstPolicy,
)

PolicyFactory = Callable[..., SchedulingPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> PolicyFactory:
    """Register ``factory`` under ``name``; raises on collisions."""

    if name in _REGISTRY:
        raise ValueError(f"policy {name!r} is already registered")
    _REGISTRY[name] = factory
    return factory


def policy_names() -> List[str]:
    """Sorted names of every registered policy."""

    return sorted(_REGISTRY)


def make_policy(
    spec: Union[str, SchedulingPolicy],
    *,
    allocator: Optional[MoldableAllocator] = None,
    **params,
) -> SchedulingPolicy:
    """Build a policy from a registered name (instances pass through).

    ``allocator`` overrides the moldable->rigid allocation strategy;
    ``params`` are forwarded to the factory (e.g. ``strategy=`` for the
    mixed scheduler).
    """

    if isinstance(spec, SchedulingPolicy):
        if allocator is not None or params:
            raise ValueError(
                "make_policy: allocator/params overrides cannot be applied to "
                "an already-constructed policy instance; pass a registered "
                "name, or configure the instance directly"
            )
        return spec
    try:
        factory = _REGISTRY[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown scheduling policy {spec!r}; known: {policy_names()}"
        ) from None
    return factory(allocator=allocator, **params)


#: A policy argument: a registered name or a ready policy instance.
PolicySpec = Union[str, SchedulingPolicy]


def resolve_cluster_policies(
    grid,
    policy: Union[PolicySpec, Mapping[str, PolicySpec]],
    allocator: Optional[MoldableAllocator] = None,
    *,
    default: PolicySpec = "fifo",
) -> Dict[str, SchedulingPolicy]:
    """One policy instance per cluster from a shared spec or a per-cluster map.

    ``grid`` is any iterable of clusters exposing ``name`` plus a
    ``cluster_names`` attribute (a :class:`repro.platform.grid.LightGrid`).
    Clusters missing from a partial mapping fall back to ``default`` -- the
    calling simulator passes its own documented default policy.

    A shared *name* builds one instance per cluster, so stateful policies
    (e.g. planned adapters) never leak state across clusters.  An explicit
    :class:`SchedulingPolicy` *instance* is shared verbatim, like the legacy
    simulators did -- callers passing stateful instances own that risk.
    """

    if isinstance(policy, Mapping):
        unknown = [name for name in policy if name not in grid.cluster_names]
        if unknown:
            raise ValueError(f"policies reference unknown clusters: {unknown}")
        return {
            cluster.name: make_policy(policy.get(cluster.name, default),
                                      allocator=allocator)
            for cluster in grid
        }
    return {
        cluster.name: make_policy(policy, allocator=allocator) for cluster in grid
    }


def _planned(scheduler_factory: Callable[..., object]) -> PolicyFactory:
    """A registry factory wrapping a schedule constructor in PlannedPolicy."""

    def factory(*, allocator: Optional[MoldableAllocator] = None, **params) -> SchedulingPolicy:
        return PlannedPolicy(scheduler_factory(**params), allocator)

    return factory


# -- native queue policies ---------------------------------------------------
register_policy("fifo", lambda *, allocator=None, **p: FifoPolicy(allocator, **p))
register_policy("backfill", lambda *, allocator=None, **p: BackfillPolicy(allocator, **p))
register_policy(
    "smallest-first", lambda *, allocator=None, **p: SmallestFirstPolicy(allocator, **p)
)


# -- schedule-constructing policies, adapted -------------------------------
def _register_planned() -> None:
    from repro.core.policies.backfilling import ConservativeBackfilling, EasyBackfilling
    from repro.core.policies.batch_online import BatchOnlineScheduler
    from repro.core.policies.bicriteria import BiCriteriaScheduler
    from repro.core.policies.list_scheduling import ListScheduler
    from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler
    from repro.core.policies.reservations import ReservationAwareScheduler
    from repro.core.policies.rigid_moldable_mix import MixedScheduler
    from repro.core.policies.shelf import ShelfScheduler, SmartShelfScheduler

    register_policy("lpt", _planned(lambda **p: ListScheduler("lpt", **p)))
    register_policy("spt", _planned(lambda **p: ListScheduler("spt", **p)))
    register_policy("wspt", _planned(lambda **p: ListScheduler("wspt", **p)))
    register_policy("list", _planned(lambda order="lpt", **p: ListScheduler(order, **p)))
    register_policy("shelf", _planned(lambda **p: ShelfScheduler(**p)))
    register_policy("smart-shelves", _planned(lambda **p: SmartShelfScheduler(**p)))
    register_policy("mrt", _planned(lambda **p: MRTScheduler(**p)))
    register_policy("greedy-moldable", _planned(lambda **p: GreedyMoldableScheduler(**p)))
    register_policy("batch-online", _planned(lambda **p: BatchOnlineScheduler(**p)))
    register_policy(
        "batch-mrt", _planned(lambda **p: BatchOnlineScheduler(MRTScheduler(), **p))
    )
    register_policy("bicriteria", _planned(lambda **p: BiCriteriaScheduler(**p)))
    register_policy("conservative-bf", _planned(lambda **p: ConservativeBackfilling(**p)))
    register_policy("easy-bf", _planned(lambda **p: EasyBackfilling(**p)))
    register_policy("mixed", _planned(lambda **p: MixedScheduler(**p)))
    register_policy("reservation-aware", _planned(lambda **p: ReservationAwareScheduler(**p)))


_register_planned()
