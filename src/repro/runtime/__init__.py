"""Unified scheduling runtime: one job-lifecycle core under all simulators.

The paper evaluates the same scheduling ideas across three platform shapes
(one cluster, the centralized CIMENT grid, a decentralized exchange of
clusters); this package provides the single event-driven core they all run
on:

* :mod:`repro.runtime.lifecycle` -- :class:`SchedulingRuntime`, the shared
  submit -> queue -> allocate -> run -> complete/preempt state machine over
  :class:`~repro.simulation.resources.ProcessorPool` leases, configured per
  organisation by :class:`RuntimeConfig` and extended by
  :class:`RuntimeHook` objects;
* :mod:`repro.runtime.hooks` -- the grid organisations as hooks
  (best-effort bag filling, load exchange) plus mid-run policy switching;
* :mod:`repro.runtime.record` -- the unified
  :class:`SimulationRecord` / :class:`RunRecord` result model every
  simulator returns;
* :mod:`repro.runtime.golden` -- golden-digest helpers proving behavior
  stays bit-identical across refactors.

Policies implement the single
:class:`~repro.core.policies.online.SchedulingPolicy` protocol and are
constructible by name via :func:`repro.core.policies.registry.make_policy`,
so every registered policy runs on every platform shape.
"""

from repro.runtime.lifecycle import (
    ClusterNode,
    RuntimeConfig,
    RuntimeHook,
    SchedulingRuntime,
)
from repro.runtime.hooks import (
    BestEffortHook,
    GridServer,
    LoadExchangeHook,
    PolicySwitchHook,
)
from repro.runtime.record import (
    MODE_CENTRALIZED,
    MODE_CLUSTER,
    MODE_DECENTRALIZED,
    MODES,
    RunRecord,
    SimulationRecord,
)

__all__ = [
    "SchedulingRuntime",
    "ClusterNode",
    "RuntimeConfig",
    "RuntimeHook",
    "BestEffortHook",
    "GridServer",
    "LoadExchangeHook",
    "PolicySwitchHook",
    "SimulationRecord",
    "RunRecord",
    "MODES",
    "MODE_CLUSTER",
    "MODE_CENTRALIZED",
    "MODE_DECENTRALIZED",
]
