"""Multi-round divisible-load distribution.

A single-round distribution forces each worker to stay idle while all the
data of the *other* workers is shipped before it (one-port master).  "This
distribution can be made in one, several rounds or dynamically" (section
2.1): splitting the load into several rounds overlaps communication with
computation and reduces the idle time at the cost of paying the per-message
latency several times.

The implementation follows the spirit of uniform multi-round schemes (UMR):

* round sizes grow geometrically (``growth`` factor), so early rounds are
  small (workers start computing quickly) and later rounds are large
  (amortising latencies);
* inside a round the load is split between workers proportionally to their
  compute rates;
* the timeline is *simulated exactly* (one-port master, workers compute
  rounds in order), so the reported makespan accounts for every latency and
  for any idle time the chosen parameters leave.

:func:`optimize_round_count` sweeps the number of rounds and returns the best
configuration; the DLT benchmark uses it to show the single-round /
multi-round crossover as latencies grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dlt.platform import DLTPlatform


@dataclass(frozen=True)
class MultiRoundResult:
    """Timeline of a multi-round distribution."""

    rounds: int
    growth: float
    makespan: float
    round_loads: Tuple[float, ...]
    per_worker_load: Dict[str, float]
    idle_time: float

    @property
    def total_load(self) -> float:
        return sum(self.round_loads)


def _round_sizes(total_load: float, rounds: int, growth: float) -> List[float]:
    """Geometric round sizes summing to ``total_load``."""

    if growth <= 0:
        raise ValueError("growth must be > 0")
    weights = [growth ** r for r in range(rounds)]
    scale = total_load / sum(weights)
    return [w * scale for w in weights]


def multi_round_distribution(
    total_load: float,
    platform: DLTPlatform,
    *,
    rounds: int = 4,
    growth: float = 2.0,
) -> MultiRoundResult:
    """Simulate a multi-round distribution and return its exact makespan.

    The master serves workers round after round (one-port model, fastest
    links first inside a round); each worker processes its chunks in the
    order received.
    """

    if total_load <= 0:
        raise ValueError("total_load must be > 0")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    workers = sorted(platform.workers, key=lambda w: (w.comm_time, w.name))
    total_rate = sum(w.compute_rate for w in workers)
    round_loads = _round_sizes(total_load, rounds, growth)

    master_free = 0.0
    worker_ready: Dict[str, float] = {w.name: 0.0 for w in workers}  # when the worker finishes its queued work
    per_worker_load: Dict[str, float] = {w.name: 0.0 for w in workers}
    busy_time: Dict[str, float] = {w.name: 0.0 for w in workers}

    for round_load in round_loads:
        for worker in workers:
            share = round_load * worker.compute_rate / total_rate
            if share <= 0:
                continue
            per_worker_load[worker.name] += share
            # One-port master: the transfer starts when the master is free.
            comm_start = master_free
            comm_end = comm_start + worker.latency + worker.comm_time * share
            master_free = comm_end
            # The worker starts this chunk when it has both received the data
            # and finished its previously queued chunks.
            compute_start = max(comm_end, worker_ready[worker.name])
            compute_end = compute_start + worker.compute_time * share
            worker_ready[worker.name] = compute_end
            busy_time[worker.name] += worker.compute_time * share

    makespan = max(worker_ready.values()) if workers else 0.0
    idle = sum(max(0.0, makespan - busy_time[w.name]) for w in workers)
    return MultiRoundResult(
        rounds=rounds,
        growth=growth,
        makespan=makespan,
        round_loads=tuple(round_loads),
        per_worker_load=per_worker_load,
        idle_time=idle,
    )


def optimize_round_count(
    total_load: float,
    platform: DLTPlatform,
    *,
    max_rounds: int = 16,
    growth: float = 2.0,
) -> MultiRoundResult:
    """Best multi-round configuration over ``rounds in 1..max_rounds``."""

    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    best: Optional[MultiRoundResult] = None
    for rounds in range(1, max_rounds + 1):
        result = multi_round_distribution(total_load, platform, rounds=rounds, growth=growth)
        if best is None or result.makespan < best.makespan - 1e-12:
            best = result
    assert best is not None
    return best
