"""The paper's ratio checks, re-expressed as store validation queries.

:mod:`repro.experiments.ratio_checks` verifies the approximation-ratio
statements of section 4 by generating instances and running the policies;
this module checks the *same bounds* on rows already landed in a campaign
store -- so a production store of millions of cells can be audited with one
SQL pass instead of re-running anything:

* bi-criteria doubling batches: ``cmax_ratio`` and ``wici_ratio`` within
  ``4 * rho = 8`` (section 4.4, rho = 2 for the greedy inner procedure);
* every ratio is measured against a *lower* bound, so it can never drop
  below 1;
* per-cell timings are non-negative (a corrupted ingest would violate it).

Each rule renders to SQL (DuckDB engine) and evaluates in pure python (the
fallback twin); both return the same :class:`RuleResult`, and the tests
cross-check the worst observed values against
:class:`~repro.metrics.aggregate.StreamingAggregator` and the stated bounds
of :mod:`repro.experiments.ratio_checks`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.store.columnar import CampaignStore
from repro.store.queries import _metric_expr, _numeric

#: Stated bound of the bi-criteria scheduler on both criteria: 4 * rho with
#: rho = 2 for the greedy moldable inner procedure (paper section 4.4) --
#: the same constant ratio_checks.check_bicriteria_ratio() reports.
BICRITERIA_RHO = 2.0
BICRITERIA_BOUND = 4 * BICRITERIA_RHO

#: Ratios are measured against lower bounds, hence >= 1 up to float noise.
RATIO_FLOOR = 1.0
TOLERANCE = 1e-9


@dataclass(frozen=True)
class ValidationRule:
    """One bound on one metric column, checkable in SQL or python."""

    name: str
    description: str
    metric: str
    upper: Optional[float] = None
    lower: Optional[float] = None
    #: The metric lives in the record meta columns, not the result row.
    meta: bool = False

    def _violation_sql(self, expr: str) -> str:
        clauses = []
        if self.upper is not None:
            clauses.append(f"{expr} > {self.upper + TOLERANCE!r}")
        if self.lower is not None:
            clauses.append(f"{expr} < {self.lower - TOLERANCE!r}")
        return " OR ".join(clauses) or "FALSE"

    def sql(self) -> str:
        expr = _metric_expr(self.metric)
        return (
            f"SELECT count({expr}) AS checked, "
            f"coalesce(sum(CASE WHEN {self._violation_sql(expr)} THEN 1 ELSE 0 END), 0)"
            " AS violations, "
            f"max({expr}) AS worst_high, min({expr}) AS worst_low "
            f"FROM rows WHERE {expr} IS NOT NULL"
        )

    def _violates(self, value: float) -> bool:
        if self.upper is not None and value > self.upper + TOLERANCE:
            return True
        if self.lower is not None and value < self.lower - TOLERANCE:
            return True
        return False

    def check_py(self, records: List[Dict[str, Any]]) -> "RuleResult":
        values: List[float] = []
        for record in records:
            source = record if self.meta else json.loads(record["row_json"])
            value = _numeric(source.get(self.metric))
            if value is not None:
                values.append(value)
        violations = sum(1 for value in values if self._violates(value))
        return RuleResult(
            rule=self,
            checked=len(values),
            violations=violations,
            worst_high=max(values) if values else None,
            worst_low=min(values) if values else None,
        )

    def result_from_sql(self, result_row: Mapping[str, Any]) -> "RuleResult":
        return RuleResult(
            rule=self,
            checked=int(result_row.get("checked") or 0),
            violations=int(result_row.get("violations") or 0),
            worst_high=result_row.get("worst_high"),
            worst_low=result_row.get("worst_low"),
        )


@dataclass(frozen=True)
class RuleResult:
    rule: ValidationRule
    checked: int
    violations: int
    worst_high: Optional[float]
    worst_low: Optional[float]

    @property
    def ok(self) -> bool:
        return self.violations == 0

    @property
    def skipped(self) -> bool:
        """No stored row carries this metric (vacuously true, reported as such)."""

        return self.checked == 0

    def describe(self) -> str:
        rule = self.rule
        bounds = []
        if rule.lower is not None:
            bounds.append(f">= {rule.lower:g}")
        if rule.upper is not None:
            bounds.append(f"<= {rule.upper:g}")
        bound_text = " and ".join(bounds)
        if self.skipped:
            return f"skip {rule.name}: no rows carry {rule.metric!r}"
        status = "ok  " if self.ok else "FAIL"
        observed = (
            f"observed [{self.worst_low:.6g}, {self.worst_high:.6g}]"
            if self.worst_low is not None
            else "no values"
        )
        return (
            f"{status} {rule.name}: {rule.metric} {bound_text} over "
            f"{self.checked} row(s), {observed}"
            + ("" if self.ok else f", {self.violations} violation(s)")
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "lower": self.rule.lower,
            "upper": self.rule.upper,
            "checked": self.checked,
            "violations": self.violations,
            "worst_high": self.worst_high,
            "worst_low": self.worst_low,
            "ok": self.ok,
            "skipped": self.skipped,
        }


RULES: Tuple[ValidationRule, ...] = (
    ValidationRule(
        name="bicriteria-cmax-within-4rho",
        description="figure-2 makespan ratio stays within the stated 4*rho bound",
        metric="cmax_ratio", upper=BICRITERIA_BOUND, lower=RATIO_FLOOR,
    ),
    ValidationRule(
        name="bicriteria-wici-within-4rho",
        description="figure-2 weighted-completion ratio stays within 4*rho",
        metric="wici_ratio", upper=BICRITERIA_BOUND, lower=RATIO_FLOOR,
    ),
    ValidationRule(
        name="makespan-ratio-floor",
        description="makespan measured against a lower bound cannot beat it",
        metric="makespan_ratio", lower=RATIO_FLOOR,
    ),
    ValidationRule(
        name="weighted-completion-ratio-floor",
        description="weighted completion measured against a lower bound cannot beat it",
        metric="weighted_completion_ratio", lower=RATIO_FLOOR,
    ),
    ValidationRule(
        name="elapsed-nonnegative",
        description="per-cell wall-clock times are non-negative",
        metric="elapsed_seconds", lower=0.0, meta=True,
    ),
)


def validate_store(
    store: CampaignStore, *, engine: str = "auto", rules: Tuple[ValidationRule, ...] = RULES
) -> List[RuleResult]:
    """Evaluate every rule; ``engine`` as in :func:`repro.store.queries.run_query`."""

    from repro.store.analytics import connect, duckdb_available, fetch_dicts

    if engine not in ("auto", "sql", "py"):
        raise ValueError(f"unknown engine {engine!r}; expected auto, sql or py")
    use_sql = engine == "sql" or (engine == "auto" and duckdb_available())
    if use_sql:
        connection = connect(store)
        try:
            # A rule whose metric appears in no partition must *skip*, not
            # error: the unioned view simply has no such column to cast.
            cursor = connection.execute("SELECT * FROM rows LIMIT 0")
            available = {description[0] for description in cursor.description}
            results = []
            for rule in rules:
                if rule.metric not in available:
                    results.append(RuleResult(rule, 0, 0, None, None))
                    continue
                (result_row,) = fetch_dicts(connection, rule.sql())
                results.append(rule.result_from_sql(result_row))
            return results
        finally:
            connection.close()
    records = store.records()
    return [rule.check_py(records) for rule in rules]
