"""Unit tests of the unified scheduling runtime (lifecycle, hooks, record)."""

import pytest

from repro.core.job import MoldableJob, RigidJob
from repro.core.policies import FifoPolicy, SchedulerError
from repro.experiments.reporting import runs_table, simulation_table
from repro.platform.generators import homogeneous_cluster
from repro.platform.grid import GridLink, LightGrid
from repro.runtime import ClusterNode, SchedulingRuntime, SimulationRecord
from repro.runtime.golden import cluster_result_payload, digest_of
from repro.simulation.cluster_sim import ClusterSimulator, compare_policies
from repro.simulation.decentralized import DecentralizedGridSimulator
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs


def blocked_head_jobs():
    """A head-of-queue blocker: FCFS keeps 'small' waiting, backfilling not."""

    return [
        RigidJob(name="running", nbproc=3, duration=10.0, release_date=0.0),
        RigidJob(name="head", nbproc=4, duration=1.0, release_date=1.0),
        RigidJob(name="small", nbproc=1, duration=1.0, release_date=2.0),
    ]


def duo_grid(size=4):
    return LightGrid(
        "duo",
        [homogeneous_cluster("alpha", size, community="a"),
         homogeneous_cluster("beta", size, community="b")],
        [GridLink("alpha", "beta", bandwidth=1000.0, latency=0.01)],
    )


class TestRuntimeCore:
    def test_rejects_empty_and_duplicate_nodes(self):
        with pytest.raises(ValueError):
            SchedulingRuntime([])
        nodes = [
            ClusterNode("x", 2, policy=FifoPolicy()),
            ClusterNode("x", 2, policy=FifoPolicy()),
        ]
        with pytest.raises(ValueError):
            SchedulingRuntime(nodes)

    def test_rejects_unknown_submission_cluster(self):
        runtime = SchedulingRuntime([ClusterNode("x", 2, policy=FifoPolicy())])
        with pytest.raises(ValueError):
            runtime.run({"ghost": []})

    def test_starvation_raises_scheduler_error(self):
        class NeverStart(FifoPolicy):
            name = "never"

            def select(self, queue, free, now, machine_count):
                return []

        node = ClusterNode("x", 2, policy=NeverStart())
        runtime = SchedulingRuntime([node])
        with pytest.raises(SchedulerError):
            runtime.run({"x": [RigidJob(name="a", nbproc=1, duration=1.0)]})


class TestPerClusterPolicies:
    def test_each_cluster_runs_its_own_policy(self):
        grid = duo_grid()
        jobs_a = blocked_head_jobs()
        jobs_b = [
            RigidJob(name=j.name + "2", nbproc=j.nbproc, duration=j.duration,
                     release_date=j.release_date)
            for j in blocked_head_jobs()
        ]
        simulator = DecentralizedGridSimulator(
            grid,
            local_policy={"alpha": "fifo", "beta": "backfill"},
            exchange_enabled=False,
        )
        result = simulator.run({"alpha": jobs_a, "beta": jobs_b})
        assert result.policies == {"alpha": "fifo", "beta": "backfill"}
        # FCFS on alpha: 'small' waits behind the blocked head of queue.
        assert result.schedules["alpha"]["small"].start >= 10.0
        # Backfilling on beta: 'small2' starts immediately on the idle proc.
        assert result.schedules["beta"]["small2"].start == pytest.approx(2.0)

    def test_centralized_grid_accepts_policy_mapping(self):
        grid = duo_grid()
        simulator = CentralizedGridSimulator(
            grid, local_policy={"alpha": "backfill", "beta": "fifo"}
        )
        result = simulator.run({"alpha": blocked_head_jobs()})
        assert result.policies == {"alpha": "backfill", "beta": "fifo"}
        assert result.local_schedules["alpha"]["small"].start == pytest.approx(2.0)

    def test_unknown_cluster_in_policy_mapping_rejected(self):
        with pytest.raises(ValueError):
            CentralizedGridSimulator(duo_grid(), local_policy={"ghost": "fifo"})

    def test_partial_mapping_falls_back_to_the_simulator_default(self):
        # Decentralized default is "backfill"; centralized default is "fifo".
        decentralized = DecentralizedGridSimulator(
            duo_grid(), local_policy={"alpha": "smallest-first"}
        )
        assert decentralized._policies["beta"].name == "backfill"
        centralized = CentralizedGridSimulator(
            duo_grid(), local_policy={"alpha": "smallest-first"}
        )
        assert centralized._policies["beta"].name == "fifo"


class TestPolicySwitch:
    def test_switch_changes_behavior_mid_run(self):
        jobs = blocked_head_jobs()
        fifo = ClusterSimulator(4, policy="fifo").run(jobs)
        switched = ClusterSimulator(
            4, policy="fifo", policy_switches=[(1.5, "backfill")]
        ).run(jobs)
        # Pure FCFS: 'small' waits for the blocked head.
        assert fifo.schedule["small"].start >= 10.0
        # After the switch at t=1.5 the backfilling policy starts it at release.
        assert switched.schedule["small"].start == pytest.approx(2.0)
        assert switched.policy == "backfill"
        assert fifo.policy == "fifo"

    def test_switch_is_traced(self):
        result = ClusterSimulator(
            4, policy="fifo", policy_switches=[(1.5, "backfill")]
        ).run(blocked_head_jobs())
        events = result.trace.events("policy-switch")
        assert len(events) == 1
        assert events[0].time == pytest.approx(1.5)
        assert events[0].job == "backfill"

    def test_switch_keeps_the_custom_allocator(self):
        from repro.core.policies import MoldableAllocator

        simulator = ClusterSimulator(
            8,
            policy="fifo",
            allocator=MoldableAllocator("min_runtime"),
            policy_switches=[(1.0, "backfill")],
        )
        # min_runtime allocates all 3 processors; the default
        # bounded_efficiency strategy stops at 2 (efficiency 0.485 < 0.5).
        jobs = [MoldableJob(name="m", runtimes=[8.0, 6.0, 5.5], release_date=2.0)]
        default_alloc = ClusterSimulator(8, policy="backfill").run(jobs)
        assert default_alloc.schedule["m"].nbproc == 2
        result = simulator.run(jobs)
        assert result.policy == "backfill"
        assert result.schedule["m"].nbproc == 3

    def test_negative_switch_time_rejected(self):
        from repro.runtime.hooks import PolicySwitchHook

        with pytest.raises(ValueError):
            PolicySwitchHook([(-1.0, None, "fifo")])

    def test_unknown_switch_policy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            ClusterSimulator(4, policy_switches=[(5.0, "not-a-policy")])

    def test_switch_accepts_a_policy_instance(self):
        from repro.core.policies import BackfillPolicy

        result = ClusterSimulator(
            4, policy="fifo", policy_switches=[(1.5, BackfillPolicy())]
        ).run(blocked_head_jobs())
        assert result.policy == "backfill"
        assert result.schedule["small"].start == pytest.approx(2.0)

    def test_unknown_switch_cluster_rejected(self):
        from repro.runtime.hooks import PolicySwitchHook

        node = ClusterNode("x", 2, policy=FifoPolicy())
        runtime = SchedulingRuntime(
            [node], hooks=[PolicySwitchHook([(1.0, "ghost", "fifo")])]
        )
        with pytest.raises(ValueError, match="unknown cluster"):
            runtime.run({"x": []})


class TestDeterministicTieBreaking:
    def test_simulation_is_independent_of_input_job_order(self):
        """Duplicate release dates and sizes: submissions are keyed on
        (release_date, name), so any input permutation produces the
        bit-identical schedule, trace and criteria.  (Only the ratio report
        keeps the caller's job order, for float-summation stability.)"""

        jobs = [
            RigidJob(name=f"dup-{i}", nbproc=2, duration=3.0, release_date=1.0)
            for i in range(8)
        ] + [
            MoldableJob(name=f"mold-{i}", runtimes=[6.0, 3.2], release_date=1.0)
            for i in range(4)
        ]
        reference = {}
        for order in (jobs, list(reversed(jobs)), jobs[1::2] + jobs[0::2]):
            for policy in ("fifo", "backfill", "smallest-first"):
                result = ClusterSimulator(4, policy=policy).run(order)
                payload = cluster_result_payload(result)
                del payload["ratios"]  # computed from the caller's job order
                digest = digest_of(payload)
                if policy not in reference:
                    reference[policy] = digest
                assert digest == reference[policy], (
                    f"policy {policy}: input order changed the simulation"
                )

    def test_smallest_first_breaks_size_ties_by_name(self):
        jobs = [
            RigidJob(name=name, nbproc=1, duration=2.0, release_date=0.0)
            for name in ("zeta", "alpha", "mu")
        ]
        result = ClusterSimulator(1, policy="smallest-first").run(jobs)
        starts = sorted(
            (entry.start, entry.job.name) for entry in result.schedule
        )
        assert [name for _, name in starts] == ["alpha", "mu", "zeta"]


class TestSimulationRecord:
    def test_cluster_compat_surface(self):
        jobs = poisson_arrivals(
            generate_moldable_jobs(12, 8, random_state=3), rate=1.0, random_state=3
        )
        result = ClusterSimulator(8, policy="backfill").run(jobs)
        assert isinstance(result, SimulationRecord)
        assert result.mode == "cluster"
        assert result.policy == "backfill"
        assert result.machine_count == 8
        assert result.makespan == pytest.approx(result.criteria.makespan)
        assert result.ratios.makespan_ratio >= 1.0 - 1e-9
        assert len(result.schedule) == 12
        runs = result.runs()
        assert len(runs) == 12
        assert all(r.end == pytest.approx(r.start + r.runtime) for r in runs)
        summary = result.summary()
        assert summary["n_jobs"] == 12
        assert summary["policy"] == "backfill"

    def test_grid_records_share_the_model(self):
        grid = duo_grid()
        centralized = CentralizedGridSimulator(grid).run(
            {"alpha": blocked_head_jobs()}
        )
        decentralized = DecentralizedGridSimulator(grid).run(
            {"alpha": blocked_head_jobs(), "beta": []}
        )
        assert isinstance(centralized, SimulationRecord)
        assert isinstance(decentralized, SimulationRecord)
        assert centralized.mode == "grid-centralized"
        assert decentralized.mode == "grid-decentralized"
        # Legacy surfaces still answer.
        assert set(centralized.local_criteria) == {"alpha", "beta"}
        assert centralized.grid_throughput() == 0.0
        assert sum(c.n_jobs for c in decentralized.criteria.values()) == 3
        assert decentralized.fairness is not None
        # The multi-cluster record refuses the ambiguous single-schedule view.
        with pytest.raises(AttributeError):
            _ = centralized.schedule

    def test_unknown_mode_rejected(self):
        from repro.simulation.tracing import Trace

        with pytest.raises(ValueError):
            SimulationRecord(
                mode="galactic",
                machine_count=1,
                schedules={},
                cluster_criteria={},
                trace=Trace(),
                horizon=0.0,
            )


class TestUnifiedReporting:
    def test_simulation_table_mixes_all_three_organisations(self):
        grid = duo_grid()
        records = {
            "cluster": ClusterSimulator(4, policy="backfill").run(blocked_head_jobs()),
            "centralized": CentralizedGridSimulator(grid).run(
                {"alpha": blocked_head_jobs()}
            ),
            "decentralized": DecentralizedGridSimulator(grid).run(
                {"alpha": blocked_head_jobs(), "beta": []}
            ),
        }
        table = simulation_table(records, title="all organisations")
        assert "cluster" in table and "centralized" in table and "decentralized" in table
        assert "makespan" in table
        assert "migrations" in table  # decentralized column joins the union

    def test_compare_policies_feeds_the_table_directly(self):
        jobs = poisson_arrivals(
            generate_moldable_jobs(10, 8, random_state=5), rate=1.0, random_state=5
        )
        results = compare_policies(jobs, 8)
        table = simulation_table(results)
        for name in ("fifo", "backfill", "smallest-first"):
            assert name in table

    def test_runs_include_best_effort_executions(self):
        from repro.core.job import ParametricSweep

        grid = duo_grid()
        bags = [ParametricSweep(name="bag", n_runs=6, run_time=1.0)]
        result = CentralizedGridSimulator(grid).run(
            {"alpha": [RigidJob(name="local", nbproc=2, duration=2.0)]}, bags
        )
        runs = result.runs()
        best_effort = [r for r in runs if r.kind == "best-effort"]
        local = [r for r in runs if r.kind == "local"]
        assert len(best_effort) == result.total_runs_completed == 6
        assert [r.name for r in local] == ["local"]
        assert all(r.nbproc == 1 for r in best_effort)

    def test_runs_table_lists_executions(self):
        result = ClusterSimulator(4, policy="backfill").run(blocked_head_jobs())
        table = runs_table(result, limit=2)
        assert "running" in table
        assert "head" not in table  # limited to the first two starts


class TestDeprecatedShims:
    def test_queue_policy_names_still_importable_with_warning(self):
        import repro.simulation.cluster_sim as cluster_sim

        with pytest.warns(DeprecationWarning):
            policy_cls = cluster_sim.QueuePolicy
        from repro.core.policies.online import SchedulingPolicy

        assert policy_cls is SchedulingPolicy
        with pytest.warns(DeprecationWarning):
            mapping = cluster_sim.QUEUE_POLICIES
        assert set(mapping) == {"fifo", "backfill", "smallest-first"}
        with pytest.warns(DeprecationWarning):
            from repro.simulation.cluster_sim import FifoPolicy as shimmed
        assert shimmed is not None

    def test_legacy_result_names_are_aliases(self):
        from repro.simulation import (
            DecentralizedResult,
            GridSimulationResult,
            SimulationResult,
        )

        assert SimulationResult is SimulationRecord
        assert GridSimulationResult is SimulationRecord
        assert DecentralizedResult is SimulationRecord
