"""SWF header tolerance: truncated / missing / extra comment fields.

Regression coverage for the archive-trace fix: a trace whose comment header
is truncated (fields missing their value, lines that lost their ';' marker,
non-standard fields) must parse without raising, both through
:func:`parse_swf_header` and through :func:`swf_to_jobs`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workload.swf import jobs_to_swf, parse_swf_header, swf_to_jobs

FIXTURE = Path(__file__).parent / "data" / "truncated_header.swf"


class TestTruncatedHeaderFixture:
    def test_jobs_parse_without_raising(self):
        jobs = swf_to_jobs(FIXTURE.read_text())
        # Job 3 is truncated (3 fields) and the stray 'MaxNodes: 108' line
        # lost its comment marker; both are skipped, the two good jobs stay.
        assert [j.name for j in jobs] == ["job-1", "job-2"]
        assert jobs[0].nbproc == 2 and jobs[0].weight == pytest.approx(1.5)
        assert jobs[0].owner == "user1"
        assert jobs[1].duration == pytest.approx(3.0)

    def test_strict_mode_still_raises_on_the_truncated_lines(self):
        with pytest.raises(ValueError):
            swf_to_jobs(FIXTURE.read_text(), strict=True)

    def test_header_fields_parse_tolerantly(self):
        header = parse_swf_header(FIXTURE.read_text())
        assert header.version == pytest.approx(2.2)
        assert header.computer == "CIMENT icluster"
        assert header.max_jobs == 3
        assert header.unix_start_time == 1043622000
        # 'MaxProcs' lost its value entirely: stays None, counted malformed.
        assert header.max_procs is None
        assert header.malformed_lines >= 1
        # Extra (non-spec) fields are kept, not rejected.
        assert header.extra["CustomField"] == "not in the SWF spec"
        # Known free-text fields are tolerated even when truncated.
        assert header.get("Acknowledge") == "truncated mid-sente"

    def test_file_like_input(self):
        with open(FIXTURE) as handle:
            assert parse_swf_header(handle).max_jobs == 3

    def test_missing_header_is_fine(self):
        header = parse_swf_header("1 0.0 0 5.0 2\n")
        assert header.fields == {} and header.malformed_lines == 0


class TestHeaderRoundTrip:
    def test_export_comment_survives_header_parse(self):
        from repro.core.job import RigidJob

        jobs = [RigidJob(name="a", nbproc=2, duration=4.0)]
        text = jobs_to_swf(jobs, comment="Computer: test-rig\nMaxJobs: 1")
        header = parse_swf_header(text)
        assert header.computer == "test-rig"
        assert header.max_jobs == 1
        assert len(swf_to_jobs(text)) == 1

    def test_non_numeric_value_for_numeric_field_is_malformed_not_fatal(self):
        header = parse_swf_header("; MaxJobs: lots\n")
        assert header.max_jobs is None
        assert header.malformed_lines == 1
