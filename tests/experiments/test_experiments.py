"""Unit tests of the experiment harness, the Figure 2 experiment and reporting."""

import pytest

from repro.experiments.figure2 import (
    Figure2Config,
    figure2_curves,
    run_figure2,
    run_figure2_point,
)
from repro.experiments.harness import ExperimentRunner, sweep
from repro.experiments.ratio_checks import (
    check_batch_ratio,
    check_bicriteria_ratio,
    check_mrt_ratio,
    check_smart_ratio,
)
from repro.experiments.reporting import ascii_plot, ascii_table, to_csv


class TestHarness:
    def test_sweep_runs_cross_product_with_repetitions(self):
        calls = []

        def run(seed, a, b):
            calls.append((seed, a, b))
            return {"value": a * 10 + b, "seed_used": seed}

        result = sweep("demo", run, repetitions=2, base_seed=100, a=[1, 2], b=[3])
        assert len(result) == 4
        assert len(calls) == 4
        assert {row["a"] for row in result.rows} == {1, 2}
        assert {row["seed"] for row in result.rows} == {100, 101}
        assert result.column("value") == [13, 13, 23, 23]
        assert result.elapsed_seconds >= 0.0

    def test_filter_and_grouped_mean(self):
        def run(seed, n):
            return {"metric": n + seed * 0}

        result = sweep("demo", run, repetitions=3, n=[1, 2])
        assert len(result.filter(n=1)) == 3
        means = result.grouped_mean("n", "metric")
        assert means == {1: 1.0, 2: 2.0}

    def test_aggregate(self):
        def run(seed):
            return {"metric": float(seed)}

        result = sweep("demo", run, repetitions=4, base_seed=0)
        summary = result.aggregate()["metric"]
        assert summary.count == 4
        assert summary.mean == pytest.approx(1.5)

    def test_invalid_repetitions(self):
        runner = ExperimentRunner(name="x", run=lambda seed: {}, repetitions=0)
        with pytest.raises(ValueError):
            runner.execute()

    def test_sink_receives_every_row_including_cache_replays(self, tmp_path):
        from repro.experiments.harness import run_experiment
        from repro.store.columnar import CampaignStore

        def run(seed, n):
            return {"value": float(n)}

        store = CampaignStore(tmp_path / "store", campaign="c", fmt="jsonl")
        first = run_experiment("demo", run, {"n": [1, 2]}, repetitions=1,
                               cache=tmp_path / "cache", sink=store)
        assert len(store) == 2
        assert store.rows() == first.rows

        # A cached re-run streams the replayed rows into a second campaign.
        rerun_store = CampaignStore(tmp_path / "store", campaign="rerun", fmt="jsonl")
        second = run_experiment("demo", run, {"n": [1, 2]}, repetitions=1,
                                cache=tmp_path / "cache", sink=rerun_store)
        assert all(outcome.cached for outcome in second.outcomes)
        merged = CampaignStore(tmp_path / "store")
        assert merged.campaigns() == ["c", "rerun"]
        assert merged.rows(campaign="rerun") == first.rows

    def test_sink_accepts_a_bare_path(self, tmp_path):
        from repro.experiments.harness import run_experiment
        from repro.store.columnar import CampaignStore

        def run(seed):
            return {"v": 1.0}

        run_experiment("demo", run, {}, repetitions=2, sink=tmp_path / "store")
        assert len(CampaignStore(tmp_path / "store")) == 2


class TestFigure2:
    def test_single_point_has_sane_ratios(self):
        point = run_figure2_point(60, "parallel", seed=1)
        assert point.wici_ratio >= 1.0 - 1e-9
        assert point.cmax_ratio >= 1.0 - 1e-9
        assert point.wici_value >= point.wici_bound
        assert point.as_dict()["family"] == "parallel"

    def test_small_sweep_shapes(self):
        """The Figure 2 shape on a reduced sweep: ratios are bounded and the
        large-n points are no worse than the small-n points (flattening)."""

        config = Figure2Config(
            machine_count=32,
            task_counts=(30, 120),
            repetitions=2,
            base_seed=11,
        )
        points = run_figure2(config)
        assert len(points) == 2 * 2 * 2
        curves = figure2_curves(points)
        for criterion in ("wici", "cmax"):
            for family in ("parallel", "non_parallel"):
                curve = curves[criterion][family]
                assert set(curve) == {30, 120}
                # Bounded by a small constant (the paper's worst case is 4*rho).
                assert all(value <= 8.0 for value in curve.values())
                assert all(value >= 1.0 - 1e-9 for value in curve.values())

    def test_non_parallel_jobs_are_sequential_in_the_schedule(self):
        point = run_figure2_point(40, "non_parallel", seed=3)
        assert point.cmax_ratio >= 1.0 - 1e-9

    def test_config_scheduler_variants(self):
        fast = Figure2Config(fast_inner=True).scheduler()
        slow = Figure2Config(fast_inner=False).scheduler()
        assert "deadline-aware" in fast.name
        assert "mrt" in slow.name


class TestRatioChecks:
    def test_mrt_check_reports_bound(self):
        check = check_mrt_ratio(machine_count=16, job_counts=(10, 20), repetitions=2)
        assert check.stated_bound == pytest.approx(1.55)
        assert check.worst_ratio >= check.mean_ratio >= 1.0 - 1e-9
        # On very small instances the pragmatic acceptance test can exceed the
        # stated 3/2 + eps by a little; it always stays below 2 (the factor
        # documented in repro.core.policies.mrt).  The benchmark-scale
        # instances (see benchmarks/test_ratio_mrt_offline.py) do satisfy the
        # stated bound.
        assert check.worst_ratio <= 2.0
        assert check.as_dict()["policy"] == "mrt-dual-approx"

    def test_batch_check(self):
        check = check_batch_ratio(machine_count=16, job_counts=(15,), repetitions=2)
        assert check.worst_ratio <= check.stated_bound + 1e-9

    def test_smart_check_weighted_and_unweighted(self):
        weighted = check_smart_ratio(machine_count=16, job_counts=(20,), repetitions=2,
                                     weighted=True)
        unweighted = check_smart_ratio(machine_count=16, job_counts=(20,), repetitions=2,
                                       weighted=False)
        assert weighted.stated_bound == pytest.approx(8.53)
        assert unweighted.stated_bound == pytest.approx(8.0)
        assert weighted.within_bound
        assert unweighted.within_bound

    def test_bicriteria_check(self):
        cmax_check, wc_check = check_bicriteria_ratio(machine_count=16, job_counts=(20,),
                                                      repetitions=2)
        assert cmax_check.within_bound
        assert wc_check.within_bound
        assert cmax_check.criterion == "makespan"
        assert wc_check.criterion == "weighted_completion"


class TestReporting:
    def test_ascii_table(self):
        rows = [{"policy": "mrt", "ratio": 1.234567}, {"policy": "greedy", "ratio": 2.0}]
        text = ascii_table(rows, title="Ratios")
        assert "Ratios" in text
        assert "mrt" in text
        assert "1.235" in text
        assert ascii_table([]) == "(no data)"

    def test_ascii_plot(self):
        series = {
            "parallel": {100: 1.5, 500: 1.3, 1000: 1.2},
            "non parallel": {100: 2.0, 500: 1.8, 1000: 1.6},
        }
        text = ascii_plot(series, title="WiCi ratio", width=40, height=10)
        assert "WiCi ratio" in text
        assert "P = parallel" in text
        assert ascii_plot({}) == "(no data)"

    def test_to_csv(self):
        rows = [{"a": 1, "b": "x,y"}, {"a": 2, "b": 'quote"inside'}]
        text = to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert '"x,y"' in lines[1]
        assert to_csv([]) == ""

    def test_to_csv_quotes_embedded_newlines(self):
        import csv
        import io

        rows = [{"a": "line1\nline2", "b": "cr\rhere", "c": "plain"}]
        text = to_csv(rows)
        # A conforming reader must recover the original values exactly.
        (parsed,) = csv.DictReader(io.StringIO(text))
        assert parsed == {"a": "line1\nline2", "b": "cr\rhere", "c": "plain"}

    def test_to_csv_columns_are_the_union_of_all_rows(self):
        rows = [{"a": 1, "b": 2}, {"b": 3, "c": 4}, {"d": 5}]
        lines = to_csv(rows).strip().splitlines()
        assert lines[0] == "a,b,c,d"
        assert lines[1] == "1,2,,"
        assert lines[2] == ",3,4,"
        assert lines[3] == ",,,5"
