# Canonical entry points for the test suite, the benchmarks, linting and a
# local mirror of the CI pipeline.
#
#   make test                  tier-1 unit suite (tests/)
#   make kernel                build the compiled kernel tier in place
#                              (repro._ckernel; select it with
#                              REPRO_KERNEL=compiled)
#   make kernel-check          build + tier-1 simulation/runtime tests under
#                              REPRO_KERNEL=compiled (mirrors the CI job)
#   make bench                 paper-figure benchmarks (benchmarks/)
#   make bench JOBS=4          ... fanned out to 4 worker processes
#   make bench CACHE=.repro-cache   ... with the on-disk cell cache
#   make perf                  repro.bench quick tier -> BENCH_<ts>.json
#   make perf-compare          quick tier + diff against the committed baseline
#   make runtime-check         golden-digest equivalence + warn-only perf
#                              compare (mirrors the CI runtime-equivalence job)
#   make runtime-goldens       re-pin tests/runtime/goldens.json (intentional
#                              behavior changes only)
#   make scenarios             list the registered scenarios
#   make scenario-smoke        smoke-run every registered scenario (CI job)
#   make distributed-smoke     same smoke tier through the tcp:// scheduler
#                              with 2 local workers (mirrors the CI job)
#   make distributed-smoke-inproc   same smoke tier over inproc:// comms
#                              (coroutine fleet, no sockets or forks)
#   make distributed-stress    stealing/speculation stress smoke: 32-worker
#                              inproc fleet, 1s speculation delay
#   make store-smoke           serial + inproc campaigns into one columnar
#                              store, then SQL compare + validate (mirrors
#                              the CI store-smoke job; falls back to the
#                              pure-python engine without duckdb/pyarrow)
#   make dashboard-smoke       run a campaign under a live dashboard with
#                              concurrent pollers, check every endpoint and
#                              prove the row digest identical to a serial,
#                              unobserved baseline (mirrors the CI job)
#   make telemetry-smoke       record a 4-worker tcp fleet with the flight
#                              recorder, assert digest parity vs serial,
#                              forwarded worker.* rows landed, and SQL/py
#                              query agreement (mirrors the CI job)
#   make lint                  ruff check (byte-compilation fallback)
#   make ci                    lint + test + scenario smoke + warn-only perf
#                              compare (mirrors CI)
#   make clean                 remove caches and stale bytecode

PYTHON ?= python
JOBS ?=
CACHE ?=
BENCH_THRESHOLD ?= 0.2
BASELINE ?= benchmarks/baselines/quick.json

BENCH_ENV = $(if $(JOBS),REPRO_JOBS=$(JOBS)) $(if $(CACHE),REPRO_CACHE_DIR=$(CACHE))

.PHONY: test kernel kernel-check bench perf perf-compare scenarios scenario-smoke distributed-smoke distributed-smoke-inproc distributed-stress store-smoke dashboard-smoke telemetry-smoke lint ci clean runtime-check runtime-goldens

# Port the distributed smoke tier binds its campaign schedulers on.
DIST_PORT ?= 7641

test:
	$(PYTHON) -m pytest -x -q

# Build the optional compiled kernel tier (repro._ckernel) in place.  The
# package never *requires* it -- REPRO_KERNEL=compiled silently degrades to
# the pure tier when the extension is absent -- so build failures here are
# made loud on purpose.
kernel:
	REPRO_CKERNEL=require $(PYTHON) setup.py build_ext --inplace

kernel-check: kernel
	REPRO_KERNEL=compiled $(PYTHON) -m pytest tests/simulation tests/runtime -q
	REPRO_KERNEL=compiled PYTHONPATH=src $(PYTHON) -m repro.scenarios run --all --smoke

bench:
	$(BENCH_ENV) $(PYTHON) -m pytest benchmarks -q

perf:
	PYTHONPATH=src $(PYTHON) -m repro.bench --quick

# Run the quick tier and compare against the committed baseline (warn-only:
# local timing noise should not fail the build; CI uses the same mode).
# Digest drift is never noise, so --fail-on-digest keeps that gate hard.
perf-compare:
	@REPORT=$$(PYTHONPATH=src $(PYTHON) -m repro.bench --quick) && \
	PYTHONPATH=src $(PYTHON) -m repro.bench compare $(BASELINE) $$REPORT \
		--threshold $(BENCH_THRESHOLD) --warn-only --fail-on-digest

# Prove the unified runtime is bit-identical to the pinned goldens
# (tests/runtime/goldens.json), then measure the kernel speed against the
# committed baseline in warn-only mode (mirrors the CI runtime-equivalence
# job).  Regenerate the goldens with `make runtime-goldens` ONLY for an
# intentional behavior change, and say so in the commit message.
runtime-check:
	$(PYTHON) -m pytest tests/runtime -q
	$(MAKE) perf-compare

runtime-goldens:
	PYTHONPATH=src $(PYTHON) -m repro.runtime.golden capture

scenarios:
	PYTHONPATH=src $(PYTHON) -m repro.scenarios list

# Smoke-run every registered scenario at tiny sizes, exactly like the CI
# scenario-smoke job (an unregistered or broken scenario fails here).
scenario-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.scenarios run --all --smoke

# The same smoke tier scheduled over the tcp:// distributed runtime:
# two long-lived local workers serve every campaign in turn (they retry
# until each per-scenario scheduler binds, and self-reap via --max-idle
# once the run is over). Mirrors the CI distributed-smoke job; digests
# must match a plain `make scenario-smoke`.
distributed-smoke:
	@PYTHONPATH=src $(PYTHON) -m repro.distributed worker tcp://127.0.0.1:$(DIST_PORT) --max-idle 10 & \
	PYTHONPATH=src $(PYTHON) -m repro.distributed worker tcp://127.0.0.1:$(DIST_PORT) --max-idle 10 & \
	PYTHONPATH=src $(PYTHON) -m repro.scenarios run --all --smoke \
		--executor tcp://127.0.0.1:$(DIST_PORT); \
	STATUS=$$?; wait; exit $$STATUS

# The same smoke tier over inproc:// comms: the scheduler and a coroutine
# worker fleet share one process and event loop -- no sockets, no forks --
# but the frames, scheduling (stealing + speculation) and digests are the
# same.  Mirrors the CI distributed-smoke inproc matrix leg.
distributed-smoke-inproc:
	PYTHONPATH=src $(PYTHON) -m repro.scenarios run --all --smoke \
		--executor inproc://

# Stress leg: a 32-worker inproc fleet with an aggressive 1s speculation
# delay, so stealing AND speculative re-execution actually fire while the
# digests are checked (mirrors the CI distributed-stress job).
distributed-stress:
	PYTHONPATH=src $(PYTHON) -m repro.distributed run --all --smoke \
		--comm inproc --workers 32 --speculation-delay 1

# Land the same smoke campaigns twice -- once serial, once over inproc://
# comms -- in ONE columnar store, then prove the two campaigns are
# cell-for-cell identical with the SQL compare and re-check the paper's
# ratio bounds with the validation queries.  --engine auto uses DuckDB/
# Parquet when the [analytics] extra is installed and the pure-python
# JSONL twin otherwise, so the target works in a bare checkout too.
STORE_DIR ?= .store-smoke
STORE_SCENARIOS ?= fig2.bicriteria mix.rigid-moldable

store-smoke:
	rm -rf $(STORE_DIR)
	PYTHONPATH=src $(PYTHON) -m repro.scenarios run $(STORE_SCENARIOS) --smoke \
		--store $(STORE_DIR) --campaign serial
	PYTHONPATH=src $(PYTHON) -m repro.distributed run $(STORE_SCENARIOS) --smoke \
		--comm inproc --store $(STORE_DIR) --campaign inproc
	PYTHONPATH=src $(PYTHON) -m repro.store info --store $(STORE_DIR)
	PYTHONPATH=src $(PYTHON) -m repro.store compare --store $(STORE_DIR) \
		--metric cmax_ratio --campaign-a serial --campaign-b inproc
	PYTHONPATH=src $(PYTHON) -m repro.store validate --store $(STORE_DIR)

# Observation must not perturb results: run one scenario through an inproc
# fleet while HTTP pollers hammer a live dashboard, check every endpoint
# (status, topics, events, scenario index, Gantt SVG), and require the row
# digest to be bit-identical to a serial, unobserved baseline.  Mirrors
# the CI dashboard-smoke job.
dashboard-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.dashboard smoke

# The distributed telemetry pipeline end to end: a recorded 4-worker tcp
# fleet must yield the same digest as an unobserved serial run, forwarded
# worker.* span events must land in the flight-recorder store, and the
# phase-attribution query must agree across the SQL and python engines.
# Mirrors the CI telemetry-smoke job.
telemetry-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.telemetry smoke --workers 4 --comm tcp

# ruff when available (the CI lint job installs it); plain byte-compilation
# otherwise so the target always catches syntax errors.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not found: falling back to byte-compilation only"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

ci:
	$(MAKE) lint
	$(MAKE) test
	$(MAKE) scenario-smoke
	$(MAKE) perf-compare

clean:
	rm -rf .pytest_cache .benchmarks .repro-cache .store-smoke
	find . -name __pycache__ -type d -exec rm -rf {} +
	find . -name "*.py[co]" -delete
