"""DLT-POLICIES: the Divisible Load distribution modes of section 2.1.

"This distribution can be made in one, several rounds or dynamically with a
work stealing strategy."  The benchmark compares the three modes (plus the
naive equal split and the asymptotic steady-state bound) on homogeneous and
heterogeneous platforms of 2 to 64 workers, with and without communication
latency; the (workers, comm) grid goes through the parallel sweep harness.
The shapes that must hold:

* the optimal single-round closed form never loses to the equal split;
* when communication is significant, multi-round distribution beats a single
  round, and the advantage grows with the communication cost;
* with per-message latencies there is a crossover: too many rounds (or too
  small chunks for work stealing) hurt;
* every finite-schedule makespan stays above the steady-state bound.
"""

from __future__ import annotations


from repro.core.dlt.bus import bus_equal_split, bus_single_round
from repro.core.dlt.multiround import multi_round_distribution, optimize_round_count
from repro.core.dlt.platform import DLTPlatform, DLTWorker
from repro.core.dlt.star import star_single_round
from repro.core.dlt.steady_state import steady_state_lower_bound_makespan
from repro.core.dlt.workstealing import work_stealing_distribution
from repro.experiments.reporting import ascii_table

LOAD = 10_000.0
WORKER_COUNTS = (2, 8, 32, 64)
COMM_TIMES = (0.0, 0.02, 0.1)


def heterogeneous_platform(n, comm_time, latency=0.0):
    return DLTPlatform(
        [DLTWorker(f"w{i}", compute_time=1.0 + (i % 4) * 0.5, comm_time=comm_time,
                   latency=latency) for i in range(n)]
    )


def run_dlt_cell(seed, workers, comm):
    """One sweep cell: every distribution mode on one platform."""

    platform = heterogeneous_platform(workers, comm)
    return {
        "single_round": star_single_round(LOAD, platform).makespan,
        "equal_split": bus_equal_split(LOAD, platform, bus_time_per_unit=comm).makespan,
        "one_round_prop": multi_round_distribution(LOAD, platform, rounds=1).makespan,
        "multi_round": optimize_round_count(LOAD, platform, max_rounds=8).makespan,
        "work_stealing": work_stealing_distribution(LOAD, platform).makespan,
        "steady_bound": steady_state_lower_bound_makespan(LOAD, platform),
    }


def test_dlt_distribution_modes(run_sweep, report):
    result = run_sweep("dlt-policies", run_dlt_cell,
                       {"workers": WORKER_COUNTS, "comm": COMM_TIMES})
    rows = result.rows
    report("DLT-POLICIES: divisible load distribution modes (makespan, load = 10k units)",
           ascii_table(rows))
    for row in rows:
        # Optimal single round never loses to the naive equal split.
        assert row["single_round"] <= row["equal_split"] + 1e-6
        # Nothing beats the asymptotic steady-state bound.
        for key in ("single_round", "equal_split", "one_round_prop", "multi_round",
                    "work_stealing"):
            assert row[key] >= row["steady_bound"] * (1 - 1e-9)
        # With significant communication, overlapping rounds beats handing each
        # worker its whole (proportional) share in one message.
        if row["comm"] >= 0.02:
            assert row["multi_round"] <= row["one_round_prop"] + 1e-6
    # Crossover with latencies: many rounds become counter-productive.
    lat_platform = heterogeneous_platform(16, comm_time=0.01, latency=2.0)
    few = multi_round_distribution(LOAD, lat_platform, rounds=2)
    many = multi_round_distribution(LOAD, lat_platform, rounds=64)
    assert few.makespan < many.makespan


def test_single_round_closed_form_benchmark(benchmark):
    """Micro-benchmark of the closed form itself (it is called in inner loops)."""

    platform = DLTPlatform.homogeneous(64, compute_time=1.0, comm_time=0.01)
    result = benchmark(bus_single_round, LOAD, platform)
    assert result.makespan > 0
