"""MIX-RIGID: the three strategies of section 5.1 for mixing rigid and moldable jobs.

"The first trivial idea is to separate rigid and moldable jobs and schedule
one category after the other.  Another solution is to calculate a-priori an
allocation for the moldable jobs [...].  The last solution is to modify the
bi-criteria algorithm in order to schedule each rigid job in the first batch
in which it fits.  These ideas probably lead to an increased performance
ratio."

The benchmark quantifies that increase on synthetic mixed workloads with
varying rigid fractions, for both criteria.  The (fraction, strategy) grid
goes through the parallel sweep harness.  Shape assertions: every strategy
stays within a small constant of the lower bounds, and the first-fit-batch
strategy (the one the paper leans towards) is never the worst of the three on
the weighted completion time.
"""

from __future__ import annotations


from repro.core.bounds import (
    makespan_lower_bound,
    performance_ratio,
    weighted_completion_lower_bound,
)
from repro.core.criteria import makespan, weighted_completion_time
from repro.core.policies.rigid_moldable_mix import STRATEGIES, MixedScheduler
from repro.experiments.reporting import ascii_table
from repro.workload.models import WorkloadConfig, generate_mixed_jobs

MACHINES = 32
RIGID_FRACTIONS = (0.2, 0.5, 0.8)
N_JOBS = 60


def run_mix_cell(seed, rigid_fraction, strategy):
    """One sweep cell: one strategy on one mixed workload."""

    jobs = generate_mixed_jobs(
        N_JOBS, MACHINES, rigid_fraction=rigid_fraction,
        config=WorkloadConfig(weight_scheme="work"),
        random_state=int(rigid_fraction * 100),
    )
    cmax_bound = makespan_lower_bound(jobs, MACHINES)
    wc_bound = weighted_completion_lower_bound(jobs, MACHINES)
    schedule = MixedScheduler(strategy).schedule(jobs, MACHINES)
    schedule.validate()
    return {
        "cmax_ratio": performance_ratio(makespan(schedule), cmax_bound),
        "wc_ratio": performance_ratio(weighted_completion_time(schedule), wc_bound),
    }


def test_rigid_moldable_mix_strategies(run_sweep, report):
    result = run_sweep("mix-rigid", run_mix_cell,
                       {"rigid_fraction": RIGID_FRACTIONS, "strategy": STRATEGIES})
    rows = result.rows
    report("MIX-RIGID: strategies for a mix of rigid and moldable jobs (section 5.1)",
           ascii_table(rows))

    for row in rows:
        # "Increased performance ratio", but still bounded by small constants.
        assert row["cmax_ratio"] <= 5.0
        assert row["wc_ratio"] <= 8.0

    # The first-fit-batch integration stays within 50% of the best strategy on
    # the weighted completion time for every rigid fraction.
    for fraction in RIGID_FRACTIONS:
        group = {r["strategy"]: r for r in rows if r["rigid_fraction"] == fraction}
        best_wc = min(r["wc_ratio"] for r in group.values())
        assert group["first_fit_batch"]["wc_ratio"] <= 1.5 * best_wc + 1e-9

    # The more rigid the workload, the less the strategies differ (with few
    # moldable jobs there is little left to decide).
    def spread(fraction):
        values = [r["wc_ratio"] for r in rows if r["rigid_fraction"] == fraction]
        return max(values) - min(values)

    assert spread(RIGID_FRACTIONS[-1]) <= spread(RIGID_FRACTIONS[0]) + 1e-9
