"""Worker-side spans crossing the wire: the ``telemetry`` op end to end.

The contracts pinned here:

* a worker serving a bus-backed scheduler forwards its local span events,
  which reappear on the scheduler bus under ``worker.<id>.*`` topics;
* the scheduler aggregates forwarded spans into per-worker busy/idle/
  overhead seconds and an occupancy ratio in ``telemetry_snapshot``;
* forwarding is additive: result rows are bit-identical with telemetry
  on, off (``telemetry=False``), or refused by the worker, on both the
  ``inproc://`` and ``tcp://`` backends;
* a malicious/chatty frame cannot grow unbounded scheduler work (the
  per-frame event cap).
"""

from __future__ import annotations

import pytest

from repro.distributed import Scheduler
from repro.distributed.scheduler import _WorkerConn
from repro.experiments.grid import CellFunction, expand_grid
from repro.telemetry import TelemetryBus, WORKER_TOPIC_PREFIX, worker_topic


def metrics(seed, i):
    return {"value": (seed * 13 + i) % 997, "i": i}


def run_fleet(address, *, telemetry, workers=3, cells_n=24, worker_kwargs=None):
    cells = expand_grid({"i": list(range(cells_n))}, repetitions=1, base_seed=99)
    fn = CellFunction(metrics)
    with Scheduler(address, telemetry=telemetry, stall_timeout=30.0) as scheduler:
        for _ in range(workers):
            scheduler.spawn_local_worker(inline=True, **(worker_kwargs or {}))
        outcomes = list(scheduler.run_campaign(fn, cells, version="tele-v1"))
        snapshot = scheduler.telemetry_snapshot()
    return outcomes, snapshot


def serial_metrics(cells_n=24):
    cells = expand_grid({"i": list(range(cells_n))}, repetitions=1, base_seed=99)
    fn = CellFunction(metrics)
    return [fn(cell).metrics for cell in cells]


class TestForwarding:
    @pytest.mark.parametrize("address", ["inproc://", "tcp://127.0.0.1:0"])
    def test_worker_spans_reach_the_scheduler_bus(self, address):
        bus = TelemetryBus()
        outcomes, snapshot = run_fleet(address, telemetry=bus)
        assert [o.metrics for o in outcomes] == serial_metrics()

        worker_topics = {
            topic for topic in bus.topics() if topic.startswith(WORKER_TOPIC_PREFIX)
        }
        assert worker_topics, "no forwarded worker.* topics on the scheduler bus"
        names = set()
        for topic in worker_topics:
            for event in bus.events(topic):
                if event.payload.get("kind") == "span":
                    names.add(event.payload["name"])
        assert {"cell.execute", "cell.deserialize", "cell.serialize"} <= names

        workers = snapshot["workers"]
        busy = [entry for entry in workers.values() if entry["cells"] > 0]
        assert busy, "no worker reported executed cells through telemetry"
        for entry in busy:
            assert entry["busy_seconds"] > 0.0
            assert entry["events_forwarded"] > 0
            assert entry["occupancy"] is None or 0.0 <= entry["occupancy"] <= 1.0
        assert sum(entry["cells"] for entry in workers.values()) == 24

    @pytest.mark.parametrize("address", ["inproc://", "tcp://127.0.0.1:0"])
    def test_rows_identical_with_telemetry_off(self, address):
        outcomes, snapshot = run_fleet(address, telemetry=False)
        assert [o.metrics for o in outcomes] == serial_metrics()
        for entry in snapshot["workers"].values():
            assert entry["events_forwarded"] == 0

    def test_worker_refusal_forwards_nothing(self):
        bus = TelemetryBus()
        outcomes, _ = run_fleet("inproc://", telemetry=bus, workers=2,
                                worker_kwargs={"telemetry": False})
        assert [o.metrics for o in outcomes] == serial_metrics()
        assert not any(
            topic.startswith(WORKER_TOPIC_PREFIX) for topic in bus.topics()
        )


class TestFrameHandling:
    def make_scheduler_with_conn(self):
        bus = TelemetryBus()
        scheduler = Scheduler("inproc://", telemetry=bus)
        conn = _WorkerConn(worker_id="w1", comm=None, last_seen=0.0)
        return bus, scheduler, conn

    def test_handle_telemetry_republishes_and_aggregates(self):
        bus, scheduler, conn = self.make_scheduler_with_conn()
        events = [
            {"topic": "spans", "seq": 1,
             "payload": {"kind": "span", "name": "cell.execute", "seconds": 2.0}},
            {"topic": "spans", "seq": 2,
             "payload": {"kind": "span", "name": "worker.idle", "seconds": 1.0}},
            {"topic": "spans", "seq": 3,
             "payload": {"kind": "span", "name": "cell.serialize", "seconds": 0.5}},
        ]
        scheduler._handle_telemetry(conn, {"events": events, "dropped": 4})
        assert conn.busy_seconds == 2.0
        assert conn.idle_seconds == 1.0
        assert conn.overhead_seconds == 0.5
        assert conn.cells_reported == 1
        assert conn.events_forwarded == 3
        assert conn.forward_dropped == 4
        republished = bus.events(worker_topic("w1", "spans"))
        assert [event.payload["name"] for event in republished] == [
            "cell.execute", "worker.idle", "cell.serialize",
        ]
        assert scheduler._occupancy(conn) == pytest.approx(2.0 / 3.5)

    def test_oversized_frames_are_truncated(self):
        bus, scheduler, conn = self.make_scheduler_with_conn()
        cap = scheduler.TELEMETRY_FRAME_CAP
        events = [
            {"topic": "spans", "seq": index, "payload": {"kind": "tick"}}
            for index in range(cap + 50)
        ]
        scheduler._handle_telemetry(conn, {"events": events, "dropped": 0})
        assert conn.events_forwarded == cap
        assert len(bus.events(worker_topic("w1", "spans"), limit=4096)) <= cap

    def test_malformed_frames_are_ignored(self):
        bus, scheduler, conn = self.make_scheduler_with_conn()
        scheduler._handle_telemetry(conn, {"events": "nope"})
        scheduler._handle_telemetry(conn, {"events": [None, 7, {"payload": []}]})
        assert conn.events_forwarded == 0
        assert bus.published == 0
