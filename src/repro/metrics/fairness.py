"""Fairness between communities (section 5.2).

"Another important point is to guarantee a kind of fairness between the
different communities.  Each computing resource was bought by its respective
community [...] so we should make sure that making it available to others
does not make them loose too much."

Two families of metrics are provided:

* resource usage per community (processor-time consumed, jobs completed,
  mean stretch of its jobs), computed either from a
  :class:`repro.core.allocation.Schedule` or from a simulation
  :class:`repro.simulation.tracing.Trace`;
* Jain's fairness index over the per-community normalised usage (1 = all
  communities treated equally, 1/k = one community gets everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.core.allocation import Schedule


def community_usage(schedule: Schedule) -> Dict[str, Dict[str, float]]:
    """Per-community usage statistics of a schedule.

    Jobs without an owner are grouped under ``"(unowned)"``.
    Each entry reports: ``jobs`` (count), ``work`` (processor-time),
    ``mean_flow`` (mean of ``C_j - r_j``) and ``max_flow``.
    """

    stats: Dict[str, Dict[str, float]] = {}
    for entry in schedule:
        owner = entry.job.owner or "(unowned)"
        bucket = stats.setdefault(
            owner, {"jobs": 0.0, "work": 0.0, "mean_flow": 0.0, "max_flow": 0.0}
        )
        flow = entry.completion - entry.job.release_date
        bucket["jobs"] += 1
        bucket["work"] += entry.allocation.work
        bucket["mean_flow"] += flow
        bucket["max_flow"] = max(bucket["max_flow"], flow)
    for bucket in stats.values():
        if bucket["jobs"] > 0:
            bucket["mean_flow"] /= bucket["jobs"]
    return stats


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` in ``(0, 1]``."""

    values = [max(0.0, float(v)) for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class FairnessReport:
    """Summary of inter-community fairness for one experiment."""

    usage: Dict[str, Dict[str, float]]
    fairness_on_work: float
    fairness_on_flow: float
    worst_community: Optional[str]

    def as_dict(self) -> Dict[str, object]:
        return {
            "usage": self.usage,
            "fairness_on_work": self.fairness_on_work,
            "fairness_on_flow": self.fairness_on_flow,
            "worst_community": self.worst_community,
        }


def fairness_report(
    schedule: Schedule,
    *,
    entitled_shares: Optional[Mapping[str, float]] = None,
) -> FairnessReport:
    """Fairness report for a schedule.

    ``entitled_shares`` maps each community to the fraction of the platform it
    owns (e.g. the processor count of its cluster divided by the grid size).
    When provided, the usage of each community is normalised by its share
    before computing the fairness index, so a community consuming exactly its
    own resources scores 1.
    """

    usage = community_usage(schedule)
    if not usage:
        return FairnessReport(usage, 1.0, 1.0, None)
    communities = sorted(usage)
    works = []
    flows = []
    for name in communities:
        work = usage[name]["work"]
        if entitled_shares and name in entitled_shares and entitled_shares[name] > 0:
            work = work / entitled_shares[name]
        works.append(work)
        # Lower flow is better; invert so that "more is better" for the index.
        mean_flow = usage[name]["mean_flow"]
        flows.append(1.0 / mean_flow if mean_flow > 0 else 1.0)
    worst = max(communities, key=lambda name: usage[name]["mean_flow"])
    return FairnessReport(
        usage=usage,
        fairness_on_work=jain_fairness_index(works),
        fairness_on_flow=jain_fairness_index(flows),
        worst_community=worst,
    )
