"""Reproduction of Figure 2: the bi-criteria simulation.

"A simulated implementation of a variation of the bi-criteria algorithm has
been realized, and yields the encouraging results of fig. 2, where the
simulation assumed a cluster of 100 machines, parallel and non-parallel jobs,
and two criteria Cmax and sum w_i C_i."

Figure 2 contains two plots, both with the number of tasks (0..1000) on the
x-axis and two curves ("Non Parallel" and "Parallel"):

* the top plot shows the ratio of the achieved ``sum w_i C_i`` to (a lower
  bound on) the optimum -- values roughly between 1.2 and 2.8;
* the bottom plot shows the same ratio for ``Cmax`` -- values roughly between
  1.0 and 2.2.

The reproduction keeps the paper's setup: a 100-machine homogeneous cluster,
the bi-criteria doubling-batch scheduler (with the MRT moldable procedure
inside each batch for the parallel workload, and the same batch structure on
strictly sequential jobs for the non-parallel workload), and ratios computed
against the lower bounds of :mod:`repro.core.bounds`.  Absolute values depend
on the (unknown) workload distribution used by the authors; the *shape* that
must hold -- and that the benchmark and tests verify -- is:

* all ratios stay bounded by small constants (far below the worst-case 4 rho);
* ratios do not blow up as the number of tasks grows (they flatten);
* the makespan ratio stays below ~2.2 and approaches 1 for large task counts
  (many tasks pack well on 100 machines).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.policies.bicriteria import BiCriteriaScheduler
from repro.core.policies.mrt import MRTScheduler
from repro.experiments.harness import run_experiment
from repro.metrics.ratios import RatioReport, schedule_ratios
from repro.workload.models import figure2_workload

RandomState = Union[int, np.random.Generator, None]

#: Task counts used by the paper's x-axis (0 .. 1000); 0 is skipped because a
#: ratio is undefined on an empty instance.
DEFAULT_TASK_COUNTS: Tuple[int, ...] = (50, 100, 200, 400, 600, 800, 1000)

FAMILIES: Tuple[str, str] = ("non_parallel", "parallel")


@dataclass
class Figure2Config:
    """Parameters of the Figure 2 experiment."""

    machine_count: int = 100
    task_counts: Sequence[int] = DEFAULT_TASK_COUNTS
    families: Sequence[str] = FAMILIES
    repetitions: int = 3
    base_seed: int = 2004
    #: Use the fast deadline-aware batch procedure (the default inner
    #: procedure of :class:`BiCriteriaScheduler`) instead of the full MRT
    #: dual approximation inside each batch.  The fast variant is what the
    #: benchmark uses for the larger task counts; at this scale the two give
    #: very close ratios, MRT being slightly better and markedly slower.
    fast_inner: bool = True
    runtime_range: Tuple[float, float] = (1.0, 50.0)

    def scheduler(self) -> BiCriteriaScheduler:
        inner = None if self.fast_inner else MRTScheduler()
        return BiCriteriaScheduler(inner)


@dataclass
class Figure2Point:
    """One point of a Figure 2 curve."""

    family: str
    n_tasks: int
    seed: int
    wici_ratio: float
    cmax_ratio: float
    wici_value: float
    wici_bound: float
    cmax_value: float
    cmax_bound: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "family": self.family,
            "n_tasks": self.n_tasks,
            "seed": self.seed,
            "wici_ratio": self.wici_ratio,
            "cmax_ratio": self.cmax_ratio,
            "wici_value": self.wici_value,
            "wici_bound": self.wici_bound,
            "cmax_value": self.cmax_value,
            "cmax_bound": self.cmax_bound,
        }


def run_figure2_point(
    n_tasks: int,
    family: str,
    *,
    config: Optional[Figure2Config] = None,
    seed: int = 0,
) -> Figure2Point:
    """Run one simulation point (one family, one task count, one seed)."""

    config = config or Figure2Config()
    jobs = figure2_workload(
        n_tasks,
        config.machine_count,
        family=family,
        random_state=seed,
        runtime_range=tuple(config.runtime_range),
    )
    scheduler = config.scheduler()
    schedule = scheduler.schedule(jobs, config.machine_count)
    schedule.validate()
    ratios: RatioReport = schedule_ratios(schedule, jobs, machine_count=config.machine_count)
    return Figure2Point(
        family=family,
        n_tasks=n_tasks,
        seed=seed,
        wici_ratio=ratios.weighted_completion_ratio,
        cmax_ratio=ratios.makespan_ratio,
        wici_value=ratios.weighted_completion,
        wici_bound=ratios.weighted_completion_bound,
        cmax_value=ratios.makespan,
        cmax_bound=ratios.makespan_bound,
    )


def _figure2_cell(seed: int, *, n_tasks: int, family: str, config: Figure2Config) -> Dict[str, float]:
    """One sweep cell (picklable, runs in worker processes)."""

    return run_figure2_point(n_tasks, family, config=config, seed=seed).as_dict()


def run_figure2(
    config: Optional[Figure2Config] = None,
    *,
    executor: object = None,
    cache: object = None,
) -> List[Figure2Point]:
    """Run the full Figure 2 sweep (both families, all task counts, all seeds).

    The sweep goes through :func:`repro.experiments.harness.run_experiment`,
    so it fans out over (family, n_tasks, seed) cells when a parallel
    executor is selected (``executor=`` or the ``REPRO_JOBS`` environment
    variable) while producing the same points in the same order as a serial
    run.
    """

    config = config or Figure2Config()
    result = run_experiment(
        "figure2",
        functools.partial(_figure2_cell, config=config),
        # Sorted parameter names put "family" before "n_tasks", matching the
        # historical family-outer / task-count-inner enumeration order.
        {"family": list(config.families), "n_tasks": list(config.task_counts)},
        repetitions=config.repetitions,
        base_seed=config.base_seed,
        executor=executor,  # type: ignore[arg-type]
        cache=cache,  # type: ignore[arg-type]
    )
    return points_from_rows(result.rows)


#: Row keys carrying one :class:`Figure2Point` (the harness / scenario rows).
POINT_FIELDS: Tuple[str, ...] = (
    "family", "n_tasks", "seed", "wici_ratio", "cmax_ratio",
    "wici_value", "wici_bound", "cmax_value", "cmax_bound",
)


def points_from_rows(rows: Sequence[Dict[str, float]]) -> List[Figure2Point]:
    """Rebuild :class:`Figure2Point` objects from harness / scenario rows."""

    return [Figure2Point(**{name: row[name] for name in POINT_FIELDS}) for row in rows]


def figure2_curves(points: Sequence[Figure2Point]) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Average the points into the four curves of Figure 2.

    Returns ``{"wici": {family: {n_tasks: mean ratio}}, "cmax": {...}}``.
    """

    curves: Dict[str, Dict[str, Dict[int, List[float]]]] = {"wici": {}, "cmax": {}}
    for point in points:
        curves["wici"].setdefault(point.family, {}).setdefault(point.n_tasks, []).append(
            point.wici_ratio
        )
        curves["cmax"].setdefault(point.family, {}).setdefault(point.n_tasks, []).append(
            point.cmax_ratio
        )
    averaged: Dict[str, Dict[str, Dict[int, float]]] = {"wici": {}, "cmax": {}}
    for criterion, families in curves.items():
        for family, by_n in families.items():
            averaged[criterion][family] = {
                n: sum(values) / len(values) for n, values in sorted(by_n.items())
            }
    return averaged
