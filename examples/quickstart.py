#!/usr/bin/env python3
"""Quickstart: schedule a handful of moldable jobs on a small cluster.

This example walks through the core objects of the library:

1. describe a platform (a 16-processor homogeneous cluster),
2. describe a workload (moldable Parallel Tasks with Amdahl-style profiles),
3. run two policies of the paper -- the MRT dual-approximation algorithm for
   the makespan (section 4.1) and the bi-criteria doubling batches
   (section 4.4) --
4. inspect the resulting schedules: Gantt chart, criteria of section 3 and
   ratios against the lower bounds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.criteria import CriteriaReport
from repro.core.policies import BiCriteriaScheduler, MRTScheduler
from repro.core.speedup import AmdahlSpeedup, make_runtime_table
from repro.core.job import MoldableJob
from repro.experiments.reporting import ascii_table
from repro.metrics.ratios import schedule_ratios
from repro.platform.generators import homogeneous_cluster
from repro.workload.models import generate_moldable_jobs


def build_workload(machine_count: int) -> list[MoldableJob]:
    """A few hand-written jobs plus a batch of random ones."""

    jobs = [
        MoldableJob(
            name="cfd-solver",
            runtimes=make_runtime_table(40.0, machine_count, AmdahlSpeedup(0.05)),
            weight=4.0,
        ),
        MoldableJob(
            name="post-processing",
            runtimes=make_runtime_table(6.0, 4, AmdahlSpeedup(0.3)),
            weight=1.0,
        ),
        MoldableJob(name="sequential-analysis", runtimes=[12.0], weight=2.0),
    ]
    jobs += generate_moldable_jobs(9, machine_count, random_state=2004, name_prefix="batch")
    return jobs


def main() -> None:
    cluster = homogeneous_cluster("quickstart-cluster", 16)
    machine_count = cluster.processor_count
    jobs = build_workload(machine_count)
    print(f"Platform: {cluster!r}")
    print(f"Workload: {len(jobs)} moldable jobs, "
          f"total minimal work {sum(j.min_work() for j in jobs):.1f} processor-units\n")

    rows = []
    for policy in (MRTScheduler(), BiCriteriaScheduler()):
        schedule = policy.schedule(jobs, machine_count)
        schedule.validate()
        report = CriteriaReport.from_schedule(schedule)
        ratios = schedule_ratios(schedule, jobs)
        rows.append(
            {
                "policy": policy.name,
                "makespan": report.makespan,
                "cmax_ratio": ratios.makespan_ratio,
                "sum_wC": report.weighted_completion,
                "wC_ratio": ratios.weighted_completion_ratio,
                "mean_stretch": report.mean_stretch,
                "utilization": report.utilization,
            }
        )
        print(f"--- {policy.name} ---")
        print(schedule.to_gantt(width=70))
        print()

    print(ascii_table(rows, title="Criteria and ratios (lower is better, ratios >= 1)"))
    print("The MRT schedule minimises the makespan; the bi-criteria schedule")
    print("trades a little makespan for much better (weighted) completion times.")


if __name__ == "__main__":
    main()
