"""On-disk cell cache: repeated sweeps skip completed cells.

Each cached cell is one small JSON file ``<dir>/<experiment>/<key>.json``
holding the metrics and the original timing.  The key (see
:func:`repro.experiments.grid.cell_key`) covers the experiment name, the
configuration, the seed and a fingerprint of the run function's own source
(plus any ``functools.partial`` bound arguments), so editing the cell
function invalidates its cache automatically.  The fingerprint does *not*
see code the function calls into or module-level constants it reads --
after changing those, clear the cache (``ResultCache.clear`` or delete the
directory).

Only JSON-serialisable metrics are cached; cells whose rows hold rich Python
objects are silently recomputed every time (correct, just not accelerated).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.experiments.grid import Cell, CellOutcome, cell_key

#: Environment variable enabling the cache for benchmark runs.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def encode_replayable(outcome: CellOutcome) -> Optional[Dict[str, Any]]:
    """The JSON-safe replay fields of a successful outcome, or ``None``.

    The single definition of "replayable" shared by the result cache and
    the distributed campaign journal: only metrics that survive a JSON
    round-trip *unchanged* may be persisted (tuples and non-string dict
    keys do not), so replayed rows are bit-identical to freshly computed
    ones.  Failed outcomes and rich-object metrics return ``None`` -- the
    cell is simply recomputed next time (correct, just not accelerated).
    """

    if outcome.failed or outcome.metrics is None:
        return None
    try:
        if json.loads(json.dumps(outcome.metrics)) != outcome.metrics:
            return None
    except (TypeError, ValueError):
        return None
    return {"metrics": outcome.metrics, "elapsed_seconds": outcome.elapsed_seconds}


def decode_replayed(cell: Cell, payload: Mapping[str, Any]) -> CellOutcome:
    """Rebuild the replayed outcome of a persisted entry (``cached=True``)."""

    return CellOutcome(
        cell=cell,
        metrics=payload.get("metrics", {}),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        cached=True,
    )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    skipped: int = 0  # results that were not JSON-serialisable


class ResultCache:
    """A directory of per-cell JSON results."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.stats = CacheStats()

    @classmethod
    def coerce(cls, cache: Union[None, str, Path, "ResultCache"]) -> Optional["ResultCache"]:
        if cache is None or isinstance(cache, ResultCache):
            return cache
        return cls(cache)

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """Cache at ``$REPRO_CACHE_DIR`` when set, otherwise no cache."""

        directory = os.environ.get(CACHE_ENV_VAR, "").strip()
        return cls(directory) if directory else None

    def _path(self, experiment: str, key: str) -> Path:
        return self.directory / (_SAFE.sub("_", experiment) or "experiment") / f"{key}.json"

    def lookup(self, experiment: str, cell: Cell, version: str = "") -> Optional[CellOutcome]:
        """The cached outcome of ``cell``, or ``None`` on a miss."""

        path = self._path(experiment, cell_key(experiment, cell, version))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return decode_replayed(cell, payload)

    def store(self, experiment: str, cell: Cell, outcome: CellOutcome, version: str = "") -> bool:
        """Persist a successful outcome; returns False when not serialisable."""

        if outcome.failed or outcome.metrics is None:
            return False
        replayable = encode_replayable(outcome)
        if replayable is None:
            self.stats.skipped += 1
            return False
        payload: Dict[str, Any] = {
            "experiment": experiment,
            "params": cell.params_dict,
            "seed": cell.seed,
            "repetition": cell.repetition,
            **replayable,
        }
        try:
            blob = json.dumps(payload)
        except (TypeError, ValueError):
            # The cell's *parameters* (free-form Python values) may not be
            # JSON-safe even when its metrics are.
            self.stats.skipped += 1
            return False
        path = self._path(experiment, cell_key(experiment, cell, version))
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic write: a crashed run never leaves a truncated cache entry.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stats.stores += 1
        return True

    # -- unified results API (repro.store.api.RowSink / RowSource) ----------

    def write(self, experiment: str, cell: Cell, outcome: CellOutcome, version: str = "") -> bool:
        return self.store(experiment, cell, outcome, version)

    def replay(self, experiment: str, cell: Cell, version: str = "") -> Optional[CellOutcome]:
        return self.lookup(experiment, cell, version)

    def flush(self) -> None:
        """Entries are individually atomic files; nothing buffered to push."""

    def clear(self) -> int:
        """Delete every cached entry; returns the number of files removed."""

        removed = 0
        if self.directory.is_dir():
            for path in self.directory.rglob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
