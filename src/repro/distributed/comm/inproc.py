"""The ``inproc://`` comm backend: in-process channels, no sockets.

Modeled on ``distributed/comm/inproc.py`` from early dask ``distributed``:
a process-global table of listeners keyed by location, and connections made
of two single-direction channels (one per flow).  A channel is a thread-safe
deque with a single asyncio waiter, so comms work both between coroutines
sharing one loop (the 1000-worker simulated fleet: scheduler and every
worker on the same loop, zero syscalls per message) and across loops in
different threads (a synchronous worker joining an in-process scheduler).

Fidelity is preserved on purpose: every message is round-tripped through
:func:`repro.distributed.protocol.dump_frame` / ``load_frame``, so the
frame-size guard, the JSON-envelope check and ``REPRO_MAX_FRAME`` behave
exactly as they do on the wire, and nothing can accidentally leak shared
mutable state between "processes".
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
from collections import deque
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.distributed import protocol
from repro.distributed.comm import core

_registry_lock = threading.Lock()
_listeners: Dict[str, "InProcListener"] = {}
_counter = itertools.count()


class _Channel:
    """One direction of an in-process connection (single reader)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: deque = deque()
        self._closed = False
        # At most one pending reader: (its loop, its future).
        self._waiter: Optional[Tuple[asyncio.AbstractEventLoop, asyncio.Future]] = None

    def put(self, item: bytes) -> None:
        """Append one frame; callable from any thread.  Raises when closed."""

        with self._lock:
            if self._closed:
                raise core.CommClosedError("inproc channel is closed")
            self._items.append(item)
            waiter, self._waiter = self._waiter, None
        if waiter is not None:
            self._wake(waiter)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            waiter, self._waiter = self._waiter, None
        if waiter is not None:
            self._wake(waiter)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def drained(self) -> bool:
        """Closed *and* empty: nothing left for the reader."""

        with self._lock:
            return self._closed and not self._items

    @staticmethod
    def _wake(waiter: Tuple[asyncio.AbstractEventLoop, asyncio.Future]) -> None:
        loop, future = waiter

        def _set() -> None:
            if not future.done():
                future.set_result(None)

        try:
            loop.call_soon_threadsafe(_set)
        except RuntimeError:
            pass  # the reader's loop is gone; nobody is waiting any more

    async def get(self) -> bytes:
        """Pop the next frame, waiting if empty; raises once closed and drained."""

        loop = asyncio.get_running_loop()
        while True:
            with self._lock:
                if self._items:
                    return self._items.popleft()
                if self._closed:
                    raise core.CommClosedError("inproc peer closed the channel")
                future: asyncio.Future = loop.create_future()
                self._waiter = (loop, future)
            try:
                await future
            finally:
                with self._lock:
                    if self._waiter is not None and self._waiter[1] is future:
                        self._waiter = None


class InProcComm(core.Comm):
    """One endpoint of an in-process connection."""

    def __init__(self, send_channel: _Channel, recv_channel: _Channel, peer: str) -> None:
        self._send_channel = send_channel
        self._recv_channel = recv_channel
        self._closed = False
        self.peer = peer

    async def send(self, message: Mapping[str, Any]) -> None:
        blob = protocol.dump_frame(message)  # same guard as the wire
        if self._closed:
            raise core.CommClosedError(f"comm to {self.peer} is closed")
        try:
            self._send_channel.put(blob)
        except core.CommClosedError:
            self._closed = True
            raise

    async def recv(self) -> Dict[str, Any]:
        if self._closed and self._recv_channel.drained:
            raise core.CommClosedError(f"comm to {self.peer} is closed")
        blob = await self._recv_channel.get()
        return protocol.load_frame(blob)

    async def close(self) -> None:
        self._closed = True
        self._send_channel.close()
        self._recv_channel.close()

    @property
    def closed(self) -> bool:
        return self._closed or self._send_channel.closed


class InProcListener(core.Listener):
    """A named in-process endpoint accepting connections from any thread."""

    def __init__(self, location: str, handler: core.ConnectionHandler) -> None:
        self._location = location or f"{os.getpid()}-{next(_counter)}"
        self._handler = handler
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        with _registry_lock:
            if self._location in _listeners:
                raise core.CommError(
                    f"inproc://{self._location} already has a listener "
                    f"(campaigns on one token must run sequentially)"
                )
            _listeners[self._location] = self

    async def stop(self) -> None:
        with _registry_lock:
            if _listeners.get(self._location) is self:
                del _listeners[self._location]

    @property
    def address(self) -> str:
        return f"inproc://{self._location}"

    def _establish(self) -> core.Comm:
        """Create a connection pair; callable from any thread."""

        loop = self._loop
        if loop is None or loop.is_closed():
            raise core.CommClosedError(f"listener at {self.address} is gone")
        to_server = _Channel()
        to_client = _Channel()
        server_comm = InProcComm(to_client, to_server, peer=f"{self.address}#client")
        client_comm = InProcComm(to_server, to_client, peer=self.address)
        # The handler always runs on the listener's loop, exactly like an
        # accepted socket; run_coroutine_threadsafe works from the listener's
        # own thread too.
        asyncio.run_coroutine_threadsafe(self._handler(server_comm), loop)
        return client_comm


class InProcBackend(core.Backend):
    scheme = "inproc"

    def validate(self, location: str) -> None:
        if "/" in location:
            raise ValueError(
                f"bad address 'inproc://{location}': a location is a flat "
                f"token (e.g. inproc://campaign); empty picks a fresh one"
            )

    async def connect(self, location: str) -> core.Comm:
        with _registry_lock:
            listener = _listeners.get(location)
        if listener is None:
            raise core.CommClosedError(
                f"no inproc listener at inproc://{location} (is the scheduler "
                f"running in this process?)"
            )
        return listener._establish()

    def listener(self, location: str, handler: core.ConnectionHandler) -> core.Listener:
        return InProcListener(location, handler)


core.register_backend(InProcBackend())
