"""Unit tests of the MRT dual-approximation moldable scheduler (section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import makespan_lower_bound
from repro.core.criteria import makespan
from repro.core.job import MoldableJob, RigidJob
from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler, _as_moldable
from repro.core.policies.base import SchedulerError
from repro.core.speedup import LinearSpeedup, make_runtime_table
from repro.workload.models import generate_mixed_jobs, generate_moldable_jobs


class TestAsMoldable:
    def test_moldable_passthrough(self):
        job = MoldableJob(name="m", runtimes=[3.0, 2.0])
        assert _as_moldable(job, 4) is job

    def test_rigid_becomes_single_allocation_profile(self):
        job = RigidJob(name="r", nbproc=3, duration=5.0)
        moldable = _as_moldable(job, 8)
        assert moldable.min_procs == 3
        assert moldable.runtime(3) == 5.0
        assert moldable.canonical_allocation(5.0) == 3
        assert moldable.canonical_allocation(4.0) is None

    def test_rigid_too_large_rejected(self):
        job = RigidJob(name="r", nbproc=16, duration=5.0)
        with pytest.raises(SchedulerError):
            _as_moldable(job, 8)


class TestGreedyMoldableScheduler:
    def test_valid_and_complete(self, random_moldable_jobs):
        schedule = GreedyMoldableScheduler().schedule(random_moldable_jobs, 16)
        schedule.validate()
        assert len(schedule) == len(random_moldable_jobs)

    def test_empty(self):
        assert len(GreedyMoldableScheduler().schedule([], 8)) == 0


class TestMRTScheduler:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            MRTScheduler(epsilon=0.0)

    def test_valid_and_complete(self, random_moldable_jobs):
        schedule = MRTScheduler().schedule(random_moldable_jobs, 16)
        schedule.validate()
        assert len(schedule) == len(random_moldable_jobs)

    def test_empty(self):
        assert len(MRTScheduler().schedule([], 8)) == 0

    def test_single_job_gets_a_good_allocation(self):
        # One perfectly parallel job on 8 processors: the optimum uses all of
        # them; MRT must be within 3/2 of that.
        job = MoldableJob(name="m", runtimes=make_runtime_table(80.0, 8, LinearSpeedup()))
        schedule = MRTScheduler(epsilon=0.01).schedule([job], 8)
        assert schedule.makespan() <= 1.5 * 10.0 * 1.01 + 1e-6

    def test_ratio_within_three_halves_on_random_instances(self):
        """Empirical check of the 3/2 + eps performance ratio."""

        epsilon = 0.05
        scheduler = MRTScheduler(epsilon=epsilon)
        for seed in range(5):
            jobs = generate_moldable_jobs(30, 16, random_state=seed)
            schedule = scheduler.schedule(jobs, 16)
            schedule.validate()
            bound = makespan_lower_bound(jobs, 16)
            assert makespan(schedule) <= (1.5 + epsilon) * bound * (1 + 1e-9)

    def test_never_worse_than_greedy_baseline(self):
        for seed in (1, 2, 3):
            jobs = generate_moldable_jobs(25, 16, random_state=seed)
            mrt = MRTScheduler().schedule(jobs, 16)
            greedy = GreedyMoldableScheduler().schedule(jobs, 16)
            # MRT falls back to the greedy schedule when its guesses fail, so
            # it can never be worse.
            assert makespan(mrt) <= makespan(greedy) + 1e-9

    def test_start_time_offset(self, random_moldable_jobs):
        schedule = MRTScheduler().schedule(random_moldable_jobs, 16, start_time=100.0)
        assert min(e.start for e in schedule) >= 100.0 - 1e-9

    def test_handles_rigid_jobs_in_the_mix(self):
        jobs = generate_mixed_jobs(20, 8, rigid_fraction=0.4, random_state=9)
        schedule = MRTScheduler().schedule(jobs, 8)
        schedule.validate()
        assert len(schedule) == 20

    def test_sequential_only_jobs(self):
        jobs = [MoldableJob(name=f"s{i}", runtimes=[float(i + 1)]) for i in range(10)]
        schedule = MRTScheduler().schedule(jobs, 4)
        schedule.validate()
        bound = makespan_lower_bound(jobs, 4)
        assert makespan(schedule) <= 2.0 * bound + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=15),
    machines=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_mrt_is_valid_and_within_two_of_the_bound_property(n_jobs, machines, seed):
    """Property: MRT schedules are always valid and within 2x the lower bound.

    The deterministic tests above check the 3/2 + eps ratio on the benchmark
    instances; this property uses the looser factor 2 that the pragmatic
    acceptance test (LPT packing of the knapsack allocations, see the module
    docstring of ``repro.core.policies.mrt``) guarantees on *every* instance
    -- the exact 3/2 construction of the original article can leave a small
    gap on adversarial profiles.
    """

    epsilon = 0.1
    jobs = generate_moldable_jobs(n_jobs, machines, random_state=seed)
    schedule = MRTScheduler(epsilon=epsilon).schedule(jobs, machines)
    schedule.validate()
    assert len(schedule) == n_jobs
    bound = makespan_lower_bound(jobs, machines)
    assert schedule.makespan() <= 2.0 * bound * (1 + 1e-9)
