"""Cluster model: a weakly heterogeneous collection of machines.

A cluster is the unit of administration in the paper's light grid: it has its
own submission queue, its own scheduling policy and is "weakly heterogeneous"
(same OS, processors of different generations / clock speeds).  The cluster
exposes a flat view of its *processors* (node cores) which is what the
Parallel-Task policies schedule on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.platform.machine import Machine


@dataclass(frozen=True)
class Interconnect:
    """Description of the cluster's internal network.

    The PT policies never use it directly (communications are implicit in the
    PT model); the DLT distribution algorithms and the grid simulators use
    ``bandwidth`` (load units per time unit) and ``latency`` (time units per
    message) to charge data movements.
    """

    name: str = "ethernet-100"
    bandwidth: float = 100.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")

    def transfer_time(self, volume: float) -> float:
        """Time to ship ``volume`` units of data over the interconnect."""

        if volume < 0:
            raise ValueError("volume must be >= 0")
        if volume == 0:
            return 0.0
        return self.latency + volume / self.bandwidth


class Cluster:
    """A named collection of machines behind a common interconnect."""

    def __init__(
        self,
        name: str,
        machines: Sequence[Machine],
        interconnect: Optional[Interconnect] = None,
        *,
        community: Optional[str] = None,
    ) -> None:
        if not machines:
            raise ValueError(f"cluster {name!r}: at least one machine is required")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ValueError(f"cluster {name!r}: duplicate machine names")
        self.name = name
        self.machines: Tuple[Machine, ...] = tuple(machines)
        self.interconnect = interconnect or Interconnect()
        #: Community owning the cluster (used by the grid fairness metrics).
        self.community = community

    # -- size ------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.machines)

    @property
    def processor_count(self) -> int:
        """Total number of processors (cores) in the cluster."""

        return sum(m.cores for m in self.machines)

    @property
    def total_compute_rate(self) -> float:
        return sum(m.compute_rate for m in self.machines)

    # -- processor-level view ---------------------------------------------
    def processor_speeds(self) -> List[float]:
        """Speed of each processor, in processor-index order.

        Processor ``i`` of the flat view belongs to machine ``i // cores``
        when all machines have the same core count; in general the flat view
        enumerates machines in order and their cores consecutively.
        """

        speeds: List[float] = []
        for machine in self.machines:
            speeds.extend([machine.speed] * machine.cores)
        return speeds

    def processor_machine(self, processor: int) -> Machine:
        """Machine hosting flat processor index ``processor``."""

        if processor < 0:
            raise IndexError(processor)
        for machine in self.machines:
            if processor < machine.cores:
                return machine
            processor -= machine.cores
        raise IndexError("processor index outside cluster")

    def is_homogeneous(self, tolerance: float = 1e-9) -> bool:
        speeds = {round(m.speed / tolerance) for m in self.machines} if tolerance else set()
        first = self.machines[0].speed
        return all(abs(m.speed - first) <= tolerance for m in self.machines)

    def slowest_speed(self) -> float:
        return min(m.speed for m in self.machines)

    def fastest_speed(self) -> float:
        return max(m.speed for m in self.machines)

    def describe(self) -> Dict[str, object]:
        """Plain-dict description (used by reports and the README examples)."""

        return {
            "name": self.name,
            "nodes": self.node_count,
            "processors": self.processor_count,
            "interconnect": self.interconnect.name,
            "bandwidth": self.interconnect.bandwidth,
            "community": self.community,
            "speed_range": (self.slowest_speed(), self.fastest_speed()),
        }

    def __repr__(self) -> str:
        return (
            f"Cluster({self.name!r}, nodes={self.node_count}, "
            f"processors={self.processor_count}, "
            f"interconnect={self.interconnect.name!r})"
        )
