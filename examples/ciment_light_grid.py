#!/usr/bin/env python3
"""The CIMENT light grid: centralized best-effort vs decentralized exchange.

Section 5.2 of the paper proposes two ways of linking the clusters of the
Grenoble light grid:

* **centralized** -- local jobs stay on their community's cluster and a
  central server fills the idle processors with best-effort runs of the
  multi-parametric grid jobs, killing and resubmitting them whenever a local
  job needs the processors;
* **decentralized** -- every job is submitted locally and the clusters
  exchange queued work to balance the load.

Both organisations are registered scenarios (``fig3.ciment.centralized``
and ``grid.decentralized.exchange``); this example runs them on the exact
Figure-3 platform with one workload per community, then prints utilisation,
grid throughput, kill counts and fairness from the result rows.

Run with:  python examples/ciment_light_grid.py
"""

from __future__ import annotations

from repro.experiments.reporting import ascii_table
from repro.platform.ciment import ciment_grid
from repro.scenarios import get, run_scenario

#: Local jobs generated per community (the paper's qualitative profiles).
JOBS_PER_COMMUNITY = 15


def main() -> None:
    grid = ciment_grid()
    print(grid.summary())
    print()

    # ---------------------------------------------------------------- centralized
    centralized = run_scenario(
        get("fig3.ciment.centralized"),
        overrides={"workload.jobs_per_community": JOBS_PER_COMMUNITY},
    ).rows[0]
    print(ascii_table(centralized["outcome"],
                      title="Centralized organisation (best-effort grid jobs)"))
    print(f"  best-effort runs completed : {centralized['total_runs_completed']}"
          f" / {centralized['expected_runs']}")
    print(f"  best-effort kills          : {centralized['kills']} "
          f"(each killed run is resubmitted by the central server)")
    print(f"  grid throughput            : {centralized['throughput']:.1f} runs / hour\n")

    # -------------------------------------------------------------- decentralized
    decentralized = run_scenario(
        get("grid.decentralized.exchange"),
        overrides={"workload.jobs_per_community": JOBS_PER_COMMUNITY},
        sweep={"policy.exchange_enabled": [True]},
    ).rows[0]
    rows = [
        {
            "cluster": cluster.name,
            "makespan_h": decentralized[f"local_makespan.{cluster.name}"],
        }
        for cluster in grid
    ]
    print(ascii_table(rows, title="Decentralized organisation (load exchange, local jobs only)"))
    print(f"  migrations               : {decentralized['migrations']}")
    print(f"  mean flow time (hours)   : {decentralized['mean_flow']:.2f}")
    print(f"  fairness on work (Jain)  : {decentralized['fairness_on_work']:.3f}")
    print()
    print("Centralized keeps local users completely undisturbed (best-effort jobs")
    print("are killed on demand); decentralized balances the load of overloaded")
    print("communities at the cost of migrations and some interference.")


if __name__ == "__main__":
    main()
