"""Observation must not perturb results: digests with 0/1/5 live pollers.

This is the PR's core invariant -- result rows derive only from cell
seeds, the telemetry bus and dashboard are read-only observers -- pinned
down end to end: an inproc distributed fleet runs a scenario while N
concurrent HTTP pollers hammer the dashboard, and the row digest must be
bit-identical to a serial, unobserved baseline.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.dashboard.app import DashboardServer
from repro.distributed.executor import DistributedExecutor
from repro.scenarios import registry
from repro.scenarios.composer import rows_digest, run_scenario

SCENARIO = "cluster.policy-panel"


@pytest.fixture(scope="module")
def serial_digest():
    result = run_scenario(registry.get(SCENARIO), smoke=True)
    return rows_digest(result.rows)


@pytest.mark.parametrize("pollers", [0, 1, 5])
def test_digest_is_bit_identical_under_dashboard_observation(pollers, serial_digest):
    spec = registry.get(SCENARIO)
    with DashboardServer(port=0) as server:
        stop = threading.Event()

        def poll() -> None:
            while not stop.is_set():
                for path in ("/api/status", "/api/events?topic=sweep", "/api/topics"):
                    try:
                        with urllib.request.urlopen(
                            server.url + path, timeout=5.0
                        ) as response:
                            response.read()
                    except urllib.error.URLError:
                        pass

        threads = [threading.Thread(target=poll, daemon=True) for _ in range(pollers)]
        for thread in threads:
            thread.start()
        try:
            executor = DistributedExecutor("inproc://", workers=2)
            observed = run_scenario(spec, smoke=True, executor=executor)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
    assert rows_digest(observed.rows) == serial_digest
