"""Handling a mix of rigid and moldable jobs (section 5.1, "Rigid Jobs").

"Even though most jobs are intrinsically moldable, some of them need to stay
rigid [...] So that means we actually have to deal with a mix of moldable and
rigid jobs.  There are different possible ideas to solve this problem:

* the first trivial idea is to **separate** rigid and moldable jobs and
  schedule one category after the other;
* another solution is to calculate **a-priori** an allocation for the
  moldable jobs, and then apply a rigid scheduling algorithm on the resulting
  rigid jobs;
* the last solution is to modify the bi-criteria algorithm in order to
  schedule each rigid job in the **first batch in which it fits**."

The three strategies are implemented here and compared by the ``MIX-RIGID``
benchmark.  As the paper notes, "these ideas probably lead to an increased
performance ratio" -- the benchmark quantifies by how much on synthetic
instances.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.allocation import Schedule
from repro.core.bounds import min_runtime, min_work
from repro.core.job import Job, MoldableJob, RigidJob, validate_jobs
from repro.core.policies.base import (
    MoldableAllocator,
    OfflineScheduler,
    ReleaseDateScheduler,
    SchedulerError,
    list_schedule_rigid,
    sort_jobs,
)
from repro.core.policies.mrt import MRTScheduler

STRATEGIES = ("separate", "a_priori", "first_fit_batch")


class MixedScheduler(ReleaseDateScheduler):
    """Scheduler for a mix of rigid and moldable jobs.

    Parameters
    ----------
    strategy:
        One of ``"separate"``, ``"a_priori"``, ``"first_fit_batch"`` (the
        three ideas of section 5.1, in the order of the paper).
    moldable_policy:
        Off-line policy for the moldable part (default MRT); used by the
        ``separate`` strategy.
    allocator:
        Allocation strategy used by ``a_priori`` to freeze moldable jobs.
    """

    def __init__(
        self,
        strategy: str = "first_fit_batch",
        *,
        moldable_policy: Optional[OfflineScheduler] = None,
        allocator: Optional[MoldableAllocator] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        self.strategy = strategy
        self.moldable_policy = moldable_policy or MRTScheduler()
        self.allocator = allocator or MoldableAllocator("bounded_efficiency")
        self.name = f"mixed-{strategy}"

    # -- dispatch ---------------------------------------------------------------
    def schedule(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        if self.strategy == "separate":
            return self._schedule_separate(jobs, machine_count)
        if self.strategy == "a_priori":
            return self._schedule_a_priori(jobs, machine_count)
        return self._schedule_first_fit_batch(jobs, machine_count)

    # -- strategy 1: schedule one category after the other ------------------------
    def _schedule_separate(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        rigid = [j for j in jobs if isinstance(j, RigidJob)]
        moldable = [j for j in jobs if not isinstance(j, RigidJob)]
        start = max((j.release_date for j in jobs), default=0.0)
        result = Schedule(machine_count)
        now = start
        if moldable:
            part = self.moldable_policy.schedule(moldable, machine_count, start_time=now)
            result = result.merge(part)
            now = max(now, part.makespan())
        if rigid:
            ordered = sort_jobs(rigid, "lpt")
            part = list_schedule_rigid(
                [(j, j.nbproc) for j in ordered], machine_count, start_time=now
            )
            result = result.merge(part)
        return result

    # -- strategy 2: a-priori allocation then a rigid policy -----------------------
    def _schedule_a_priori(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        frozen: List[Tuple[Job, int]] = []
        for job in sort_jobs(list(jobs), "lpt"):
            nbproc = self.allocator.allocate(job, machine_count)
            frozen.append((job, nbproc))
        start = max((j.release_date for j in jobs), default=0.0)
        return list_schedule_rigid(frozen, machine_count, start_time=start)

    # -- strategy 3: rigid jobs inserted in the first batch in which they fit -------
    def _schedule_first_fit_batch(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        """Bi-criteria batches where each rigid job joins the first batch it fits in.

        The moldable jobs drive the doubling-deadline batch structure (as in
        :class:`~repro.core.policies.bicriteria.BiCriteriaScheduler`); every
        rigid job is admitted in the first batch whose deadline covers its
        duration and whose residual area can accommodate it.
        """

        moldable = [j for j in jobs if not isinstance(j, RigidJob)]
        rigid = sorted(
            (j for j in jobs if isinstance(j, RigidJob)),
            key=lambda j: (j.duration * j.nbproc / max(j.weight, 1e-12), j.name),
        )
        remaining_moldable = sorted(moldable, key=lambda j: (j.release_date, j.name))
        remaining_rigid = list(rigid)
        result = Schedule(machine_count)
        all_jobs = list(jobs)
        now = min(j.release_date for j in all_jobs)
        deadline = max(min((min_runtime(j) for j in all_jobs)), 1e-9)
        guard = 0
        while remaining_moldable or remaining_rigid:
            guard += 1
            if guard > 4 * len(all_jobs) + 128:
                raise SchedulerError("first-fit-batch mixing did not converge")
            ready_moldable = [j for j in remaining_moldable if j.release_date <= now + 1e-12]
            ready_rigid = [j for j in remaining_rigid if j.release_date <= now + 1e-12]
            if not ready_moldable and not ready_rigid:
                now = min(j.release_date for j in remaining_moldable + remaining_rigid)
                continue
            budget = deadline * machine_count
            used = 0.0
            batch: List[Tuple[Job, int]] = []
            # Rigid jobs first: "schedule each rigid job in the first batch in
            # which it fits".
            for job in ready_rigid:
                if job.duration > deadline + 1e-12:
                    continue
                area = job.duration * job.nbproc
                if used + area > budget + 1e-9:
                    continue
                batch.append((job, job.nbproc))
                used += area
            # Then fill with moldable jobs in WSPT order.
            for job in sorted(
                ready_moldable,
                key=lambda j: (min_work(j) / max(j.weight, 1e-12), j.name),
            ):
                if min_runtime(job) > deadline + 1e-12:
                    continue
                area = min_work(job)
                if used + area > budget + 1e-9:
                    continue
                nbproc = self.allocator.allocate(job, machine_count)
                # Keep the allocation within the deadline if possible.
                if isinstance(job, MoldableJob):
                    fitting = job.canonical_allocation(deadline)
                    if fitting is not None:
                        nbproc = max(nbproc, fitting) if job.runtime(nbproc) > deadline else nbproc
                        if job.runtime(nbproc) > deadline + 1e-12:
                            nbproc = fitting
                batch.append((job, nbproc))
                used += area
            if not batch:
                deadline *= 2.0
                continue
            ordered = sorted(batch, key=lambda t: (-t[0].runtime(t[1]), t[0].name))
            part = list_schedule_rigid(ordered, machine_count, start_time=now)
            result = result.merge(part)
            for job, _ in batch:
                if isinstance(job, RigidJob):
                    remaining_rigid.remove(job)
                else:
                    remaining_moldable.remove(job)
            now = max(now, part.makespan())
            deadline *= 2.0
        return result
