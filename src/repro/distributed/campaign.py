"""Resumable campaign journal: completed cells survive a killed campaign.

A *campaign* is one sweep routed through the distributed scheduler.  The
journal is an append-only JSONL file: one line per completed cell, keyed by
:func:`repro.experiments.grid.cell_key` over the cell's configuration, seed
and a fingerprint of the run function
(:func:`repro.experiments.harness.run_fingerprint` -- the same versioning
the on-disk :class:`~repro.experiments.cache.ResultCache` uses, so editing
the experiment invalidates journal entries automatically).

When a campaign is killed and restarted against the same journal file, the
scheduler replays the journaled outcomes without re-executing them and only
queues the incomplete cells.  Appends are flushed line-by-line; a line
truncated by a crash mid-write is skipped on load (everything before it is
still recovered).

Like the cell cache -- and through the very same
:func:`~repro.experiments.cache.encode_replayable` helper -- only metrics
that survive a JSON round-trip unchanged are journaled; cells returning
rich Python objects are re-executed on resume (correct, just not
accelerated).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments.cache import decode_replayed, encode_replayable
from repro.experiments.grid import Cell, CellOutcome, cell_key

#: The ``experiment`` label under which journal keys are derived.  The run
#: function fingerprint (folded into the key's ``version``) already pins the
#: campaign's identity, so a constant label keeps keys stable across the
#: harness' varying experiment names.
JOURNAL_EXPERIMENT = "campaign"


def journal_key(cell: Cell, version: str) -> str:
    return cell_key(JOURNAL_EXPERIMENT, cell, version)


def load_journal_entries(path: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """All complete entries of a journal file, keyed by cell key.

    Tolerates a missing file and a trailing line truncated by a crash
    mid-append (everything before it is still recovered).  Shared by
    :class:`CampaignJournal` and :func:`repro.store.ingest.ingest_journal`.
    """

    loaded: Dict[str, Dict[str, Any]] = {}
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return loaded
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # a line truncated by a crash mid-append
        if isinstance(entry, dict) and isinstance(entry.get("key"), str):
            loaded[entry["key"]] = entry
    return loaded


class CampaignJournal:
    """An on-disk JSONL record of completed campaign cells."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._entries: Optional[Dict[str, Dict[str, Any]]] = None

    @classmethod
    def coerce(
        cls, journal: Union[None, str, Path, "CampaignJournal"]
    ) -> Optional["CampaignJournal"]:
        if journal is None or isinstance(journal, CampaignJournal):
            return journal
        return cls(journal)

    def __repr__(self) -> str:
        return f"CampaignJournal({str(self.path)!r})"

    # -- reading ------------------------------------------------------------

    def entries(self) -> Dict[str, Dict[str, Any]]:
        """All journaled entries, keyed by cell key (loaded once, then live)."""

        with self._lock:
            if self._entries is None:
                self._entries = self._load()
            return self._entries

    def _load(self) -> Dict[str, Dict[str, Any]]:
        return load_journal_entries(self.path)

    def __len__(self) -> int:
        return len(self.entries())

    def lookup(self, cell: Cell, version: str) -> Optional[CellOutcome]:
        """The journaled outcome of ``cell``, or ``None`` when incomplete."""

        entry = self.entries().get(journal_key(cell, version))
        if entry is None:
            return None
        return decode_replayed(cell, entry)

    # -- writing ------------------------------------------------------------

    def record(self, cell: Cell, outcome: CellOutcome, version: str) -> bool:
        """Append a successful outcome; returns False when not journalable."""

        replayable = encode_replayable(outcome)
        if replayable is None:
            return False
        entry = {
            "key": journal_key(cell, version),
            "params": cell.params_dict,
            "seed": cell.seed,
            "repetition": cell.repetition,
            **replayable,
        }
        try:
            line = json.dumps(entry, sort_keys=True)
        except (TypeError, ValueError):
            return False  # non-JSON cell parameters
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            if self._entries is not None:
                self._entries[entry["key"]] = entry
        return True

    # -- unified results API (repro.store.api.RowSink / RowSource) ----------
    # The journal keys on the run fingerprint alone (JOURNAL_EXPERIMENT is a
    # constant label), so the protocol adapters ignore ``experiment``.

    def write(self, experiment: str, cell: Cell, outcome: CellOutcome, version: str = "") -> bool:
        if outcome.failed:
            return False
        return self.record(cell, outcome, version)

    def replay(self, experiment: str, cell: Cell, version: str = "") -> Optional[CellOutcome]:
        return self.lookup(cell, version)

    def flush(self) -> None:
        """Appends are flushed line-by-line; nothing buffered to push."""
