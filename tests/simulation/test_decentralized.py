"""Unit tests of the decentralized load-exchange grid simulator (section 5.2)."""

import pytest

from repro.core.job import MoldableJob, RigidJob
from repro.platform.generators import homogeneous_cluster
from repro.platform.grid import GridLink, LightGrid
from repro.simulation.decentralized import DecentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs


def two_cluster_grid():
    return LightGrid(
        "duo",
        [homogeneous_cluster("busy", 4, community="busy-community"),
         homogeneous_cluster("idle", 4, community="idle-community")],
        [GridLink("busy", "idle", bandwidth=1000.0, latency=0.01)],
    )


def overloaded_submissions(n_jobs=16, seed=1):
    """Everything is submitted to the 'busy' cluster, nothing to 'idle'."""

    jobs = generate_moldable_jobs(n_jobs, 4, random_state=seed)
    jobs = poisson_arrivals(jobs, rate=5.0, random_state=seed)
    return {"busy": jobs, "idle": []}


class TestDecentralizedGridSimulator:
    def test_invalid_arguments(self):
        grid = two_cluster_grid()
        with pytest.raises(ValueError):
            DecentralizedGridSimulator(grid, imbalance_threshold=-1.0)
        with pytest.raises(ValueError):
            DecentralizedGridSimulator(grid, local_policy="magic")
        with pytest.raises(ValueError):
            DecentralizedGridSimulator(grid).run({"ghost": []})

    def test_all_jobs_complete(self):
        grid = two_cluster_grid()
        result = DecentralizedGridSimulator(grid).run(overloaded_submissions())
        total = sum(len(s) for s in result.schedules.values())
        assert total == 16
        for schedule in result.schedules.values():
            schedule.validate(check_release_dates=False)

    def test_exchange_migrates_jobs_to_the_idle_cluster(self):
        grid = two_cluster_grid()
        simulator = DecentralizedGridSimulator(grid, imbalance_threshold=1.0)
        result = simulator.run(overloaded_submissions(24, seed=2))
        assert result.migrations > 0
        assert len(result.schedules["idle"]) > 0
        assert result.trace.count("migrate") == result.migrations

    def test_exchange_disabled_keeps_everything_local(self):
        grid = two_cluster_grid()
        simulator = DecentralizedGridSimulator(grid, exchange_enabled=False)
        result = simulator.run(overloaded_submissions(24, seed=2))
        assert result.migrations == 0
        assert len(result.schedules["idle"]) == 0
        assert len(result.schedules["busy"]) == 24

    def test_exchange_improves_mean_flow_under_imbalance(self):
        """Load exchange reduces the mean response time when one cluster is
        overloaded and the other idle (the whole point of the protocol)."""

        grid = two_cluster_grid()
        submissions = overloaded_submissions(30, seed=3)
        with_exchange = DecentralizedGridSimulator(grid, imbalance_threshold=0.5).run(submissions)
        without_exchange = DecentralizedGridSimulator(grid, exchange_enabled=False).run(submissions)
        assert with_exchange.mean_flow < without_exchange.mean_flow
        assert with_exchange.makespan <= without_exchange.makespan + 1e-9

    def test_migration_keeps_job_owner_for_fairness_accounting(self):
        grid = two_cluster_grid()
        jobs = [MoldableJob(name=f"m{i}", runtimes=[20.0], owner="busy-community")
                for i in range(12)]
        result = DecentralizedGridSimulator(grid, imbalance_threshold=0.5).run(
            {"busy": jobs, "idle": []}
        )
        migrated_names = set(result.migrated_jobs)
        assert migrated_names
        # A migrated job may bounce between clusters if the imbalance flips;
        # wherever it ends up, it runs exactly once and keeps its owner.
        for name in migrated_names:
            entries = [s[name] for s in result.schedules.values() if name in s]
            assert len(entries) == 1
            assert entries[0].job.owner == "busy-community"
        assert any(name in result.schedules["idle"] for name in migrated_names)
        assert "busy-community" in result.fairness.usage

    def test_jobs_too_large_for_the_target_stay_put(self):
        grid = LightGrid(
            "asym",
            [homogeneous_cluster("large", 8), homogeneous_cluster("small", 2)],
        )
        jobs = [RigidJob(name=f"wide{i}", nbproc=6, duration=10.0, release_date=float(i))
                for i in range(6)]
        result = DecentralizedGridSimulator(grid, imbalance_threshold=0.1).run(
            {"large": jobs, "small": []}
        )
        assert len(result.schedules["small"]) == 0
        assert len(result.schedules["large"]) == 6

    def test_balanced_load_triggers_no_migration(self):
        grid = two_cluster_grid()
        jobs_a = [RigidJob(name=f"a{i}", nbproc=1, duration=1.0) for i in range(4)]
        jobs_b = [RigidJob(name=f"b{i}", nbproc=1, duration=1.0) for i in range(4)]
        result = DecentralizedGridSimulator(grid, imbalance_threshold=2.0).run(
            {"busy": jobs_a, "idle": jobs_b}
        )
        assert result.migrations == 0

    def test_fairness_report_present(self):
        grid = two_cluster_grid()
        result = DecentralizedGridSimulator(grid).run(overloaded_submissions(10, seed=4))
        assert 0.0 < result.fairness.fairness_on_work <= 1.0 + 1e-9
        assert result.horizon > 0
