"""repro -- Models for scheduling on large scale platforms.

A reproduction of Dutot, Eyraud, Mounié and Trystram, *"Models for scheduling
on large scale platforms: which policy for which application?"* (IPDPS 2004):
Parallel-Task and Divisible-Load scheduling policies, the discrete-event
cluster / light-grid simulators they run on, the synthetic workloads of the
CIMENT communities, and the experiment harness that regenerates the paper's
figures.

Package map
-----------
``repro.core``
    Job models, criteria, lower bounds, PT policies and DLT algorithms (the
    paper's contribution).
``repro.platform``
    Machines, clusters, light grids, the CIMENT platform of Figure 3.
``repro.simulation``
    Discrete-event engine, single-cluster and grid simulators (centralized
    best-effort and decentralized load exchange).
``repro.runtime``
    The unified job-lifecycle core those simulators are configurations of:
    one state machine, pluggable hooks, one ``SimulationRecord`` result.
``repro.workload``
    Synthetic workload generators (rigid / moldable jobs, multi-parametric
    bags, community profiles), arrival processes, SWF I/O.
``repro.metrics``
    Performance ratios, fairness, aggregation of repeated runs.
``repro.experiments``
    The experiment harness and the Figure 2 / ratio-check experiments.
"""

from repro.core.job import (
    DivisibleJob,
    Job,
    JobKind,
    MalleableJob,
    MoldableJob,
    ParametricSweep,
    RigidJob,
)
from repro.core.allocation import Allocation, Reservation, Schedule, ScheduledJob
from repro.core import bounds, criteria, dlt, policies, speedup
from repro.platform import Cluster, LightGrid, Machine, ciment_grid
from repro.simulation import (
    CentralizedGridSimulator,
    ClusterSimulator,
    DecentralizedGridSimulator,
    Simulator,
)
from repro.runtime import RunRecord, SchedulingRuntime, SimulationRecord
from repro.core.policies import SchedulingPolicy, make_policy, policy_names
from repro.workload import figure2_workload, generate_moldable_jobs, generate_rigid_jobs
from repro.metrics import schedule_ratios
from repro.experiments import run_figure2, Figure2Config

__version__ = "1.0.0"

__all__ = [
    "Job",
    "JobKind",
    "RigidJob",
    "MoldableJob",
    "MalleableJob",
    "DivisibleJob",
    "ParametricSweep",
    "Allocation",
    "Reservation",
    "Schedule",
    "ScheduledJob",
    "bounds",
    "criteria",
    "dlt",
    "policies",
    "speedup",
    "Machine",
    "Cluster",
    "LightGrid",
    "ciment_grid",
    "Simulator",
    "ClusterSimulator",
    "CentralizedGridSimulator",
    "DecentralizedGridSimulator",
    "SchedulingRuntime",
    "SimulationRecord",
    "RunRecord",
    "SchedulingPolicy",
    "make_policy",
    "policy_names",
    "figure2_workload",
    "generate_moldable_jobs",
    "generate_rigid_jobs",
    "schedule_ratios",
    "run_figure2",
    "Figure2Config",
    "__version__",
]
