"""RATIO-SMART: the SMART shelf algorithm of section 4.3 (ratios 8 and 8.53).

Rigid jobs are scheduled with the SMART power-of-two shelves ordered by the
single-machine WSPT rule; the measured (weighted) sum of completion times is
compared to the squashed-area lower bound.  The paper states ratios of 8
(unweighted) and 8.53 (weighted); the observed ratios are far smaller, and
the benchmark also reports how much the WSPT shelf ordering gains over plain
first-fit shelf stacking (FFDH), i.e. "this ratio can be improved using more
complex scheduling algorithms within batches".  The (weighted, jobs) grid
goes through the parallel sweep harness.
"""

from __future__ import annotations


from repro.core.bounds import (
    performance_ratio,
    sum_completion_lower_bound,
    weighted_completion_lower_bound,
)
from repro.core.criteria import sum_completion_times, weighted_completion_time
from repro.core.policies.shelf import ShelfScheduler, SmartShelfScheduler
from repro.experiments.reporting import ascii_table
from repro.workload.models import WorkloadConfig, generate_rigid_jobs

MACHINES = 64
JOB_COUNTS = (40, 100, 200)


def run_smart_cell(seed, weighted, jobs):
    """One sweep cell: SMART vs FFDH shelves on one rigid instance."""

    scheme = "random" if weighted else "unit"
    workload = generate_rigid_jobs(
        jobs, MACHINES, config=WorkloadConfig(weight_scheme=scheme),
        random_state=jobs + (1000 if weighted else 0),
    )
    smart_schedule = SmartShelfScheduler().schedule(workload, MACHINES)
    ffdh_schedule = ShelfScheduler("ffdh").schedule(workload, MACHINES)
    smart_schedule.validate()
    if weighted:
        value = weighted_completion_time(smart_schedule)
        baseline = weighted_completion_time(ffdh_schedule)
        bound = weighted_completion_lower_bound(workload, MACHINES)
        stated = 8.53
    else:
        value = sum_completion_times(smart_schedule)
        baseline = sum_completion_times(ffdh_schedule)
        bound = sum_completion_lower_bound(workload, MACHINES)
        stated = 8.0
    return {
        "criterion": "sum wC" if weighted else "sum C",
        "smart_ratio": performance_ratio(value, bound),
        "ffdh_ratio": performance_ratio(baseline, bound),
        "stated_bound": stated,
    }


def test_smart_shelves_ratio(run_sweep, report):
    result = run_sweep("ratio-smart", run_smart_cell,
                       {"weighted": (False, True), "jobs": JOB_COUNTS})
    rows = result.rows
    report("RATIO-SMART: SMART shelves for (weighted) completion time", ascii_table(rows))
    for row in rows:
        assert row["smart_ratio"] <= row["stated_bound"] + 1e-9
    # The WSPT ordering of shelves helps on average compared to FFDH stacking.
    mean_smart = sum(r["smart_ratio"] for r in rows) / len(rows)
    mean_ffdh = sum(r["ffdh_ratio"] for r in rows) / len(rows)
    assert mean_smart <= mean_ffdh + 1e-9
