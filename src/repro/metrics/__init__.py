"""Evaluation metrics: performance ratios, fairness, aggregation.

* :mod:`repro.metrics.ratios` -- performance ratios of a schedule against the
  lower bounds of :mod:`repro.core.bounds` (the quantities plotted in
  Figure 2);
* :mod:`repro.metrics.fairness` -- per-community usage and fairness indices
  for the grid experiments (section 5.2: "guarantee a kind of fairness
  between the different communities");
* :mod:`repro.metrics.aggregate` -- aggregation of repeated experiments
  (means, percentiles, confidence half-widths).
"""

from repro.metrics.ratios import RatioReport, schedule_ratios
from repro.metrics.fairness import community_usage, jain_fairness_index, fairness_report
from repro.metrics.aggregate import aggregate_runs, summarize

__all__ = [
    "RatioReport",
    "schedule_ratios",
    "community_usage",
    "jain_fairness_index",
    "fairness_report",
    "aggregate_runs",
    "summarize",
]
