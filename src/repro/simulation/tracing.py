"""Execution traces of the simulators.

A :class:`Trace` is an append-only list of :class:`TraceEvent` records
(submission, start, completion, kill, resubmission, ...).  The grid metrics
(best-effort kill counts, per-community usage, ...) are computed from traces,
and the traces can be exported to CSV-style records or converted into a
:class:`repro.core.allocation.Schedule` for Gantt rendering.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

EVENT_KINDS = (
    "submit",
    "start",
    "complete",
    "kill",
    "resubmit",
    "reserve",
    "release",
    "migrate",
    "reject",
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event of a simulation."""

    time: float
    kind: str
    job: str
    cluster: Optional[str] = None
    processors: Tuple[int, ...] = ()
    info: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("trace event with negative time")


class Trace:
    """Append-only list of simulation events with query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(
        self,
        time: float,
        kind: str,
        job: str,
        *,
        cluster: Optional[str] = None,
        processors: Sequence[int] = (),
        info: str = "",
    ) -> TraceEvent:
        event = TraceEvent(
            time=time,
            kind=kind,
            job=job,
            cluster=cluster,
            processors=tuple(processors),
            info=info,
        )
        self._events.append(event)
        return event

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self, kind: Optional[str] = None, job: Optional[str] = None) -> List[TraceEvent]:
        out = self._events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if job is not None:
            out = [e for e in out if e.job == job]
        return list(out)

    def count(self, kind: str, job: Optional[str] = None) -> int:
        return len(self.events(kind, job))

    def completion_time(self, job: str) -> Optional[float]:
        """Time of the *last* completion event of ``job`` (None if never completed)."""

        times = [e.time for e in self._events if e.kind == "complete" and e.job == job]
        return max(times) if times else None

    def first_start(self, job: str) -> Optional[float]:
        times = [e.time for e in self._events if e.kind == "start" and e.job == job]
        return min(times) if times else None

    def kills(self, job: Optional[str] = None) -> int:
        """Number of best-effort kill events (section 5.2, centralized organisation)."""

        return self.count("kill", job)

    def busy_intervals(self, cluster: Optional[str] = None) -> List[Tuple[str, float, float, int]]:
        """(job, start, end, nbproc) intervals reconstructed from start/complete/kill events."""

        open_intervals: Dict[Tuple[str, Optional[str]], Tuple[float, int]] = {}
        intervals: List[Tuple[str, float, float, int]] = []
        for event in self._events:
            if cluster is not None and event.cluster != cluster:
                continue
            key = (event.job, event.cluster)
            if event.kind == "start":
                open_intervals[key] = (event.time, len(event.processors))
            elif event.kind in ("complete", "kill") and key in open_intervals:
                start, nbproc = open_intervals.pop(key)
                intervals.append((event.job, start, event.time, nbproc))
        return intervals

    def utilization(self, machine_count: int, horizon: float, cluster: Optional[str] = None) -> float:
        """Fraction of the processor-time area busy up to ``horizon``."""

        if machine_count < 1:
            raise ValueError("machine_count must be >= 1")
        if horizon <= 0:
            return 0.0
        busy = 0.0
        for _job, start, end, nbproc in self.busy_intervals(cluster):
            busy += max(0.0, min(end, horizon) - min(start, horizon)) * nbproc
        return busy / (machine_count * horizon)

    # -- export ----------------------------------------------------------------
    def to_records(self) -> List[Dict[str, object]]:
        return [
            {
                "time": e.time,
                "kind": e.kind,
                "job": e.job,
                "cluster": e.cluster,
                "processors": list(e.processors),
                "info": e.info,
            }
            for e in self._events
        ]

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time", "kind", "job", "cluster", "processors", "info"])
        for e in self._events:
            writer.writerow(
                [f"{e.time:.6f}", e.kind, e.job, e.cluster or "",
                 " ".join(map(str, e.processors)), e.info]
            )
        return buffer.getvalue()
