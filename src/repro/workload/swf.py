"""Minimal Standard Workload Format (SWF) support.

The Standard Workload Format is the de-facto interchange format of the
parallel workload archive: one line per job with 18 whitespace-separated
fields.  Only the fields relevant to this library are interpreted:

==  ==========================  ======================================
#   SWF field                   mapping
==  ==========================  ======================================
1   job number                  job name (``job-<number>``)
2   submit time                 ``release_date``
4   run time                    runtime of the allocated processor count
5   number of allocated procs   ``nbproc`` (rigid view)
11  requested memory            ignored
12  requested time              ignored (clairvoyant runtimes are used)
15  user id                     ``owner``
==  ==========================  ======================================

Export writes rigid jobs (moldable jobs are exported with their minimal
allocation); import produces :class:`repro.core.job.RigidJob` objects.  This
is enough to replay external traces through the policies and to dump
generated workloads for inspection with external tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.core.job import Job, MoldableJob, RigidJob

SWF_FIELDS = 18

#: Header fields of the SWF specification that are interpreted numerically
#: when present (``; MaxJobs: 1000`` style comment lines).  Everything else
#: is kept verbatim in :attr:`SWFHeader.extra`.
_NUMERIC_HEADER_FIELDS = (
    "Version",
    "MaxJobs",
    "MaxRecords",
    "MaxNodes",
    "MaxProcs",
    "UnixStartTime",
    "TimeZone",
    "MaxRuntime",
    "MaxMemory",
    "MaxQueues",
    "MaxPartitions",
)


@dataclass
class SWFHeader:
    """Metadata parsed from the ``;`` comment header of an SWF trace.

    Real archive files carry a ``; Key: Value`` header block, but traces in
    the wild are frequently truncated or carry non-standard fields; parsing
    is therefore *tolerant*: missing fields stay ``None`` / absent, unknown
    fields land in :attr:`extra`, and malformed comment lines are counted in
    :attr:`malformed_lines` instead of raising.
    """

    computer: Optional[str] = None
    version: Optional[float] = None
    max_jobs: Optional[int] = None
    max_nodes: Optional[int] = None
    max_procs: Optional[int] = None
    unix_start_time: Optional[int] = None
    #: Every ``Key: Value`` pair of the header, verbatim (including the ones
    #: mapped to the typed attributes above).
    fields: Dict[str, str] = field(default_factory=dict)
    #: Non-standard fields (anything not in the SWF field list).
    extra: Dict[str, str] = field(default_factory=dict)
    #: Comment lines that did not parse as ``Key: Value`` (truncated headers).
    malformed_lines: int = 0

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.fields.get(name, default)


def parse_swf_header(text: Union[str, TextIO]) -> SWFHeader:
    """Parse the comment header of an SWF trace, tolerantly.

    Accepts the whole trace text (data lines are ignored); never raises on
    missing, extra, duplicated or truncated header fields.
    """

    if hasattr(text, "read"):
        text = text.read()  # type: ignore[union-attr]
    assert isinstance(text, str)
    header = SWFHeader()
    known = set(_NUMERIC_HEADER_FIELDS) | {
        "Computer", "Installation", "Acknowledge", "Information", "Conversion",
        "StartTime", "EndTime", "Note", "Queues", "Queue", "Partitions",
        "Partition", "Preemption", "AllowOveruse",
    }
    for raw in text.splitlines():
        line = raw.strip()
        if not line.startswith(";"):
            continue
        body = line.lstrip(";").strip()
        if not body:
            continue
        key, sep, value = body.partition(":")
        key = key.strip()
        value = value.strip()
        # A header field is a single capitalised word followed by ':'.  Free
        # text comments (or lines truncated mid-key) are tolerated silently;
        # a key without any value counts as malformed but still not fatal.
        if not sep or not key or " " in key:
            header.malformed_lines += 1
            continue
        header.fields.setdefault(key, value)
        if key not in known:
            header.extra.setdefault(key, value)
        if key == "Computer":
            header.computer = header.computer or value
        elif key in _NUMERIC_HEADER_FIELDS:
            try:
                number = float(value.split()[0]) if value else None
            except ValueError:
                header.malformed_lines += 1
                continue
            if number is None:
                header.malformed_lines += 1
            elif key == "Version":
                header.version = header.version or number
            elif key == "MaxJobs":
                header.max_jobs = header.max_jobs or int(number)
            elif key == "MaxNodes":
                header.max_nodes = header.max_nodes or int(number)
            elif key == "MaxProcs":
                header.max_procs = header.max_procs or int(number)
            elif key == "UnixStartTime":
                header.unix_start_time = (
                    header.unix_start_time
                    if header.unix_start_time is not None
                    else int(number)
                )
    return header


def jobs_to_swf(jobs: Sequence[Job], *, comment: str = "") -> str:
    """Serialise jobs to SWF text (one line per job, 18 fields)."""

    lines: List[str] = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"; {row}")
    for index, job in enumerate(sorted(jobs, key=lambda j: (j.release_date, j.name)), start=1):
        if isinstance(job, RigidJob):
            nbproc, runtime = job.nbproc, job.duration
        elif isinstance(job, MoldableJob):
            nbproc = job.min_procs
            runtime = job.runtime(nbproc)
        else:
            raise TypeError(f"cannot export job of type {type(job)!r} to SWF")
        fields = [-1] * SWF_FIELDS
        fields[0] = index
        fields[1] = job.release_date
        fields[2] = 0            # wait time (unknown before scheduling)
        fields[3] = runtime
        fields[4] = nbproc
        fields[7] = nbproc       # requested processors
        fields[8] = runtime      # requested time (clairvoyant)
        fields[11] = job.weight
        fields[14] = job.owner or -1
        line = " ".join(
            f"{f:.4f}" if isinstance(f, float) else str(f) for f in fields
        )
        lines.append(line)
    return "\n".join(lines) + "\n"


def swf_to_jobs(text: Union[str, TextIO], *, strict: bool = False) -> List[RigidJob]:
    """Parse SWF text into rigid jobs.

    Comment lines (``;`` / ``#``) are skipped -- use :func:`parse_swf_header`
    to interpret them.  Archive traces are frequently truncated mid-file or
    carry header lines that lost their comment marker, so by default
    malformed data lines (too few fields, non-numeric values) are skipped
    instead of raising; pass ``strict=True`` to turn them into
    :class:`ValueError` again.
    """

    if hasattr(text, "read"):
        text = text.read()  # type: ignore[union-attr]
    assert isinstance(text, str)
    jobs: List[RigidJob] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";") or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 5:
            if strict:
                raise ValueError(
                    f"SWF line {line_number}: expected at least 5 fields, got {len(parts)}"
                )
            continue
        job_id = parts[0]
        try:
            submit = float(parts[1])
            runtime = float(parts[3])
            nbproc = int(float(parts[4]))
        except ValueError:
            if strict:
                raise ValueError(
                    f"SWF line {line_number}: non-numeric job fields: {line!r}"
                ) from None
            continue
        if runtime <= 0 or nbproc <= 0:
            # The archive uses -1 for unknown values; such jobs are skipped.
            continue
        weight = 1.0
        if len(parts) > 11:
            try:
                candidate = float(parts[11])
                if candidate > 0:
                    weight = candidate
            except ValueError:
                pass
        owner: Optional[str] = None
        if len(parts) > 14 and parts[14] not in ("-1", ""):
            owner = parts[14]
        jobs.append(
            RigidJob(
                name=f"job-{job_id}",
                release_date=max(0.0, submit),
                nbproc=nbproc,
                duration=runtime,
                weight=weight,
                owner=owner,
            )
        )
    return jobs
