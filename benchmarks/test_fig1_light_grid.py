"""FIG1-GRID: Figure 1 -- "A light grid".

Figure 1 is an architecture sketch: a few clusters in the same geographical
area, each with its own submission queue, connected by a campus network.  The
benchmark builds a random light grid with the structure of the figure (highly
heterogeneous between clusters, weakly heterogeneous inside), runs a mixed
local + grid workload through the centralized simulator and reports the
per-cluster utilisation -- the quantity the light-grid design is meant to
improve ("leading to an overall better use of these resources").
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import ascii_table
from repro.platform.generators import random_light_grid
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs
from repro.workload.parametric import generate_parametric_bags


def build_and_simulate():
    grid = random_light_grid(n_clusters=3, nodes_range=(20, 60), cores_per_node=2,
                             random_state=1, name="figure1-light-grid")
    local = {}
    for index, cluster in enumerate(grid):
        jobs = generate_moldable_jobs(15, cluster.processor_count,
                                      random_state=100 + index,
                                      name_prefix=f"{cluster.name}-job")
        local[cluster.name] = poisson_arrivals(jobs, rate=2.0, random_state=200 + index)
    bags = generate_parametric_bags(2, runs_range=(100, 200), run_time_range=(0.2, 0.5),
                                    random_state=3)
    simulator = CentralizedGridSimulator(grid, local_policy="backfill")
    result = simulator.run(local, bags)
    return grid, result


def test_figure1_light_grid_structure_and_utilization(run_once, report):
    grid, result = run_once(build_and_simulate)

    rows = []
    for cluster in grid:
        rows.append(
            {
                "cluster": cluster.name,
                "nodes": cluster.node_count,
                "processors": cluster.processor_count,
                "interconnect": cluster.interconnect.name,
                "utilization": result.utilization[cluster.name],
                "local_makespan": result.local_criteria[cluster.name].makespan,
            }
        )
    report("Figure 1: a light grid (3 clusters + submission queues)",
           grid.summary() + "\n\n" + ascii_table(rows))

    # Structure of Figure 1: a few clusters, each with its own queue.
    assert 2 <= len(grid) <= 5
    assert grid.processor_count == sum(c.processor_count for c in grid)
    # Every local workload completed and the grid bags were executed.
    assert result.total_runs_completed == 2 * 0 + sum(
        bag_runs for bag_runs in result.runs_completed.values()
    )
    assert all(result.runs_completed.values())
    # Best-effort filling keeps the clusters busy without disturbing local jobs.
    assert all(0.0 < u <= 1.0 + 1e-9 for u in result.utilization.values())
