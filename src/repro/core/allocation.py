"""Schedules: allocations, start times, validation and Gantt export.

A :class:`Schedule` is the common output format of every Parallel-Task policy
in :mod:`repro.core.policies` and the common input of every criterion in
:mod:`repro.core.criteria`.  It stores one :class:`ScheduledJob` per job:
the start time, the set of processor indices used, and the resulting
completion time.

The class knows how to *validate* itself (no processor runs two jobs at the
same time, release dates and reservations are respected, allocations match
the job model), which the test-suite and the simulators use extensively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.job import Job, MoldableJob, RigidJob


@dataclass(frozen=True)
class Allocation:
    """A set of processors assigned to a job, with the resulting runtime."""

    processors: Tuple[int, ...]
    runtime: float

    def __post_init__(self) -> None:
        if not self.processors:
            raise ValueError("empty allocation")
        if len(set(self.processors)) != len(self.processors):
            raise ValueError("duplicate processors in allocation")
        if self.runtime <= 0:
            raise ValueError("runtime must be > 0")

    @property
    def nbproc(self) -> int:
        return len(self.processors)

    @property
    def work(self) -> float:
        return self.nbproc * self.runtime


@dataclass(frozen=True)
class ScheduledJob:
    """A job placed in time and space."""

    job: Job
    start: float
    allocation: Allocation

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"job {self.job.name!r}: negative start time")

    @property
    def completion(self) -> float:
        return self.start + self.allocation.runtime

    @property
    def nbproc(self) -> int:
        return self.allocation.nbproc

    @property
    def processors(self) -> Tuple[int, ...]:
        return self.allocation.processors

    def overlaps(self, other: "ScheduledJob") -> bool:
        """True when the two placements overlap in time *and* share a processor."""

        if self.completion <= other.start + 1e-12:
            return False
        if other.completion <= self.start + 1e-12:
            return False
        return bool(set(self.processors) & set(other.processors))


@dataclass(frozen=True)
class Reservation:
    """A block of processors made unavailable during a time window (section 5.1)."""

    processors: Tuple[int, ...]
    start: float
    end: float
    label: str = "reservation"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("reservation must have end > start")
        if not self.processors:
            raise ValueError("reservation must block at least one processor")

    def blocks(self, processor: int, start: float, end: float) -> bool:
        """True if the reservation makes ``processor`` unavailable in [start, end)."""

        if processor not in self.processors:
            return False
        return not (end <= self.start + 1e-12 or start >= self.end - 1e-12)


class Schedule:
    """A complete schedule on ``machine_count`` identical processors.

    The container is mutable while a policy builds it (via :meth:`add`) and
    is usually validated once at the end with :meth:`validate`.
    """

    def __init__(
        self,
        machine_count: int,
        *,
        reservations: Sequence[Reservation] = (),
    ) -> None:
        if machine_count < 1:
            raise ValueError("machine_count must be >= 1")
        self.machine_count = machine_count
        self.reservations: Tuple[Reservation, ...] = tuple(reservations)
        self._entries: Dict[str, ScheduledJob] = {}

    # -- construction ----------------------------------------------------
    def add(
        self,
        job: Job,
        start: float,
        processors: Sequence[int],
        runtime: Optional[float] = None,
    ) -> ScheduledJob:
        """Place ``job`` at ``start`` on ``processors``.

        ``runtime`` defaults to ``job.runtime(len(processors))`` which is the
        correct value for rigid and moldable jobs; simulators that model
        heterogeneous speeds pass the effective runtime explicitly.
        """

        if job.name in self._entries:
            raise ValueError(f"job {job.name!r} already scheduled")
        processors = tuple(map(int, processors))
        for p in processors:
            if not 0 <= p < self.machine_count:
                raise ValueError(
                    f"processor index {p} outside platform of size {self.machine_count}"
                )
        if runtime is None:
            runtime = job.runtime(len(processors))
        entry = ScheduledJob(job=job, start=start, allocation=Allocation(processors, runtime))
        self._entries[job.name] = entry
        return entry

    def add_scheduled(self, entry: ScheduledJob) -> None:
        if entry.job.name in self._entries:
            raise ValueError(f"job {entry.job.name!r} already scheduled")
        for p in entry.processors:
            if not 0 <= p < self.machine_count:
                raise ValueError(
                    f"processor index {p} outside platform of size {self.machine_count}"
                )
        self._entries[entry.job.name] = entry

    def remove(self, job_name: str) -> ScheduledJob:
        return self._entries.pop(job_name)

    def shift(self, delta: float) -> "Schedule":
        """Return a copy of the schedule with every start time shifted by ``delta``."""

        out = Schedule(self.machine_count, reservations=self.reservations)
        for entry in self._entries.values():
            out.add_scheduled(
                ScheduledJob(
                    job=entry.job,
                    start=entry.start + delta,
                    allocation=entry.allocation,
                )
            )
        return out

    def merge(self, other: "Schedule") -> "Schedule":
        """Union of two schedules on the same platform (jobs must be disjoint)."""

        if other.machine_count != self.machine_count:
            raise ValueError("cannot merge schedules on different platform sizes")
        out = Schedule(self.machine_count, reservations=self.reservations + other.reservations)
        for entry in self._entries.values():
            out.add_scheduled(entry)
        for entry in other._entries.values():
            out.add_scheduled(entry)
        return out

    # -- accessors -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job_name: str) -> bool:
        return job_name in self._entries

    def __getitem__(self, job_name: str) -> ScheduledJob:
        return self._entries[job_name]

    def __iter__(self):
        return iter(self._entries.values())

    @property
    def jobs(self) -> List[Job]:
        return [entry.job for entry in self._entries.values()]

    @property
    def entries(self) -> List[ScheduledJob]:
        return list(self._entries.values())

    def completion_times(self) -> Dict[str, float]:
        return {name: e.completion for name, e in self._entries.items()}

    def makespan(self) -> float:
        """Latest completion time, 0 for an empty schedule."""

        if not self._entries:
            return 0.0
        return max(e.completion for e in self._entries.values())

    def total_work(self) -> float:
        return sum(e.allocation.work for e in self._entries.values())

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of the processor-time area actually used up to ``horizon``."""

        horizon = self.makespan() if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        used = 0.0
        for e in self._entries.values():
            used += e.nbproc * max(0.0, min(e.completion, horizon) - min(e.start, horizon))
        return used / (self.machine_count * horizon)

    # -- validation ------------------------------------------------------
    def validate(self, *, check_release_dates: bool = True) -> None:
        """Raise :class:`ScheduleError` if the schedule is infeasible.

        Checks performed:

        * every allocation fits on the platform,
        * rigid jobs got exactly their required processor count and moldable
          jobs an admissible one,
        * no two jobs overlap on a processor,
        * no job overlaps a reservation,
        * (optionally) no job starts before its release date.
        """

        entries = sorted(self._entries.values(), key=lambda e: e.start)
        for entry in entries:
            job = entry.job
            if check_release_dates and entry.start < job.release_date - 1e-9:
                raise ScheduleError(
                    f"job {job.name!r} starts at {entry.start} before its "
                    f"release date {job.release_date}"
                )
            if isinstance(job, RigidJob) and entry.nbproc != job.nbproc:
                raise ScheduleError(
                    f"rigid job {job.name!r} scheduled on {entry.nbproc} "
                    f"processors, requires {job.nbproc}"
                )
            if isinstance(job, MoldableJob):
                if not job.min_procs <= entry.nbproc <= job.max_procs:
                    raise ScheduleError(
                        f"moldable job {job.name!r} scheduled on {entry.nbproc} "
                        f"processors, admissible range is "
                        f"[{job.min_procs}, {job.max_procs}]"
                    )
            for reservation in self.reservations:
                for p in entry.processors:
                    if reservation.blocks(p, entry.start, entry.completion):
                        raise ScheduleError(
                            f"job {job.name!r} overlaps reservation "
                            f"{reservation.label!r} on processor {p}"
                        )
        if not entries:
            return
        # Overlap detection: one vectorized per-processor sweep over all
        # (processor, start, completion) slots at once.  Sorting slots by
        # (processor, start) and comparing adjacent same-processor pairs is
        # the classical interval argument: with intervals sorted by start,
        # any overlap implies an *adjacent* overlap.  The slow per-pair loop
        # below only re-runs when a violation was detected, to produce the
        # same diagnostic as before.
        counts = [entry.nbproc for entry in entries]
        total = sum(counts)
        procs = np.fromiter(
            (p for entry in entries for p in entry.processors),
            dtype=np.int64,
            count=total,
        )
        starts = np.repeat(np.array([entry.start for entry in entries]), counts)
        ends = np.repeat(np.array([entry.completion for entry in entries]), counts)
        order = np.lexsort((starts, procs))
        p_sorted = procs[order]
        s_sorted = starts[order]
        e_sorted = ends[order]
        same = p_sorted[1:] == p_sorted[:-1]
        if bool((same & (s_sorted[1:] < e_sorted[:-1] - 1e-9)).any()):
            per_proc: Dict[int, List[ScheduledJob]] = {}
            for entry in entries:
                for p in entry.processors:
                    per_proc.setdefault(p, []).append(entry)
            for p, plist in per_proc.items():
                plist.sort(key=lambda e: e.start)
                for prev, nxt in zip(plist, plist[1:]):
                    if nxt.start < prev.completion - 1e-9:
                        raise ScheduleError(
                            f"jobs {prev.job.name!r} and {nxt.job.name!r} overlap "
                            f"on processor {p} "
                            f"([{prev.start}, {prev.completion}) vs "
                            f"[{nxt.start}, {nxt.completion}))"
                        )
            raise AssertionError(
                "vectorized overlap sweep flagged a violation the per-pair "
                "scan did not find"
            )  # pragma: no cover - guards a checker mismatch

    def is_valid(self, *, check_release_dates: bool = True) -> bool:
        try:
            self.validate(check_release_dates=check_release_dates)
        except ScheduleError:
            return False
        return True

    # -- export ----------------------------------------------------------
    def to_gantt(self, *, width: int = 78) -> str:
        """Render a small ASCII Gantt chart (one line per processor)."""

        makespan = self.makespan()
        if makespan == 0:
            return "(empty schedule)"
        scale = width / makespan
        rows = []
        labels = {}
        letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
        for i, name in enumerate(sorted(self._entries)):
            labels[name] = letters[i % len(letters)]
        for p in range(self.machine_count):
            row = ["."] * width
            for entry in self._entries.values():
                if p not in entry.processors:
                    continue
                lo = int(entry.start * scale)
                hi = max(lo + 1, int(entry.completion * scale))
                for x in range(lo, min(hi, width)):
                    row[x] = labels[entry.job.name]
            rows.append(f"P{p:03d} |" + "".join(row) + "|")
        legend = ", ".join(f"{labels[n]}={n}" for n in sorted(self._entries))
        return "\n".join(rows) + "\n" + legend

    def to_records(self) -> List[Dict[str, object]]:
        """Export as a list of plain dicts (for CSV / JSON dumps)."""

        records = []
        for entry in sorted(self._entries.values(), key=lambda e: (e.start, e.job.name)):
            records.append(
                {
                    "job": entry.job.name,
                    "start": entry.start,
                    "completion": entry.completion,
                    "nbproc": entry.nbproc,
                    "processors": list(entry.processors),
                    "release_date": entry.job.release_date,
                    "weight": entry.job.weight,
                    "owner": entry.job.owner,
                }
            )
        return records

    def __repr__(self) -> str:
        return (
            f"Schedule(machines={self.machine_count}, jobs={len(self)}, "
            f"makespan={self.makespan():.3f})"
        )


class ScheduleError(RuntimeError):
    """Raised by :meth:`Schedule.validate` on an infeasible schedule."""


def pack_contiguously(
    machine_count: int,
    placements: Iterable[Tuple[Job, float, int]],
) -> Schedule:
    """Helper turning (job, start, nbproc) triples into concrete processor sets.

    Jobs are assigned to concrete processor indices greedily: at each start
    time the lowest-numbered processors that are free for the whole duration
    of the job are used.  The input placements must already be feasible in
    the "profile" sense (at every instant the total requested processor count
    is at most ``machine_count``); otherwise a :class:`ScheduleError` is
    raised.
    """

    schedule = Schedule(machine_count)
    # free_at[p] = time at which processor p becomes free
    busy: List[List[Tuple[float, float]]] = [[] for _ in range(machine_count)]

    def is_free(p: int, start: float, end: float) -> bool:
        for (s, e) in busy[p]:
            if not (end <= s + 1e-12 or start >= e - 1e-12):
                return False
        return True

    for job, start, nbproc in sorted(placements, key=lambda t: (t[1], t[0].name)):
        runtime = job.runtime(nbproc)
        end = start + runtime
        chosen: List[int] = []
        for p in range(machine_count):
            if is_free(p, start, end):
                chosen.append(p)
                if len(chosen) == nbproc:
                    break
        if len(chosen) < nbproc:
            raise ScheduleError(
                f"cannot place job {job.name!r} at t={start}: needs {nbproc} "
                f"processors, only {len(chosen)} free"
            )
        for p in chosen:
            busy[p].append((start, end))
        schedule.add(job, start, chosen, runtime)
    return schedule
