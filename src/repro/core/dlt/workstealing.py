"""Dynamic divisible-load distribution with a work-stealing strategy.

The third distribution mode mentioned in section 2.1 ("dynamically with a
work stealing strategy", citing Blumofe and Leiserson): instead of computing
the shares in advance, the master keeps the load and hands out *chunks* of a
fixed size whenever a worker is idle.  This needs no knowledge of the worker
speeds, at the price of one extra communication (latency) per chunk.

The function below simulates the protocol exactly under the one-port master
model and reports the makespan, the number of chunks served and the per
worker load, so the DLT benchmark can compare it against the static closed
forms on both homogeneous and heterogeneous platforms.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dlt.platform import DLTPlatform


@dataclass(frozen=True)
class WorkStealingResult:
    """Outcome of a simulated work-stealing distribution."""

    makespan: float
    chunks_served: int
    per_worker_load: Dict[str, float]
    per_worker_chunks: Dict[str, int]
    chunk_size: float

    @property
    def total_load(self) -> float:
        return sum(self.per_worker_load.values())


def work_stealing_distribution(
    total_load: float,
    platform: DLTPlatform,
    *,
    chunk_size: Optional[float] = None,
) -> WorkStealingResult:
    """Simulate chunk-by-chunk dynamic distribution of a divisible load.

    Parameters
    ----------
    total_load:
        Load held by the master.
    chunk_size:
        Size of each chunk handed to an idle worker; the default is 1/(4m) of
        the total load (a few chunks per worker), a common practical choice
        balancing adaptivity against per-chunk latency.
    """

    if total_load <= 0:
        raise ValueError("total_load must be > 0")
    workers = platform.workers
    m = len(workers)
    if chunk_size is None:
        chunk_size = total_load / (4 * m)
    if chunk_size <= 0:
        raise ValueError("chunk_size must be > 0")

    remaining = total_load
    master_free = 0.0
    # Priority queue of (time the worker becomes idle, insertion order, index).
    idle: List[Tuple[float, int, int]] = [(0.0, i, i) for i in range(m)]
    heapq.heapify(idle)
    counter = m
    per_load: Dict[str, float] = {w.name: 0.0 for w in workers}
    per_chunks: Dict[str, int] = {w.name: 0 for w in workers}
    finish: Dict[str, float] = {w.name: 0.0 for w in workers}
    chunks = 0

    while remaining > 1e-12 and idle:
        idle_time, _, index = heapq.heappop(idle)
        worker = workers[index]
        share = min(chunk_size, remaining)
        remaining -= share
        # Request reaches the master when the worker is idle; the transfer
        # waits for the master port.
        comm_start = max(idle_time, master_free)
        comm_end = comm_start + worker.latency + worker.comm_time * share
        master_free = comm_end
        compute_end = comm_end + worker.compute_time * share
        per_load[worker.name] += share
        per_chunks[worker.name] += 1
        finish[worker.name] = compute_end
        chunks += 1
        counter += 1
        heapq.heappush(idle, (compute_end, counter, index))

    makespan = max(finish.values()) if finish else 0.0
    return WorkStealingResult(
        makespan=makespan,
        chunks_served=chunks,
        per_worker_load=per_load,
        per_worker_chunks=per_chunks,
        chunk_size=chunk_size,
    )


def sweep_chunk_sizes(
    total_load: float,
    platform: DLTPlatform,
    *,
    candidates: Optional[List[float]] = None,
) -> Tuple[float, WorkStealingResult]:
    """Try several chunk sizes and return the best (chunk_size, result) pair."""

    m = len(platform.workers)
    if candidates is None:
        candidates = [total_load / (k * m) for k in (1, 2, 4, 8, 16, 32)]
    best_size = None
    best_result = None
    for size in candidates:
        if size <= 0:
            continue
        result = work_stealing_distribution(total_load, platform, chunk_size=size)
        if best_result is None or result.makespan < best_result.makespan - 1e-12:
            best_size, best_result = size, result
    assert best_size is not None and best_result is not None
    return best_size, best_result
