"""Wire-format tests: framing, payload round-trips, address parsing."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.distributed import protocol
from repro.experiments.grid import Cell, CellOutcome


def socket_pair():
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    client = socket.create_connection(server.getsockname())
    accepted, _ = server.accept()
    server.close()
    return client, accepted


class TestFraming:
    def test_message_round_trip(self):
        left, right = socket_pair()
        try:
            protocol.send_message(left, {"op": "hello", "worker": "w1"})
            assert protocol.recv_message(right) == {"op": "hello", "worker": "w1"}
        finally:
            left.close()
            right.close()

    def test_back_to_back_frames_do_not_bleed(self):
        left, right = socket_pair()
        try:
            for index in range(20):
                protocol.send_message(left, {"op": "n", "i": index, "pad": "x" * index * 37})
            for index in range(20):
                assert protocol.recv_message(right)["i"] == index
        finally:
            left.close()
            right.close()

    def test_large_frame_survives_partial_recv(self):
        left, right = socket_pair()
        try:
            message = {"op": "blob", "data": "y" * 2_000_000}
            thread = threading.Thread(target=protocol.send_message, args=(left, message))
            thread.start()
            received = protocol.recv_message(right)
            thread.join()
            assert received == message
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_closed(self):
        left, right = socket_pair()
        left.close()
        try:
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_mid_frame_eof_raises_connection_closed(self):
        left, right = socket_pair()
        try:
            left.sendall(b"\x00\x00\x01\x00partial")
            left.close()
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_oversized_header_is_treated_as_corruption(self):
        left, right = socket_pair()
        try:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_non_envelope_frame_rejected(self):
        left, right = socket_pair()
        try:
            protocol.send_message(left, {"no_op_key": 1})
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()


class TestPayloads:
    def test_cell_and_outcome_round_trip(self):
        cell = Cell(index=3, repetition=1, seed=1235, params=(("a", 1), ("b", "x")))
        outcome = CellOutcome(cell=cell, metrics={"v": 1.5}, elapsed_seconds=0.25)
        assert protocol.decode_payload(protocol.encode_payload(cell)) == cell
        decoded = protocol.decode_payload(protocol.encode_payload(outcome))
        assert decoded.cell == cell
        assert decoded.metrics == {"v": 1.5}

    def test_corrupt_payload_raises_protocol_error(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_payload("definitely!not!base64!pickle")


class TestAddresses:
    def test_parse_and_format(self):
        assert protocol.parse_address("tcp://127.0.0.1:8765") == ("127.0.0.1", 8765)
        assert protocol.parse_address(" tcp://host:0 ") == ("host", 0)
        assert protocol.format_address("h", 1) == "tcp://h:1"

    @pytest.mark.parametrize("bad", [
        "udp://127.0.0.1:1", "127.0.0.1:1", "tcp://:1", "tcp://h",
        "tcp://h:port", "tcp://h:99999", "tcp://h:-1",
    ])
    def test_rejects_malformed_addresses(self, bad):
        with pytest.raises(ValueError):
            protocol.parse_address(bad)
