"""Shelf algorithms for rigid Parallel Tasks.

Two families are provided:

* classical strip-packing shelf heuristics (**NFDH** -- next-fit decreasing
  height -- and **FFDH** -- first-fit decreasing height) for the makespan of
  rigid jobs; they are the geometric "2-dimensional packing" view mentioned
  in section 2.2 (the allocation problem of rigid jobs "corresponds to a
  strip-packing problem");

* the **SMART** shelves of Schwiegelshohn, Ludwig, Wolf, Turek and Yu
  (section 4.3): shelves whose heights are powers of two, filled first-fit,
  then *ordered like single-machine jobs* -- each shelf has a length (its
  height) and a weight (the sum of the weights of its tasks) and the shelves
  are sequenced by the weighted-shortest-processing-time rule, which is
  optimal for the relaxed single machine problem.  The performance ratio
  proved in the original article is 8 for the unweighted sum of completion
  times and 8.53 for the weighted case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocation import Schedule
from repro.core.job import Job, validate_jobs
from repro.core.policies.base import (
    MoldableAllocator,
    OfflineScheduler,
    SchedulerError,
)


@dataclass
class _Shelf:
    """A shelf: jobs that all start at the same time."""

    height: float
    used: int = 0
    jobs: List[Tuple[Job, int]] = field(default_factory=list)

    def fits(self, nbproc: int, machine_count: int) -> bool:
        return self.used + nbproc <= machine_count

    def add(self, job: Job, nbproc: int) -> None:
        self.jobs.append((job, nbproc))
        self.used += nbproc

    @property
    def weight(self) -> float:
        return sum(job.weight for job, _ in self.jobs)


def _freeze(jobs: Sequence[Job], machine_count: int, allocator: MoldableAllocator) -> List[Tuple[Job, int, float]]:
    """(job, nbproc, runtime) triples with the allocator applied to moldable jobs."""

    out = []
    for job in jobs:
        nbproc = allocator.allocate(job, machine_count)
        out.append((job, nbproc, job.runtime(nbproc)))
    return out


def _build_schedule(
    shelves: Sequence[_Shelf], machine_count: int, start_time: float
) -> Schedule:
    """Stack shelves one after the other and assign concrete processors."""

    schedule = Schedule(machine_count)
    t = start_time
    for shelf in shelves:
        proc = 0
        for job, nbproc in shelf.jobs:
            processors = list(range(proc, proc + nbproc))
            schedule.add(job, t, processors, job.runtime(nbproc))
            proc += nbproc
        t += shelf.height
    return schedule


class ShelfScheduler(OfflineScheduler):
    """NFDH / FFDH shelf packing for the makespan of rigid jobs.

    Jobs are sorted by decreasing runtime ("decreasing height") and packed
    into shelves: NFDH only tries the current shelf, FFDH tries every open
    shelf before creating a new one.  The makespan guarantee of FFDH for
    strip packing is 1.7 OPT + h_max; for scheduling purposes it is a solid,
    simple baseline to compare the MRT algorithm against.
    """

    def __init__(
        self,
        variant: str = "ffdh",
        allocator: Optional[MoldableAllocator] = None,
    ) -> None:
        if variant not in ("nfdh", "ffdh"):
            raise ValueError("variant must be 'nfdh' or 'ffdh'")
        self.variant = variant
        self.allocator = allocator or MoldableAllocator("sequential")
        self.name = f"shelf-{variant}"

    def schedule(
        self, jobs: Sequence[Job], machine_count: int, *, start_time: float = 0.0
    ) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        frozen = _freeze(jobs, machine_count, self.allocator)
        frozen.sort(key=lambda t: (-t[2], t[0].name))  # decreasing runtime
        shelves: List[_Shelf] = []
        for job, nbproc, runtime in frozen:
            placed = False
            candidates = shelves[-1:] if self.variant == "nfdh" else shelves
            for shelf in candidates:
                if shelf.fits(nbproc, machine_count):
                    shelf.add(job, nbproc)
                    placed = True
                    break
            if not placed:
                shelf = _Shelf(height=runtime)
                shelf.add(job, nbproc)
                shelves.append(shelf)
        return _build_schedule(shelves, machine_count, start_time)


class SmartShelfScheduler(OfflineScheduler):
    """SMART shelves for the (weighted) sum of completion times of rigid jobs.

    Algorithm (following section 4.3 of the paper):

    1. round the runtime of every job up to the next power of two (times the
       smallest runtime, so the rounding is scale-free);
    2. fill, for each size class, shelves of that height with a first-fit
       rule ("the shelves here were just filled with a first fit algorithm");
    3. order the shelves as if each were a single sequential job of length
       its height and weight the total weight of its tasks, using the
       weighted-shortest-processing-time rule which is optimal on one
       machine ("finding the optimal order of batches is exactly the single
       machine problem").

    The resulting schedule has a guaranteed performance ratio of 8
    (unweighted) / 8.53 (weighted) on the sum of (weighted) completion
    times; the ``RATIO-SMART`` benchmark checks these bounds empirically
    against the squashed-area lower bound.
    """

    def __init__(self, allocator: Optional[MoldableAllocator] = None) -> None:
        self.allocator = allocator or MoldableAllocator("sequential")
        self.name = "smart-shelves"

    def schedule(
        self, jobs: Sequence[Job], machine_count: int, *, start_time: float = 0.0
    ) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        frozen = _freeze(jobs, machine_count, self.allocator)
        if any(nbproc > machine_count for _, nbproc, _ in frozen):
            raise SchedulerError("a job requires more processors than available")
        p_min = min(runtime for _, _, runtime in frozen)
        # Size class of a job: smallest power of two (times p_min) >= runtime.
        def size_class(runtime: float) -> int:
            return max(0, math.ceil(math.log2(runtime / p_min) - 1e-12))

        # First-fit filling of shelves per size class, processing jobs by
        # decreasing processor requirement inside a class to pack tightly.
        shelves_by_class: Dict[int, List[_Shelf]] = {}
        for job, nbproc, runtime in sorted(
            frozen, key=lambda t: (size_class(t[2]), -t[1], t[0].name)
        ):
            cls = size_class(runtime)
            height = p_min * (2 ** cls)
            shelves = shelves_by_class.setdefault(cls, [])
            for shelf in shelves:
                if shelf.fits(nbproc, machine_count):
                    shelf.add(job, nbproc)
                    break
            else:
                shelf = _Shelf(height=height)
                shelf.add(job, nbproc)
                shelves.append(shelf)

        all_shelves = [s for shelves in shelves_by_class.values() for s in shelves]
        # WSPT order on shelves: length / weight increasing (shelves with zero
        # weight -- impossible with positive job weights -- would go last).
        all_shelves.sort(
            key=lambda s: (s.height / max(s.weight, 1e-12), s.height)
        )
        return _build_schedule(all_shelves, machine_count, start_time)
