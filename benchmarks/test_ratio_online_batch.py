"""RATIO-BATCH: the on-line batch transform of section 4.2 (ratio 2*rho -> 3 + eps).

On-line instances (Poisson release dates) are scheduled with the batch
transform wrapped around the MRT off-line algorithm.  The measured makespan
ratio against the release-date-aware lower bound must stay below
2 * (3/2 + eps) = 3 + eps, and in practice well below it.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import makespan_lower_bound, performance_ratio
from repro.core.criteria import makespan
from repro.core.policies.batch_online import BatchOnlineScheduler
from repro.core.policies.mrt import MRTScheduler
from repro.experiments.reporting import ascii_table
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs

EPSILON = 0.05
MACHINES = 64
JOB_COUNTS = (30, 60, 120)
LOADS = (0.5, 1.5)       # arrival intensity relative to a busy platform


def sweep_batch():
    scheduler = BatchOnlineScheduler(MRTScheduler(epsilon=EPSILON))
    rows = []
    for n_jobs in JOB_COUNTS:
        for load in LOADS:
            seed = int(n_jobs * 10 + load * 100)
            jobs = generate_moldable_jobs(n_jobs, MACHINES, random_state=seed)
            jobs = poisson_arrivals(jobs, rate=load * MACHINES / 50.0, random_state=seed)
            schedule = scheduler.schedule(jobs, MACHINES)
            schedule.validate()
            bound = makespan_lower_bound(jobs, MACHINES)
            rows.append(
                {
                    "jobs": n_jobs,
                    "load": load,
                    "batches": scheduler.batch_count(jobs, MACHINES),
                    "ratio": performance_ratio(makespan(schedule), bound),
                }
            )
    return rows


def test_online_batch_ratio(run_once, report):
    rows = run_once(sweep_batch)
    report("RATIO-BATCH: on-line batch(MRT) makespan (stated bound 3 + eps)",
           ascii_table(rows))
    worst = max(row["ratio"] for row in rows)
    assert worst <= 3.0 + 2 * EPSILON + 1e-9
    # Batching really happens on the on-line instances.
    assert any(row["batches"] >= 2 for row in rows)
