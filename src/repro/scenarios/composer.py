"""Composer: materialize a :class:`ScenarioSpec` into runnable experiments.

The spec layer (:mod:`repro.scenarios.spec`) is pure data; this module gives
each ``kind`` its meaning:

* **platform kinds** build a processor count, a :class:`Cluster` or a
  :class:`LightGrid`;
* **workload kinds** build job lists (or per-cluster submissions + grid
  bags) from the generators of :mod:`repro.workload`;
* **arrival kinds** re-release the jobs through the processes of
  :mod:`repro.workload.arrivals`;
* **model runners** execute one (spec, seed) cell -- constructing a
  schedule off-line, driving the event simulators, or solving a DLT
  instance -- and flatten the outcome into a metrics dict.

Everything funnels through :func:`run_scenario_cell`, a module-level
picklable function, so every scenario inherits the whole sweep machinery of
:func:`repro.experiments.harness.run_experiment` for free: parallel
executors (``REPRO_JOBS=N`` pools, ``REPRO_JOBS=tcp://host:port``
distributed campaigns), the on-disk cell cache (``REPRO_CACHE_DIR``),
streamed aggregation and bit-identical rows on every backend.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.executors import ExecutorSpec
from repro.experiments.harness import ExperimentResult, run_experiment
from repro.scenarios.spec import ComponentSpec, ScenarioSpec, SpecError


# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------


def build_platform(component: ComponentSpec, rng: np.random.Generator) -> Any:
    """Materialize a platform component (int, Cluster, LightGrid or DLT)."""

    kind, params = component.kind, component.params
    if kind in ("count", "default"):
        return int(params.get("machine_count", 64))
    if kind == "homogeneous":
        from repro.platform.generators import homogeneous_cluster

        return homogeneous_cluster(
            params.get("name", "scenario-cluster"),
            int(params.get("processors", 64)),
            speed=float(params.get("speed", 1.0)),
            cores_per_node=int(params.get("cores_per_node", 1)),
        )
    if kind == "heterogeneous":
        from repro.platform.generators import heterogeneous_cluster

        return heterogeneous_cluster(
            params.get("name", "scenario-cluster"),
            int(params.get("nodes", 64)),
            speed_range=tuple(params.get("speed_range", (0.8, 1.2))),
            cores_per_node=int(params.get("cores_per_node", 1)),
            random_state=rng,
        )
    if kind == "ciment":
        from repro.platform.ciment import ciment_grid

        return ciment_grid()
    if kind == "random-grid":
        from repro.platform.generators import random_light_grid

        return random_light_grid(
            n_clusters=int(params.get("n_clusters", 3)),
            nodes_range=tuple(params.get("nodes_range", (20, 60))),
            speed_range=tuple(params.get("speed_range", (0.5, 1.5))),
            cores_per_node=int(params.get("cores_per_node", 1)),
            random_state=rng,
        )
    if kind == "dlt-star":
        from repro.core.dlt.platform import DLTPlatform, DLTWorker

        n_workers = int(params.get("n_workers", 32))
        workers = [
            DLTWorker(
                name=f"w{i:03d}",
                compute_time=float(params.get("compute_time", 1.0)) + 0.07 * (i % 5),
                comm_time=float(params.get("comm_time", 0.01)) + 0.003 * (i % 7),
                latency=float(params.get("latency", 0.05)) * (i % 3),
            )
            for i in range(n_workers)
        ]
        return DLTPlatform(workers)
    raise SpecError(f"unknown platform kind {kind!r}")


def platform_processor_count(platform: Any) -> int:
    if isinstance(platform, int):
        return platform
    return int(platform.processor_count)


# ---------------------------------------------------------------------------
# Single-cluster workloads
# ---------------------------------------------------------------------------


def _workload_config(params: Mapping[str, Any]) -> Any:
    from repro.workload.models import WorkloadConfig

    kwargs: Dict[str, Any] = {}
    if "runtime_range" in params:
        kwargs["runtime_range"] = tuple(params["runtime_range"])
    if "weight_scheme" in params:
        kwargs["weight_scheme"] = params["weight_scheme"]
    if "sequential_fraction" in params:
        kwargs["sequential_fraction"] = float(params["sequential_fraction"])
    if "max_procs" in params:
        kwargs["max_procs"] = int(params["max_procs"])
    return WorkloadConfig(**kwargs)


def build_jobs(
    component: ComponentSpec,
    machine_count: int,
    rng: np.random.Generator,
    seed: int,
) -> List[Any]:
    """Materialize a single-cluster workload component into a job list."""

    kind, params = component.kind, component.params
    if kind == "rigid":
        from repro.workload.models import generate_rigid_jobs

        return generate_rigid_jobs(
            int(params.get("n_jobs", 50)), machine_count,
            config=_workload_config(params), random_state=rng,
        )
    if kind == "moldable":
        from repro.workload.models import generate_moldable_jobs

        return generate_moldable_jobs(
            int(params.get("n_jobs", 50)), machine_count,
            config=_workload_config(params), random_state=rng,
        )
    if kind == "mixed":
        from repro.workload.models import generate_mixed_jobs

        return generate_mixed_jobs(
            int(params.get("n_jobs", 50)), machine_count,
            rigid_fraction=float(params.get("rigid_fraction", 0.3)),
            config=_workload_config(params), random_state=rng,
        )
    if kind == "figure2":
        from repro.workload.models import figure2_workload

        return figure2_workload(
            int(params.get("n_tasks", 100)), machine_count,
            family=params.get("family", "parallel"),
            random_state=rng,
            runtime_range=tuple(params.get("runtime_range", (1.0, 50.0))),
            weight_scheme=params.get("weight_scheme", "work"),
        )
    if kind == "community":
        from repro.workload.communities import community_workload

        return community_workload(
            params.get("community", "computer-science"),
            int(params.get("n_jobs", 50)), machine_count,
            random_state=rng, online=bool(params.get("online", True)),
        )
    if kind == "swf":
        from repro.workload.swf import swf_to_jobs

        if "text" in params:
            text = params["text"]
        elif "path" in params:
            text = Path(params["path"]).read_text()
        else:
            raise SpecError("swf workload needs a 'text' or 'path' parameter")
        return swf_to_jobs(text, strict=bool(params.get("strict", False)))
    if kind == "swf-roundtrip":
        # Generate a seeded rigid workload, serialise it to SWF text and
        # parse it back: a self-contained trace-replay scenario exercising
        # the full SWF import path without external files.
        from repro.workload.arrivals import poisson_arrivals
        from repro.workload.models import generate_rigid_jobs
        from repro.workload.swf import jobs_to_swf, swf_to_jobs

        jobs = generate_rigid_jobs(
            int(params.get("n_jobs", 50)), machine_count,
            config=_workload_config(params), random_state=rng,
        )
        jobs = poisson_arrivals(
            jobs, rate=float(params.get("rate", 1.0)), random_state=rng
        )
        text = jobs_to_swf(jobs, comment=f"scenario replay seed={seed}")
        return swf_to_jobs(text)
    raise SpecError(f"unknown workload kind {kind!r}")


def inject_node_churn(
    jobs: List[Any],
    machine_count: int,
    churn: Mapping[str, Any],
    rng: np.random.Generator,
) -> List[Any]:
    """Model node churn as high-priority processor-outage jobs.

    Each outage takes ``procs`` processors out of service for an
    exponentially distributed repair time; outages arrive as a Poisson
    process over the span of the workload.  This reuses the queueing
    machinery (an outage is just a rigid job the local users cannot use), so
    every simulator supports churn without kernel changes.
    """

    from repro.core.job import RigidJob

    n_outages = int(churn.get("n_outages", 0))
    if n_outages <= 0:
        return jobs
    span = max((j.release_date for j in jobs), default=0.0) or 1.0
    mean_repair = float(churn.get("mean_repair", span / 10.0))
    procs = int(churn.get("procs", max(1, machine_count // 10)))
    outages = []
    starts = np.sort(rng.uniform(0.0, span, size=n_outages))
    durations = rng.exponential(mean_repair, size=n_outages)
    for index in range(n_outages):
        outages.append(
            RigidJob(
                name=f"outage-{index:03d}",
                release_date=float(starts[index]),
                nbproc=min(procs, machine_count),
                duration=float(max(durations[index], 1e-3)),
                weight=0.0,
                owner="churn",
            )
        )
    return jobs + outages


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


def apply_arrival(
    jobs: List[Any],
    component: ComponentSpec,
    machine_count: int,
    rng: np.random.Generator,
) -> List[Any]:
    kind, params = component.kind, component.params
    if kind in ("inherit", "none", "default"):
        return jobs
    from repro.workload import arrivals

    if kind == "offline":
        return arrivals.offline_arrivals(jobs)
    if kind == "poisson":
        return arrivals.poisson_arrivals(
            jobs,
            rate=params.get("rate"),
            mean_interarrival=params.get("mean_interarrival"),
            random_state=rng,
        )
    if kind == "bursty":
        return arrivals.bursty_arrivals(
            jobs,
            burst_size=int(params.get("burst_size", 10)),
            burst_gap=float(params.get("burst_gap", 50.0)),
            random_state=rng,
        )
    if kind == "diurnal":
        return arrivals.diurnal_arrivals(
            jobs,
            mean_interarrival=float(params.get("mean_interarrival", 1.0)),
            period=float(params.get("period", 24.0)),
            peak_to_trough=float(params.get("peak_to_trough", 4.0)),
            random_state=rng,
        )
    if kind == "scaled-load":
        return arrivals.scaled_load_arrivals(
            jobs, machine_count,
            target_utilization=float(params.get("target_utilization", 0.7)),
            random_state=rng,
        )
    raise SpecError(f"unknown arrival kind {kind!r}")


# ---------------------------------------------------------------------------
# Off-line schedulers (policy kinds of the "offline" model)
# ---------------------------------------------------------------------------


def make_offline_scheduler(component: ComponentSpec) -> Any:
    from repro.core.policies import (
        BatchOnlineScheduler,
        BiCriteriaScheduler,
        ConservativeBackfilling,
        EasyBackfilling,
        ListScheduler,
        MRTScheduler,
        SmartShelfScheduler,
    )
    from repro.core.policies.rigid_moldable_mix import MixedScheduler

    kind, params = component.kind, component.params
    if kind == "lpt":
        return ListScheduler("lpt")
    if kind == "wspt":
        return ListScheduler("wspt")
    if kind == "smart-shelves":
        return SmartShelfScheduler()
    if kind == "mrt":
        return MRTScheduler()
    if kind in ("bicriteria", "default"):
        inner = MRTScheduler() if params.get("mrt_inner") else None
        return BiCriteriaScheduler(inner)
    if kind == "batch-mrt":
        return BatchOnlineScheduler(MRTScheduler())
    if kind == "conservative-bf":
        return ConservativeBackfilling()
    if kind == "easy-bf":
        return EasyBackfilling()
    if kind == "mixed":
        return MixedScheduler(params.get("strategy", "first_fit_batch"))
    raise SpecError(f"unknown offline policy kind {kind!r}")


# ---------------------------------------------------------------------------
# Model runners: one (spec, seed) cell -> flat metrics dict
# ---------------------------------------------------------------------------


def _cluster_jobs(spec: ScenarioSpec, machine_count: int, rng: np.random.Generator, seed: int) -> List[Any]:
    params = spec.workload.params
    churn = params.get("churn")
    workload = ComponentSpec(
        spec.workload.kind,
        {k: v for k, v in params.items() if k != "churn"},
    )
    jobs = build_jobs(workload, machine_count, rng, seed)
    jobs = apply_arrival(jobs, spec.arrival, machine_count, rng)
    if churn:
        jobs = inject_node_churn(jobs, machine_count, churn, rng)
    return jobs


def _ratio_metrics(schedule: Any, jobs: Sequence[Any], machine_count: int) -> Dict[str, Any]:
    from repro.core.criteria import CriteriaReport
    from repro.metrics.ratios import schedule_ratios

    metrics: Dict[str, Any] = dict(CriteriaReport.from_schedule(schedule).as_dict())
    metrics.update(schedule_ratios(schedule, jobs, machine_count=machine_count).as_dict())
    return metrics


def _run_offline(spec: ScenarioSpec, seed: int) -> Dict[str, Any]:
    rng = np.random.default_rng(seed)
    platform = build_platform(spec.platform, rng)
    machine_count = platform_processor_count(platform)
    jobs = _cluster_jobs(spec, machine_count, rng, seed)
    scheduler = make_offline_scheduler(spec.policy)
    if spec.policy.params.get("capture_errors"):
        try:
            schedule = scheduler.schedule(jobs, machine_count)
        except Exception as error:  # a policy may not support a job type
            return {"policy_name": scheduler.name, "error": str(error)[:60]}
    else:
        schedule = scheduler.schedule(jobs, machine_count)
    schedule.validate(check_release_dates=False)
    metrics = _ratio_metrics(schedule, jobs, machine_count)
    metrics["policy_name"] = scheduler.name
    return metrics


def _cluster_online_record(spec: ScenarioSpec, seed: int) -> Tuple[Any, List[Any], int]:
    """Drive the cluster simulator for one cell: (record, jobs, machine_count)."""

    from repro.core.policies.base import MoldableAllocator
    from repro.simulation.cluster_sim import ClusterSimulator

    rng = np.random.default_rng(seed)
    platform = build_platform(spec.platform, rng)
    machine_count = platform_processor_count(platform)
    jobs = _cluster_jobs(spec, machine_count, rng, seed)
    kind = spec.policy.kind
    switches = []
    if kind == "switch":
        # Mid-run policy switching: start under ``initial`` and swap to the
        # named policies at the given simulation times.
        policy = spec.policy.params.get("initial", "fifo")
        switches = [
            (float(time), str(name))
            for time, name in spec.policy.params.get("switches", [])
        ]
    else:
        policy = "fifo" if kind == "default" else kind
    allocator = spec.policy.params.get("allocator")
    simulator = ClusterSimulator(
        platform if not isinstance(platform, int) else machine_count,
        policy=policy,
        allocator=MoldableAllocator(allocator) if allocator else None,
        policy_switches=switches,
    )
    return simulator.run(jobs), jobs, machine_count


def _run_cluster_online(spec: ScenarioSpec, seed: int) -> Dict[str, Any]:
    result, jobs, machine_count = _cluster_online_record(spec, seed)
    metrics = _ratio_metrics(result.schedule, jobs, machine_count)
    metrics["policy_name"] = result.policy
    metrics["trace_events"] = len(result.trace)
    return metrics


def _grid_submissions(
    spec: ScenarioSpec, grid: Any, rng: np.random.Generator
) -> Tuple[Dict[str, List[Any]], List[Any]]:
    """Per-cluster local jobs + grid bags for the grid models."""

    kind, params = spec.workload.kind, spec.workload.params
    churn = params.get("churn")
    local: Dict[str, List[Any]] = {}
    bags: List[Any] = []
    if kind == "ciment-communities":
        from repro.workload.communities import community_workload, grid_workload

        jobs_per_community = int(params.get("jobs_per_community", 12))
        local_base = int(params.get("local_seed_base", 10))
        grid_base = int(params.get("grid_seed_base", 50))
        with_bags = bool(params.get("grid_bags", True))
        clusters = sorted(grid, key=lambda c: c.community or c.name)
        for index, cluster in enumerate(clusters):
            local[cluster.name] = community_workload(
                cluster.community, jobs_per_community, cluster.processor_count,
                random_state=local_base + index,
            )
            if with_bags:
                bags.extend(grid_workload(cluster.community, random_state=grid_base + index))
    elif kind == "grid-random":
        from repro.workload.arrivals import poisson_arrivals
        from repro.workload.models import generate_moldable_jobs
        from repro.workload.parametric import generate_parametric_bags

        n_jobs = int(params.get("jobs_per_cluster", 20))
        for cluster in sorted(grid, key=lambda c: c.name):
            jobs = generate_moldable_jobs(
                n_jobs, cluster.processor_count,
                config=_workload_config(params), random_state=rng,
                name_prefix=f"{cluster.name}-local",
            )
            local[cluster.name] = poisson_arrivals(
                jobs, rate=float(params.get("rate", 1.0)), random_state=rng
            )
        n_bags = int(params.get("n_bags", 0))
        if n_bags:
            bags = generate_parametric_bags(
                n_bags,
                runs_range=tuple(params.get("runs_range", (100, 300))),
                run_time_range=tuple(params.get("run_time_range", (0.1, 0.4))),
                random_state=rng,
            )
    else:
        raise SpecError(f"unknown grid workload kind {kind!r}")
    if churn:
        for name in local:
            cluster = grid.cluster(name)
            local[name] = inject_node_churn(
                local[name], cluster.processor_count, churn, rng
            )
    return local, bags


def _grid_centralized_record(spec: ScenarioSpec, seed: int) -> Tuple[Any, Any, List[Any]]:
    """Drive the centralized grid simulator: (record, grid, bags)."""

    from repro.simulation.grid_sim import CentralizedGridSimulator

    rng = np.random.default_rng(seed)
    grid = build_platform(spec.platform, rng)
    local, bags = _grid_submissions(spec, grid, rng)
    simulator = CentralizedGridSimulator(
        grid,
        local_policy=spec.policy.params.get("local_policy", "backfill"),
        best_effort_enabled=bool(spec.policy.params.get("best_effort_enabled", True)),
    )
    return simulator.run(local, bags), grid, bags


def _run_grid_centralized(spec: ScenarioSpec, seed: int) -> Dict[str, Any]:
    result, grid, bags = _grid_centralized_record(spec, seed)
    metrics: Dict[str, Any] = {
        "node_count": grid.node_count,
        "processor_count": grid.processor_count,
        "cluster_names": sorted(c.name for c in grid),
        "horizon": result.horizon,
        "kills": result.kills,
        "launches": result.launches,
        "total_runs_completed": result.total_runs_completed,
        "expected_runs": sum(bag.n_runs for bag in bags),
        "throughput": result.grid_throughput(),
        "outcome": [
            {
                "cluster": cluster.name,
                "community": cluster.community,
                "local_jobs": result.local_criteria[cluster.name].n_jobs,
                "local_makespan_h": result.local_criteria[cluster.name].makespan,
                "utilization": result.utilization[cluster.name],
            }
            for cluster in grid
        ],
        "owners_ok": {
            cluster.name: all(
                entry.job.owner == cluster.community
                for entry in result.local_schedules[cluster.name]
            )
            for cluster in grid
        },
    }
    for cluster in grid:
        metrics[f"utilization.{cluster.name}"] = result.utilization[cluster.name]
        metrics[f"local_makespan.{cluster.name}"] = result.local_criteria[cluster.name].makespan
    return metrics


def _grid_decentralized_record(spec: ScenarioSpec, seed: int) -> Tuple[Any, Any]:
    """Drive the decentralized grid simulator: (record, grid)."""

    from repro.simulation.decentralized import DecentralizedGridSimulator

    rng = np.random.default_rng(seed)
    grid = build_platform(spec.platform, rng)
    local, _bags = _grid_submissions(spec, grid, rng)
    simulator = DecentralizedGridSimulator(
        grid,
        local_policy=spec.policy.params.get("local_policy", "backfill"),
        imbalance_threshold=float(spec.policy.params.get("imbalance_threshold", 2.0)),
        exchange_enabled=bool(spec.policy.params.get("exchange_enabled", True)),
    )
    return simulator.run(local), grid


def _run_grid_decentralized(spec: ScenarioSpec, seed: int) -> Dict[str, Any]:
    result, _grid = _grid_decentralized_record(spec, seed)
    metrics: Dict[str, Any] = {
        "makespan": result.makespan,
        "horizon": result.horizon,
        "migrations": result.migrations,
        "migrated_jobs": len(result.migrated_jobs),
        "mean_flow": result.mean_flow,
        "max_flow": result.max_flow,
        "fairness_on_work": result.fairness.fairness_on_work,
        "fairness_on_flow": result.fairness.fairness_on_flow,
    }
    for name, report in sorted(result.criteria.items()):
        metrics[f"local_makespan.{name}"] = report.makespan
    return metrics


def _run_figure2(spec: ScenarioSpec, seed: int) -> Dict[str, Any]:
    from repro.experiments.figure2 import Figure2Config, run_figure2_point

    config = Figure2Config(
        machine_count=platform_processor_count(
            build_platform(spec.platform, np.random.default_rng(seed))
        ),
        fast_inner=bool(spec.policy.params.get("fast_inner", True)),
        runtime_range=tuple(spec.workload.params.get("runtime_range", (1.0, 50.0))),
    )
    point = run_figure2_point(
        int(spec.workload.params.get("n_tasks", 100)),
        spec.workload.params.get("family", "parallel"),
        config=config,
        seed=seed,
    )
    return point.as_dict()


def _run_dlt(spec: ScenarioSpec, seed: int) -> Dict[str, Any]:
    from repro.core.dlt.multiround import optimize_round_count

    rng = np.random.default_rng(seed)
    platform = build_platform(spec.platform, rng)
    total_load = float(spec.workload.params.get("total_load", 500.0))
    max_rounds = int(spec.policy.params.get("max_rounds", 12))
    best = optimize_round_count(total_load, platform, max_rounds=max_rounds)
    return {
        "rounds": best.rounds,
        "makespan": best.makespan,
        "idle_time": best.idle_time,
        "n_round_loads": len(best.round_loads),
        "n_workers": len(platform.workers),
        "total_load": total_load,
    }


MODEL_RUNNERS: Dict[str, Callable[[ScenarioSpec, int], Dict[str, Any]]] = {
    "offline": _run_offline,
    "cluster-online": _run_cluster_online,
    "grid-centralized": _run_grid_centralized,
    "grid-decentralized": _run_grid_decentralized,
    "figure2": _run_figure2,
    "dlt": _run_dlt,
}

#: Models whose runner drives an event simulator and therefore has a
#: :class:`~repro.runtime.record.SimulationRecord` to render as a Gantt.
RECORD_MODELS = ("cluster-online", "grid-centralized", "grid-decentralized")


def build_simulation_record(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    *,
    smoke: bool = True,
    overrides: Optional[Mapping[str, Any]] = None,
) -> Any:
    """The :class:`~repro.runtime.record.SimulationRecord` of one scenario cell.

    This is what the Gantt explorer renders: the smoke tier is applied by
    default (explorer-sized schedules), the *first* value of every sweep
    axis is folded in (a representative cell), and the model's event
    simulator runs with the cell's deterministic seed.  Only the models in
    :data:`RECORD_MODELS` have a record; anything else raises
    :class:`SpecError`.
    """

    effective = spec.smoke_spec() if smoke else spec
    if overrides:
        effective = effective.with_overrides(overrides)
    if effective.sweep:
        effective = effective.with_overrides(
            {axis: values[0] for axis, values in effective.sweep.items() if values}
        )
    cell_seed = effective.seed if seed is None else int(seed)
    model = effective.model
    if model == "cluster-online":
        record, _jobs, _machine_count = _cluster_online_record(effective, cell_seed)
        return record
    if model == "grid-centralized":
        record, _grid, _bags = _grid_centralized_record(effective, cell_seed)
        return record
    if model == "grid-decentralized":
        record, _grid = _grid_decentralized_record(effective, cell_seed)
        return record
    raise SpecError(
        f"scenario {spec.name!r} uses model {model!r}, which produces no "
        f"SimulationRecord; Gantt rendering supports: {', '.join(RECORD_MODELS)}"
    )


# ---------------------------------------------------------------------------
# The cell function and the scenario runner
# ---------------------------------------------------------------------------


def run_scenario_cell(seed: int, _spec: ScenarioSpec = None, **overrides: Any) -> Dict[str, Any]:
    """One sweep cell of a scenario (module-level, hence pool-picklable).

    ``overrides`` are the sweep-axis values of this cell (dotted
    ``section.param`` keys); they are folded into the spec before the model
    runner executes.
    """

    if _spec is None:
        raise TypeError("run_scenario_cell requires the _spec keyword")
    spec = _spec.with_overrides(overrides) if overrides else _spec
    runner = MODEL_RUNNERS.get(spec.model)
    if runner is None:
        raise SpecError(f"unknown model {spec.model!r}; known: {sorted(MODEL_RUNNERS)}")
    metrics = runner(spec, seed)
    if spec.metrics:
        missing = [name for name in spec.metrics if name not in metrics]
        if missing and "error" not in metrics:
            raise SpecError(
                f"scenario {spec.name!r}: runner produced no metric(s) {missing}; "
                f"available: {sorted(metrics)}"
            )
        kept = {name: metrics[name] for name in spec.metrics if name in metrics}
        if "error" in metrics:  # captured policy failures survive the filter
            kept["error"] = metrics["error"]
        metrics = kept
    return metrics


def run_scenario(
    spec: ScenarioSpec,
    *,
    smoke: bool = False,
    overrides: Optional[Mapping[str, Any]] = None,
    sweep: Optional[Mapping[str, Sequence[Any]]] = None,
    repetitions: Optional[int] = None,
    executor: ExecutorSpec = None,
    cache: Any = None,
    sink: Any = None,
    listener: Any = None,
    progress: Optional[Callable[[str], None]] = None,
    on_row: Optional[Callable[[Dict[str, Any]], None]] = None,
    capture_errors: bool = False,
) -> ExperimentResult:
    """Run a scenario's sweep through the experiment harness.

    ``smoke=True`` applies the spec's smoke-tier overrides first (tiny
    sizes, usually one repetition); ``overrides`` / ``sweep`` /
    ``repetitions`` then adjust the effective spec, in that order.  The
    returned :class:`ExperimentResult` is exactly what the equivalent
    hand-wired :func:`run_experiment` call would produce.  ``sink`` is an
    optional :class:`~repro.store.api.RowSink` (or campaign-store directory)
    every completed cell streams into, whatever the executor.  ``listener``
    is an optional :class:`~repro.telemetry.listener.SweepListener`;
    ``progress=`` / ``on_row=`` are deprecated shims around it.
    """

    from repro.telemetry import listener_with_callbacks

    listener = listener_with_callbacks(listener, progress, on_row)
    effective = spec.smoke_spec() if smoke else spec
    if overrides:
        effective = effective.with_overrides(overrides)
    if sweep is not None:
        effective = effective.evolve(
            sweep={axis: list(values) for axis, values in sweep.items()}
        )
    if repetitions is not None:
        effective = effective.evolve(repetitions=repetitions)
    return run_experiment(
        effective.name,
        functools.partial(run_scenario_cell, _spec=effective),
        effective.sweep,
        repetitions=effective.repetitions,
        base_seed=effective.seed,
        executor=executor,
        cache=cache,
        sink=sink,
        listener=listener,
        capture_errors=capture_errors,
    )


def rows_digest(rows: Sequence[Mapping[str, Any]]) -> str:
    """Deterministic SHA-256 over result rows (same digest <=> same rows)."""

    blob = json.dumps(list(rows), sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclasses.dataclass
class ScenarioOutcome:
    """Summary of one scenario execution (what the CLI / CI smoke job report)."""

    name: str
    rows: int
    elapsed_seconds: float
    digest: str
    executor: str
    errors: int = 0
    error: str = ""
    #: Cells replayed from the result cache or a distributed campaign
    #: journal instead of being executed.
    cache_hits: int = 0
    #: Where the rows were exported (``--out``), empty when not exported.
    rows_path: str = ""
    #: The campaign store the rows streamed into (``--store``), or ``None``.
    #: A live handle, not data -- excluded from :meth:`to_dict`.
    store: Any = dataclasses.field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        # Not dataclasses.asdict: the store handle is neither serialisable
        # nor part of the outcome's value.
        return {
            "name": self.name,
            "rows": self.rows,
            "elapsed_seconds": self.elapsed_seconds,
            "digest": self.digest,
            "executor": self.executor,
            "errors": self.errors,
            "error": self.error,
            "cache_hits": self.cache_hits,
            "rows_path": self.rows_path,
        }


def summarize(
    spec: ScenarioSpec, result: ExperimentResult, *, store: Any = None
) -> ScenarioOutcome:
    return ScenarioOutcome(
        name=spec.name,
        rows=len(result.rows),
        elapsed_seconds=result.elapsed_seconds,
        digest=rows_digest(result.rows),
        executor=result.executor,
        errors=len(result.errors),
        cache_hits=result.cache_hits,
        store=store,
    )
