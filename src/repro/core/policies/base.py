"""Common interfaces and helpers shared by the scheduling policies.

Two abstract base classes structure the policy zoo:

* :class:`OfflineScheduler` -- schedules a set of jobs that are all available
  at a common start time (release dates are ignored); this is the classical
  ``P | any | Cmax`` style problem of section 4.1;
* :class:`ReleaseDateScheduler` -- schedules jobs with release dates (the
  on-line problems of sections 4.2-4.4, solved here in the "simulated
  on-line" fashion: the policy only looks at a job once its release date has
  passed in the constructed schedule).

Both produce a :class:`repro.core.allocation.Schedule` on ``machine_count``
identical processors.  Heterogeneity and multi-cluster aspects are handled by
the simulators in :mod:`repro.simulation`, which call these policies per
cluster.

The module also provides :class:`MoldableAllocator` strategies that turn
moldable jobs into rigid ones (the "determine first the number of processors
[...] then solve the corresponding scheduling problem with rigid jobs"
decomposition described in section 4), and a common list-scheduling kernel
used by several policies.
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.allocation import Schedule
from repro.core.job import Job, MoldableJob, RigidJob


class SchedulerError(RuntimeError):
    """Raised when a policy cannot schedule the given instance."""


class OfflineScheduler(abc.ABC):
    """A policy for jobs that are all available at the same time."""

    #: Human-readable policy name used in reports and benchmark tables.
    name: str = "offline"

    @abc.abstractmethod
    def schedule(
        self, jobs: Sequence[Job], machine_count: int, *, start_time: float = 0.0
    ) -> Schedule:
        """Build a schedule of ``jobs`` on ``machine_count`` identical processors.

        ``start_time`` shifts the whole schedule (used by batch algorithms
        that re-run an off-line policy at the start of every batch).
        Release dates are *ignored* by off-line policies.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ReleaseDateScheduler(abc.ABC):
    """A policy for jobs with release dates (on-line, simulated off-line)."""

    name: str = "online"

    @abc.abstractmethod
    def schedule(self, jobs: Sequence[Job], machine_count: int) -> Schedule:
        """Build a schedule respecting ``job.release_date`` for every job."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------------
# Moldable -> rigid allocation strategies
# ---------------------------------------------------------------------------


class MoldableAllocator:
    """Strategies choosing the processor count of each moldable job.

    The decomposition used throughout section 4 is: first fix the allocation
    (this object), then schedule the resulting rigid jobs (a rigid policy).
    """

    #: Known strategy names (see :meth:`allocate`).
    STRATEGIES = ("sequential", "min_runtime", "best_efficiency", "bounded_efficiency")

    def __init__(self, strategy: str = "bounded_efficiency", *, efficiency_threshold: float = 0.5):
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown allocation strategy {strategy!r}; expected one of {self.STRATEGIES}"
            )
        if not 0 < efficiency_threshold <= 1:
            raise ValueError("efficiency_threshold must be in (0, 1]")
        self.strategy = strategy
        self.efficiency_threshold = efficiency_threshold

    def allocate(self, job: Job, machine_count: int) -> int:
        """Processor count chosen for ``job`` on a platform of ``machine_count``."""

        if isinstance(job, RigidJob):
            if job.nbproc > machine_count:
                raise SchedulerError(
                    f"rigid job {job.name!r} needs {job.nbproc} processors, "
                    f"platform only has {machine_count}"
                )
            return job.nbproc
        if not isinstance(job, MoldableJob):
            raise SchedulerError(f"cannot allocate job of type {type(job)!r}")
        upper = min(job.max_procs, machine_count)
        if job.min_procs > upper:
            raise SchedulerError(
                f"moldable job {job.name!r} needs at least {job.min_procs} "
                f"processors, platform only has {machine_count}"
            )
        candidates = range(job.min_procs, upper + 1)
        if self.strategy == "sequential":
            return job.min_procs
        if self.strategy == "min_runtime":
            return min(candidates, key=lambda k: (job.runtime(k), k))
        if self.strategy == "best_efficiency":
            # Largest allocation whose efficiency is still at least the one
            # of the minimal allocation (i.e. no efficiency loss at all).
            base_eff = job.runtime(job.min_procs) * job.min_procs
            best = job.min_procs
            for k in candidates:
                if k * job.runtime(k) <= base_eff * (1 + 1e-9):
                    best = k
            return best
        # bounded_efficiency: largest allocation keeping parallel efficiency
        # (relative to the minimal allocation) above the threshold.
        base_work = job.runtime(job.min_procs) * job.min_procs
        best = job.min_procs
        for k in candidates:
            efficiency = base_work / (k * job.runtime(k))
            if efficiency >= self.efficiency_threshold - 1e-12:
                best = k
        return best

    def freeze(self, jobs: Sequence[Job], machine_count: int) -> List[Tuple[Job, int]]:
        """Allocate every job, returning (job, nbproc) pairs."""

        return [(job, self.allocate(job, machine_count)) for job in jobs]

    def __repr__(self) -> str:
        return (
            f"MoldableAllocator(strategy={self.strategy!r}, "
            f"efficiency_threshold={self.efficiency_threshold})"
        )


# ---------------------------------------------------------------------------
# Shared list-scheduling kernel
# ---------------------------------------------------------------------------


def list_schedule_rigid(
    allocations: Sequence[Tuple[Job, int]],
    machine_count: int,
    *,
    start_time: float = 0.0,
    respect_release_dates: bool = False,
) -> Schedule:
    """Greedy list scheduling of (job, nbproc) pairs, in the given order.

    Jobs are started as early as possible in list order: the algorithm keeps
    the availability time of every processor and starts the next job of the
    list at the earliest instant where ``nbproc`` processors are
    simultaneously free (and, optionally, after its release date).  This is
    the classical Graham-style list algorithm generalised to multiprocessor
    tasks; it is the packing backend of most policies in this package.
    """

    if machine_count < 1:
        raise ValueError("machine_count must be >= 1")
    # The free-list lives in a float64 array: picking the nbproc earliest
    # processors is one stable argsort (ties broken by index, exactly like
    # the former sort of (time, index) pairs) instead of a python keyed
    # sort per job.  The times themselves stay bit-identical -- the array
    # only stores and compares the same float64 values.
    free_at = np.full(machine_count, float(start_time))
    schedule = Schedule(machine_count)
    for job, nbproc in allocations:
        if nbproc < 1 or nbproc > machine_count:
            raise SchedulerError(
                f"job {job.name!r}: allocation {nbproc} infeasible on "
                f"{machine_count} processors"
            )
        runtime = job.runtime(nbproc)
        # Earliest time at which `nbproc` processors are simultaneously
        # free: the nbproc smallest availability times.
        order = np.argsort(free_at, kind="stable")
        chosen_idx = order[:nbproc]
        start = max(float(free_at[order[nbproc - 1]]), start_time)
        if respect_release_dates:
            start = max(start, job.release_date)
        free_at[chosen_idx] = start + runtime
        schedule.add(job, start, chosen_idx.tolist(), runtime)
    return schedule


def earliest_start_schedule(
    allocations: Sequence[Tuple[Job, int]],
    machine_count: int,
    *,
    start_time: float = 0.0,
    respect_release_dates: bool = True,
) -> Schedule:
    """List scheduling where, at every step, the job that can start earliest goes first.

    Unlike :func:`list_schedule_rigid` (which respects the list order
    strictly) this kernel re-sorts the remaining jobs by their earliest
    feasible start time; it is used by the conservative-backfilling baseline.
    """

    remaining = list(allocations)
    free_at = [start_time] * machine_count
    schedule = Schedule(machine_count)

    def earliest_start(job: Job, nbproc: int) -> Tuple[float, Tuple[int, ...]]:
        order = sorted(range(machine_count), key=lambda p: (free_at[p], p))
        chosen = tuple(order[:nbproc])
        start = max(free_at[p] for p in chosen)
        if respect_release_dates:
            start = max(start, job.release_date)
        return max(start, start_time), chosen

    while remaining:
        best_idx = None
        best_start = math.inf
        best_procs: Tuple[int, ...] = ()
        for idx, (job, nbproc) in enumerate(remaining):
            start, procs = earliest_start(job, nbproc)
            if start < best_start - 1e-12:
                best_idx, best_start, best_procs = idx, start, procs
        assert best_idx is not None
        job, nbproc = remaining.pop(best_idx)
        runtime = job.runtime(nbproc)
        for p in best_procs:
            free_at[p] = best_start + runtime
        schedule.add(job, best_start, best_procs, runtime)
    return schedule


def sort_jobs(jobs: Sequence[Job], order: str) -> List[Job]:
    """Sort jobs according to a named rule.

    Supported orders: ``"fcfs"`` (release date then name), ``"lpt"`` (longest
    processing time first), ``"spt"`` (shortest first), ``"area"`` (largest
    work first), ``"wspt"`` (weighted shortest processing time first, the
    single-machine-optimal order recalled in section 4.3).
    """

    def runtime_of(job: Job) -> float:
        if isinstance(job, RigidJob):
            return job.duration
        if isinstance(job, MoldableJob):
            return job.sequential_time()
        raise SchedulerError(f"cannot sort job of type {type(job)!r}")

    def work_of(job: Job) -> float:
        if isinstance(job, RigidJob):
            return job.duration * job.nbproc
        if isinstance(job, MoldableJob):
            return job.min_work()
        raise SchedulerError(f"cannot sort job of type {type(job)!r}")

    jobs = list(jobs)
    if order == "fcfs":
        return sorted(jobs, key=lambda j: (j.release_date, j.name))
    if order == "lpt":
        return sorted(jobs, key=lambda j: (-runtime_of(j), j.name))
    if order == "spt":
        return sorted(jobs, key=lambda j: (runtime_of(j), j.name))
    if order == "area":
        return sorted(jobs, key=lambda j: (-work_of(j), j.name))
    if order == "wspt":
        return sorted(jobs, key=lambda j: (work_of(j) / max(j.weight, 1e-12), j.name))
    raise ValueError(f"unknown job order {order!r}")
