"""Kernel tier selection: pure-python vs the optional compiled extension.

The simulation kernel ships in two observably identical implementations:

* **pure** -- :mod:`repro.simulation.events` + the python run loop in
  :mod:`repro.simulation.engine`.  Always available; the default.
* **compiled** -- ``repro._ckernel``, a C extension implementing the event
  heap and the batched run loop (build it with ``make kernel``).  Result
  digests are bit-identical to the pure tier; only wall-clock changes.

Selection is per :class:`~repro.simulation.engine.Simulator` via its
``kernel=`` argument, defaulting to the ``REPRO_KERNEL`` environment
variable:

* ``pure`` (default) -- always use the python kernel;
* ``compiled`` -- use the extension, silently falling back to ``pure``
  when it is not built (use :func:`compiled_available` to detect this);
* ``auto`` -- alias for ``compiled`` with fallback, kept separate so call
  sites can express "best available" vs "explicitly requested" intent.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit ``kernel=`` is given.
KERNEL_ENV = "REPRO_KERNEL"

#: Accepted spellings for the kernel tier.
KERNEL_TIERS = ("pure", "compiled", "auto")

_CKERNEL = None
_CKERNEL_CHECKED = False


def load_ckernel():
    """Return the ``repro._ckernel`` module, or ``None`` when not built."""

    global _CKERNEL, _CKERNEL_CHECKED
    if not _CKERNEL_CHECKED:
        try:
            from repro import _ckernel  # type: ignore[attr-defined]
        except ImportError:
            _CKERNEL = None
        else:
            _CKERNEL = _ckernel
        _CKERNEL_CHECKED = True
    return _CKERNEL


def compiled_available() -> bool:
    """True when the compiled kernel extension is importable."""

    return load_ckernel() is not None


def requested_kernel() -> str:
    """The tier requested via ``$REPRO_KERNEL`` (not yet availability-resolved)."""

    spec = os.environ.get(KERNEL_ENV, "").strip().lower()
    return _validate(spec or "pure")


def resolve_kernel(spec: Optional[str] = None) -> str:
    """Resolve a tier spec to the tier actually used: ``pure`` or ``compiled``.

    ``spec=None`` consults ``$REPRO_KERNEL``.  Requesting ``compiled`` (or
    ``auto``) when the extension is absent falls back to ``pure`` -- the
    tiers are digest-identical, so degrading is always safe.
    """

    if spec is None:
        spec = requested_kernel()
    else:
        spec = _validate(str(spec).strip().lower())
    if spec == "pure":
        return "pure"
    return "compiled" if compiled_available() else "pure"


def _validate(spec: str) -> str:
    if spec not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel tier {spec!r}: expected one of "
            f"{', '.join(KERNEL_TIERS)} (via kernel= or ${KERNEL_ENV})"
        )
    return spec
