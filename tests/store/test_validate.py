"""Validation rules: the paper's ratio bounds re-checked over stored rows."""

from __future__ import annotations

import pytest

from repro.store.columnar import CampaignStore
from repro.store.validate import (
    BICRITERIA_BOUND,
    RULES,
    ValidationRule,
    validate_store,
)


def has_duckdb():
    try:
        import duckdb  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.fixture()
def fig2_store(tmp_path):
    from repro.scenarios.composer import run_scenario
    from repro.scenarios.registry import get

    sink = CampaignStore(tmp_path / "store", campaign="c", fmt="jsonl")
    run_scenario(get("fig2.bicriteria"), smoke=True, sink=sink)
    return CampaignStore(tmp_path / "store")


def by_name(results):
    return {result.rule.name: result for result in results}


class TestRules:
    def test_bound_matches_ratio_checks_stated_bound(self):
        from repro.experiments.ratio_checks import check_bicriteria_ratio

        checks = check_bicriteria_ratio(
            machine_count=16, job_counts=(10,), repetitions=1, seed=2004
        )
        stated = {check.stated_bound for check in checks}
        assert stated == {BICRITERIA_BOUND}  # 4 * rho with rho = 2

    def test_fig2_smoke_rows_pass(self, fig2_store):
        results = by_name(validate_store(fig2_store, engine="py"))
        for name in ("bicriteria-cmax-within-4rho", "bicriteria-wici-within-4rho",
                     "elapsed-nonnegative"):
            assert results[name].ok and not results[name].skipped, name
        # Metrics the fig2 scenario does not emit skip instead of failing.
        assert results["makespan-ratio-floor"].skipped

    def test_worst_values_match_the_actual_extremes(self, fig2_store):
        rows = fig2_store.rows()
        values = [row["cmax_ratio"] for row in rows]
        result = by_name(validate_store(fig2_store, engine="py"))[
            "bicriteria-cmax-within-4rho"
        ]
        assert result.checked == len(values)
        assert result.worst_high == max(values)
        assert result.worst_low == min(values)

    def test_injected_violation_fails_the_store(self, fig2_store):
        fig2_store.append_row(
            {"experiment": "bad", "seed": 0, "cmax_ratio": BICRITERIA_BOUND + 1.0},
            scenario="bad",
        )
        fig2_store.flush()
        results = by_name(validate_store(fig2_store, engine="py"))
        violated = results["bicriteria-cmax-within-4rho"]
        assert not violated.ok
        assert violated.violations == 1
        assert "FAIL" in violated.describe()

    def test_ratio_below_one_is_a_violation(self, tmp_path):
        store = CampaignStore(tmp_path / "s", fmt="jsonl")
        store.append_row({"experiment": "e", "seed": 0, "cmax_ratio": 0.5}, scenario="s")
        store.flush()
        results = by_name(validate_store(store, engine="py"))
        assert results["bicriteria-cmax-within-4rho"].violations == 1

    def test_custom_rule_and_meta_metric(self, tmp_path):
        store = CampaignStore(tmp_path / "s", fmt="jsonl")
        store.append_row({"experiment": "e", "seed": 0, "v": 1.0},
                         scenario="s", elapsed_seconds=0.5)
        store.flush()
        rule = ValidationRule(name="fast", description="", metric="elapsed_seconds",
                              upper=1.0, meta=True)
        (result,) = validate_store(store, engine="py", rules=(rule,))
        assert result.ok and result.checked == 1 and result.worst_high == 0.5

    def test_as_dict_round_trip_fields(self, fig2_store):
        for result in validate_store(fig2_store, engine="py"):
            payload = result.as_dict()
            assert {"rule", "metric", "checked", "violations", "ok", "skipped"} <= set(payload)

    def test_rule_names_are_unique(self):
        names = [rule.name for rule in RULES]
        assert len(names) == len(set(names))


@pytest.mark.skipif(not has_duckdb(), reason="duckdb not installed")
class TestSqlEngine:
    def test_sql_results_match_py(self, fig2_store):
        sql_results = by_name(validate_store(fig2_store, engine="sql"))
        py_results = by_name(validate_store(fig2_store, engine="py"))
        assert set(sql_results) == set(py_results)
        for name, py_result in py_results.items():
            sql_result = sql_results[name]
            assert sql_result.ok == py_result.ok, name
            assert sql_result.skipped == py_result.skipped, name
            assert sql_result.checked == py_result.checked, name
            if py_result.worst_high is not None:
                assert sql_result.worst_high == pytest.approx(py_result.worst_high)
