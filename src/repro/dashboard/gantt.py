"""Gantt/schedule explorer: any :class:`SimulationRecord` as an SVG chart.

The renderer consumes the uniform :meth:`SimulationRecord.runs` view, so
one code path draws all three platform organisations: per-cluster lanes
stack vertically (one row per processor), local runs fill with the
cluster's categorical color, best-effort runs wear a diagonal hatch of the
same hue.  Identity is carried by lane position and the left-hand band
labels, color is secondary -- clusters beyond the 8 fixed categorical
slots fold into muted gray instead of cycling hues.

Everything is stdlib string assembly: no plotting dependency, and the
output embeds cleanly in the dashboard page or an ``<img>`` tag.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.core.allocation import Schedule

#: Fixed categorical hue order (light-mode steps); never cycled -- the 9th
#: cluster onward folds into :data:`FOLD_COLOR`.
CATEGORICAL = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)
FOLD_COLOR = "#898781"

INK = "#0b0b0b"
INK_SECONDARY = "#52514e"
INK_MUTED = "#898781"
GRIDLINE = "#e1e0d9"
BASELINE = "#c3c2b7"
SURFACE = "#fcfcfb"

_FONT = "system-ui, -apple-system, 'Segoe UI', sans-serif"


def cluster_color(index: int) -> str:
    """The categorical color of cluster ``index`` (folded past the 8 slots)."""

    if 0 <= index < len(CATEGORICAL):
        return CATEGORICAL[index]
    return FOLD_COLOR


def schedule_from_trace(trace: Any, machine_count: int) -> Schedule:
    """Reconstruct a :class:`Schedule` from start/complete/kill trace events.

    Jobs that run more than once (killed and resubmitted best-effort runs,
    migrated jobs) get ``#2``, ``#3``... name suffixes so every execution
    keeps its own rectangle -- :meth:`Schedule.add` rejects duplicates.
    Start events without processor indices cannot be placed and are skipped.
    """

    from repro.core.job import RigidJob

    schedule = Schedule(machine_count)
    open_runs: Dict[Tuple[str, Optional[str]], Tuple[float, Tuple[int, ...]]] = {}
    seen: Dict[str, int] = {}
    for event in trace:
        key = (event.job, event.cluster)
        if event.kind == "start":
            if event.processors:
                open_runs[key] = (event.time, event.processors)
        elif event.kind in ("complete", "kill") and key in open_runs:
            start, processors = open_runs.pop(key)
            count = seen.get(event.job, 0)
            seen[event.job] = count + 1
            name = event.job if count == 0 else f"{event.job}#{count + 1}"
            duration = max(event.time - start, 1e-9)
            job = RigidJob(
                name=name,
                release_date=0.0,
                nbproc=len(processors),
                duration=duration,
                owner="trace",
            )
            schedule.add(job, start, processors, runtime=duration)
    return schedule


def _contiguous_groups(processors: Sequence[int]) -> List[Tuple[int, int]]:
    """Merge sorted processor indices into (first, count) rectangles."""

    groups: List[Tuple[int, int]] = []
    for index in sorted(processors):
        if groups and index == groups[-1][0] + groups[-1][1]:
            groups[-1] = (groups[-1][0], groups[-1][1] + 1)
        else:
            groups.append((index, 1))
    return groups


def _nice_step(span: float, target_ticks: int = 6) -> float:
    """A 1/2/5-progression tick step giving roughly ``target_ticks`` ticks."""

    if span <= 0:
        return 1.0
    raw = span / max(target_ticks, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for factor in (1.0, 2.0, 5.0, 10.0):
        if raw <= factor * magnitude:
            return factor * magnitude
    return 10.0 * magnitude


def _format_time(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:g}"


def render_gantt_svg(
    record: Any,
    *,
    title: str = "",
    width: int = 960,
    max_plot_height: int = 520,
) -> str:
    """Render a :class:`SimulationRecord` as a standalone SVG Gantt chart.

    One lane band per cluster (``record.schedules`` keys, sorted), one row
    per processor inside a band, time on the single x axis.  Every run
    rectangle carries a ``<title>`` hover tooltip (job, cluster, interval,
    processor count); best-effort runs are hatched.
    """

    clusters = sorted(record.schedules)
    bands: List[Tuple[str, int, int]] = []  # (name, row offset, machine_count)
    offset = 0
    for name in clusters:
        machines = record.schedules[name].machine_count
        bands.append((name, offset, machines))
        offset += machines
    total_rows = max(offset, 1)
    band_index = {name: position for position, (name, _, _) in enumerate(bands)}
    band_offset = {name: row for name, row, _ in bands}

    runs = record.runs()
    horizon = max(
        [record.horizon] + [run.end for run in runs] + [1e-9]
    )

    row_h = max(3.0, min(16.0, max_plot_height / total_rows))
    band_gap = 8.0 if len(bands) > 1 else 0.0
    margin_left, margin_right = 110, 16
    margin_top, margin_bottom = 56, 34
    plot_w = width - margin_left - margin_right
    plot_h = total_rows * row_h + band_gap * (len(bands) - 1)
    height = int(margin_top + plot_h + margin_bottom)

    def sx(time: float) -> float:
        return margin_left + (time / horizon) * plot_w

    def sy(cluster: str, row: int) -> float:
        return (
            margin_top
            + band_offset[cluster] * row_h
            + band_index[cluster] * band_gap
            + row * row_h
        )

    out: List[str] = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'font-family="{_FONT}" font-size="11">'
    )
    out.append(f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>')

    # Hatch patterns, one per band color, for best-effort runs.
    out.append("<defs>")
    for position in range(len(bands)):
        color = cluster_color(position)
        out.append(
            f'<pattern id="hatch{position}" width="6" height="6" '
            f'patternUnits="userSpaceOnUse" patternTransform="rotate(45)">'
            f'<rect width="6" height="6" fill="{color}"/>'
            f'<line x1="0" y1="0" x2="0" y2="6" stroke="{SURFACE}" '
            f'stroke-width="2" stroke-opacity="0.75"/></pattern>'
        )
    out.append("</defs>")

    # Title block.
    if title:
        out.append(
            f'<text x="{margin_left}" y="20" fill="{INK}" font-size="14" '
            f'font-weight="600">{escape(title)}</text>'
        )
    makespan = getattr(record, "makespan", horizon)
    subtitle = (
        f"{record.mode} · policy {getattr(record, 'policy', '?')} · "
        f"{len(runs)} runs · makespan {_format_time(makespan)}"
    )
    out.append(
        f'<text x="{margin_left}" y="{36 if title else 20}" '
        f'fill="{INK_SECONDARY}" font-size="11">{escape(subtitle)}</text>'
    )

    # Vertical time gridlines + the single x axis.
    step = _nice_step(horizon)
    tick = 0.0
    while tick <= horizon * 1.0001:
        x = sx(min(tick, horizon))
        out.append(
            f'<line x1="{x:.1f}" y1="{margin_top}" x2="{x:.1f}" '
            f'y2="{margin_top + plot_h:.1f}" stroke="{GRIDLINE}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 16:.1f}" fill="{INK_MUTED}" '
            f'font-size="10" text-anchor="middle">{_format_time(tick)}</text>'
        )
        tick += step
    out.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h:.1f}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h:.1f}" '
        f'stroke="{BASELINE}" stroke-width="1"/>'
    )

    # Band labels (direct labels carry identity; the swatch ties in color).
    for position, (name, _row, machines) in enumerate(bands):
        y = sy(name, 0)
        mid = y + machines * row_h / 2
        out.append(
            f'<rect x="{margin_left - 100}" y="{mid - 4:.1f}" width="8" height="8" '
            f'rx="2" fill="{cluster_color(position)}"/>'
        )
        out.append(
            f'<text x="{margin_left - 88}" y="{mid + 4:.1f}" fill="{INK_SECONDARY}" '
            f'font-size="11">{escape(name)}</text>'
        )
        out.append(
            f'<text x="{margin_left - 10}" y="{mid + 4:.1f}" fill="{INK_MUTED}" '
            f'font-size="9" text-anchor="end">{machines}p</text>'
        )

    # Run rectangles: one per contiguous processor group, 1px lane gap.
    skipped = 0
    for run in runs:
        cluster = run.cluster or (clusters[0] if clusters else None)
        if cluster not in band_offset:
            skipped += 1
            continue
        position = band_index[cluster]
        fill = (
            f"url(#hatch{position})"
            if run.kind == "best-effort"
            else cluster_color(position)
        )
        x = sx(run.start)
        rect_w = max(sx(run.end) - x, 1.0)
        tooltip = escape(
            f"{run.name} · {cluster} · {run.kind} · "
            f"t={_format_time(run.start)}..{_format_time(run.end)} · "
            f"{run.nbproc} proc"
        )
        for first, count in _contiguous_groups(run.processors):
            y = sy(cluster, first)
            rect_h = max(count * row_h - 1.0, 1.5)
            out.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{rect_w:.1f}" '
                f'height="{rect_h:.1f}" rx="1.5" fill="{fill}">'
                f"<title>{tooltip}</title></rect>"
            )
    if skipped:
        out.append(
            f'<text x="{margin_left}" y="{height - 6}" fill="{INK_MUTED}" '
            f'font-size="9">{skipped} run(s) on unknown clusters not drawn</text>'
        )

    out.append("</svg>")
    return "".join(out)


def render_scenario_gantt(
    scenario: str,
    *,
    seed: Optional[int] = None,
    smoke: bool = True,
    width: int = 960,
) -> str:
    """Build the representative record of a registered scenario and render it."""

    from repro.scenarios import registry
    from repro.scenarios.composer import build_simulation_record

    spec = registry.get(scenario)
    record = build_simulation_record(spec, seed, smoke=smoke)
    return render_gantt_svg(record, title=scenario, width=width)
