"""Abstract communication layer of the distributed runtime.

The scheduler and workers never touch sockets directly any more: they speak
to each other through a :class:`Comm` (one established, message-oriented,
bidirectional channel) obtained either by :func:`connect`-ing to an address
or handed to a :class:`Listener`'s connection handler.  Addresses are
``scheme://location`` strings; each scheme is served by a :class:`Backend`
looked up in a process-global registry:

* ``tcp://HOST:PORT`` -- asyncio streams speaking the length-prefixed
  JSON framing of :mod:`repro.distributed.protocol` (the PR-4 wire format,
  unchanged: old workers interoperate);
* ``inproc://NAME`` -- in-process channels with no sockets and no
  serialisation syscalls, so tests can spin up a 1000-worker simulated
  fleet inside one process.

The shape follows ``distributed/comm/core.py`` from early dask
``distributed``: tiny abstract ``Comm``/``Listener`` surfaces, concrete
backends registered per scheme, and every error funnelled into a small
exception family so callers can write one ``except CommError`` clause.

All ``Comm`` methods are coroutines and must be driven from an asyncio
event loop; the inproc backend additionally supports *cross-loop* use
(connecting from one thread's loop to a listener owned by another), which
is what lets a synchronous worker join an in-process scheduler.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Awaitable, Callable, Dict, Mapping, Tuple


class CommError(RuntimeError):
    """Base class of every failure raised by the communication layer."""


class CommClosedError(CommError):
    """The peer (or the channel itself) went away mid-conversation."""


class UnknownSchemeError(CommError, ValueError):
    """An address names a scheme no registered backend serves."""


#: A listener invokes this with each freshly established server-side comm.
ConnectionHandler = Callable[["Comm"], Awaitable[None]]


class Comm(ABC):
    """One established bidirectional message channel."""

    #: Human-readable peer description for logs and errors.
    peer: str = "?"

    @abstractmethod
    async def send(self, message: Mapping[str, Any]) -> None:
        """Write one message envelope; raises :class:`CommClosedError` if gone."""

    @abstractmethod
    async def recv(self) -> Dict[str, Any]:
        """Read the next message envelope; raises :class:`CommClosedError` on EOF."""

    @abstractmethod
    async def close(self) -> None:
        """Tear the channel down (idempotent; never raises)."""

    @property
    @abstractmethod
    def closed(self) -> bool:
        """Whether :meth:`close` ran or the peer disconnected."""


class Listener(ABC):
    """A bound address accepting connections and handing comms to a handler."""

    @abstractmethod
    async def start(self) -> None:
        """Bind and begin accepting (the bound :attr:`address` is valid after)."""

    @abstractmethod
    async def stop(self) -> None:
        """Unbind; already-established comms stay open (idempotent)."""

    @property
    @abstractmethod
    def address(self) -> str:
        """The contact address clients should :func:`connect` to."""


class Backend(ABC):
    """Everything one scheme needs: address validation, connect, listen."""

    #: The scheme this backend serves (lowercase, no ``://``).
    scheme: str = ""

    @abstractmethod
    def validate(self, location: str) -> None:
        """Raise :class:`ValueError` when ``location`` is malformed."""

    @abstractmethod
    async def connect(self, location: str) -> Comm:
        """Establish a client comm to ``location``."""

    @abstractmethod
    def listener(self, location: str, handler: ConnectionHandler) -> Listener:
        """A new (unstarted) listener bound to ``location`` once started."""


# -- the scheme registry -----------------------------------------------------

_REGISTRY: Dict[str, Backend] = {}


def register_backend(backend: Backend, *, overwrite: bool = False) -> None:
    """Make ``backend`` the handler of its scheme (collisions are errors)."""

    scheme = backend.scheme.lower()
    if not scheme:
        raise ValueError("a comm backend must declare a non-empty scheme")
    if not overwrite and scheme in _REGISTRY and _REGISTRY[scheme] is not backend:
        raise ValueError(f"comm scheme {scheme!r} is already registered")
    _REGISTRY[scheme] = backend


def registered_schemes() -> Tuple[str, ...]:
    """The schemes the runtime currently speaks, sorted."""

    _ensure_default_backends()
    return tuple(sorted(_REGISTRY))


def get_backend(scheme: str) -> Backend:
    """The backend serving ``scheme``; unknown schemes fail with the menu."""

    _ensure_default_backends()
    backend = _REGISTRY.get(scheme.lower())
    if backend is None:
        known = ", ".join(f"{name}://" for name in sorted(_REGISTRY))
        raise UnknownSchemeError(
            f"unknown comm scheme {scheme!r}: registered schemes are {known} "
            f"(e.g. tcp://127.0.0.1:8765 or inproc://campaign)"
        )
    return backend


def split_address(address: str) -> Tuple[str, str]:
    """Split ``scheme://location`` into its parts, friendly on malformed input."""

    text = str(address).strip()
    scheme, sep, location = text.partition("://")
    if not sep or not scheme:
        known = ", ".join(f"{name}://" for name in registered_schemes())
        raise ValueError(
            f"bad address {address!r}: expected 'SCHEME://LOCATION' with one "
            f"of the registered schemes {known} (e.g. tcp://127.0.0.1:8765)"
        )
    return scheme.lower(), location


def validate_address(address: str) -> Tuple[str, str]:
    """Parse and backend-validate an address, returning ``(scheme, location)``.

    Raises :class:`UnknownSchemeError` for unregistered schemes and
    :class:`ValueError` for locations the backend rejects -- both carrying
    actionable messages, mirroring ``ExecutorSpecError``'s style.
    """

    scheme, location = split_address(address)
    get_backend(scheme).validate(location)
    return scheme, location


async def connect(address: str) -> Comm:
    """Establish a client comm to ``address`` via its scheme's backend."""

    scheme, location = split_address(address)
    return await get_backend(scheme).connect(location)


def listener(address: str, handler: ConnectionHandler) -> Listener:
    """A new (unstarted) listener for ``address`` via its scheme's backend."""

    scheme, location = split_address(address)
    return get_backend(scheme).listener(location, handler)


def _ensure_default_backends() -> None:
    """Import the built-in backends so they self-register (idempotent).

    Imported lazily to keep the import graph acyclic: ``protocol`` imports
    this module for the registry, and the tcp backend imports ``protocol``
    for the framing helpers.
    """

    if "tcp" not in _REGISTRY or "inproc" not in _REGISTRY:
        from repro.distributed.comm import inproc, tcp  # noqa: F401
