"""Unified results API: protocol conformance, row shape, export round-trips."""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.distributed.campaign import CampaignJournal
from repro.experiments.cache import ResultCache
from repro.experiments.grid import CellOutcome, expand_grid
from repro.store.api import (
    FORMATS,
    RowSink,
    RowSource,
    coerce_sink,
    compose_row,
    deprecated_csv_flag,
    infer_format,
    read_rows,
    union_columns,
    write_rows,
)
from repro.store.columnar import CampaignStore


def outcome_for(cell, value=1.0):
    return CellOutcome(cell=cell, metrics={"v": value}, elapsed_seconds=0.25)


def has_pyarrow():
    try:
        import pyarrow  # noqa: F401

        return True
    except ImportError:
        return False


class TestProtocols:
    def all_stores(self, tmp_path):
        return [
            ResultCache(tmp_path / "cache"),
            CampaignJournal(tmp_path / "journal.jsonl"),
            CampaignStore(tmp_path / "store"),
        ]

    def test_every_row_store_is_a_sink_and_a_source(self, tmp_path):
        for store in self.all_stores(tmp_path):
            assert isinstance(store, RowSink), store
            assert isinstance(store, RowSource), store

    def test_write_then_replay_round_trips_on_every_store(self, tmp_path):
        (cell,) = expand_grid({"x": [3]}, repetitions=1)
        outcome = outcome_for(cell, 42.0)
        for store in self.all_stores(tmp_path):
            assert store.write("exp", cell, outcome, "v1") is True
            store.flush()
            replayed = store.replay("exp", cell, "v1")
            assert replayed is not None, store
            assert replayed.cached is True
            assert replayed.metrics == {"v": 42.0}
            assert replayed.elapsed_seconds == pytest.approx(0.25)

    def test_failed_outcomes_are_rejected_by_every_store(self, tmp_path):
        (cell,) = expand_grid({}, repetitions=1)
        failed = CellOutcome(cell=cell, error="boom", error_type="ValueError")
        for store in self.all_stores(tmp_path):
            assert store.write("exp", cell, failed, "v1") is False

    def test_coerce_sink(self, tmp_path):
        store = CampaignStore(tmp_path / "s")
        assert coerce_sink(None) is None
        assert coerce_sink(store) is store
        coerced = coerce_sink(tmp_path / "other")
        assert isinstance(coerced, CampaignStore)


class TestComposeRow:
    def test_shape_and_key_order(self):
        (cell,) = expand_grid({"b": [2], "a": [1]}, repetitions=1, base_seed=7)
        row = compose_row("exp", cell, outcome_for(cell, 9.0))
        assert row == {"experiment": "exp", "seed": 7, "b": 2, "a": 1, "v": 9.0}
        # experiment, seed, then the cell's parameters, then the metrics.
        assert list(row) == ["experiment", "seed"] + list(cell.params_dict) + ["v"]

    def test_matches_the_harness_row(self):
        from repro.experiments.harness import run_experiment

        def run(seed, n):
            return {"twice": 2 * n}

        result = run_experiment("exp", run, {"n": [3]}, repetitions=1, base_seed=5)
        (cell_outcome,) = result.outcomes
        assert result.rows == [compose_row("exp", cell_outcome.cell, cell_outcome)]


class TestFormats:
    def test_infer_format(self):
        assert infer_format("x.csv") == "csv"
        assert infer_format("x.jsonl") == "jsonl"
        assert infer_format("x.ndjson") == "jsonl"
        assert infer_format("x.parquet") == "parquet"
        assert infer_format(Path("x.pq")) == "parquet"
        assert infer_format("whatever.bin", "csv") == "csv"
        with pytest.raises(ValueError):
            infer_format("rows.txt")
        with pytest.raises(ValueError):
            infer_format("rows.csv", "tsv")
        assert set(FORMATS) == {"csv", "jsonl", "parquet"}

    def test_union_columns_first_seen_order(self):
        rows = [{"a": 1, "b": 2}, {"b": 3, "c": 4}, {"a": 5, "d": 6}]
        assert union_columns(rows) == ["a", "b", "c", "d"]

    def test_jsonl_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": "x,y\nz"}, {"a": 2, "c": [1, 2]}]
        path = write_rows(rows, tmp_path / "rows.jsonl")
        assert read_rows(path) == rows

    def test_csv_round_trip_as_text(self, tmp_path):
        rows = [{"a": 1, "b": "plain"}, {"a": 2, "b": "with,comma"}]
        path = write_rows(rows, tmp_path / "rows.csv")
        back = read_rows(path)
        assert [r["b"] for r in back] == ["plain", "with,comma"]

    @pytest.mark.skipif(not has_pyarrow(), reason="pyarrow not installed")
    def test_parquet_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_rows(rows, tmp_path / "rows.parquet")
        assert read_rows(path) == rows

    def test_parquet_without_pyarrow_raises_store_unavailable(self, tmp_path):
        if has_pyarrow():
            pytest.skip("pyarrow installed")
        from repro.store.api import StoreUnavailableError

        with pytest.raises(StoreUnavailableError, match="analytics"):
            write_rows([{"a": 1}], tmp_path / "rows.parquet")


class TestDeprecatedCsvFlag:
    def test_warns_and_passes_through(self):
        with pytest.warns(DeprecationWarning, match="--out"):
            assert deprecated_csv_flag(Path("x.csv")) == Path("x.csv")

    def test_silent_on_none(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert deprecated_csv_flag(None) is None
