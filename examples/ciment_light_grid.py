#!/usr/bin/env python3
"""The CIMENT light grid: centralized best-effort vs decentralized exchange.

Section 5.2 of the paper proposes two ways of linking the clusters of the
Grenoble light grid:

* **centralized** -- local jobs stay on their community's cluster and a
  central server fills the idle processors with best-effort runs of the
  multi-parametric grid jobs, killing and resubmitting them whenever a local
  job needs the processors;
* **decentralized** -- every job is submitted locally and the clusters
  exchange queued work to balance the load.

This example builds the exact Figure-3 platform (104 bi-Itanium2, 48 bi-Xeon,
40 + 24 bi-Athlon nodes), generates one workload per community following the
qualitative description of the paper (long sequential physics jobs, short CS
debug jobs, ...), runs both organisations and prints utilisation, grid
throughput, kill counts and fairness.

Run with:  python examples/ciment_light_grid.py
"""

from __future__ import annotations

from repro.experiments.reporting import ascii_table
from repro.platform.ciment import ciment_grid
from repro.simulation.decentralized import DecentralizedGridSimulator
from repro.simulation.grid_sim import CentralizedGridSimulator
from repro.workload.communities import community_workload, grid_workload

#: Each CIMENT cluster is owned by one community (see repro.platform.ciment).
COMMUNITY_CLUSTER = {
    "computer-science": "icluster-itanium",
    "numerical-physics": "xeon-cluster",
    "astrophysics": "athlon-cluster-a",
    "medical-research": "athlon-cluster-b",
}


def main() -> None:
    grid = ciment_grid()
    print(grid.summary())
    print()

    # Per-community local workloads and multi-parametric grid bags.
    local = {}
    bags = []
    for index, (community, cluster_name) in enumerate(sorted(COMMUNITY_CLUSTER.items())):
        cluster = grid.cluster(cluster_name)
        local[cluster_name] = community_workload(
            community, 15, cluster.processor_count, random_state=10 + index
        )
        bags.extend(grid_workload(community, random_state=40 + index))
    total_runs = sum(b.n_runs for b in bags)
    print(f"Local jobs: {sum(len(j) for j in local.values())} across "
          f"{len(local)} clusters; grid bags: {len(bags)} ({total_runs} runs)\n")

    # ---------------------------------------------------------------- centralized
    centralized = CentralizedGridSimulator(grid, local_policy="backfill").run(local, bags)
    rows = [
        {
            "cluster": cluster.name,
            "community": cluster.community,
            "local_makespan_h": centralized.local_criteria[cluster.name].makespan,
            "utilization": centralized.utilization[cluster.name],
        }
        for cluster in grid
    ]
    print(ascii_table(rows, title="Centralized organisation (best-effort grid jobs)"))
    print(f"  best-effort runs completed : {centralized.total_runs_completed} / {total_runs}")
    print(f"  best-effort kills          : {centralized.kills} "
          f"(each killed run is resubmitted by the central server)")
    print(f"  grid throughput            : {centralized.grid_throughput():.1f} runs / hour\n")

    # -------------------------------------------------------------- decentralized
    decentralized = DecentralizedGridSimulator(
        grid, imbalance_threshold=2.0, local_policy="backfill"
    ).run(local)
    rows = [
        {
            "cluster": cluster.name,
            "jobs_executed": len(decentralized.schedules[cluster.name]),
            "makespan_h": decentralized.criteria[cluster.name].makespan,
        }
        for cluster in grid
    ]
    print(ascii_table(rows, title="Decentralized organisation (load exchange, local jobs only)"))
    print(f"  migrations               : {decentralized.migrations}")
    print(f"  mean flow time (hours)   : {decentralized.mean_flow:.2f}")
    print(f"  fairness on work (Jain)  : {decentralized.fairness.fairness_on_work:.3f}")
    print(f"  most penalised community : {decentralized.fairness.worst_community}")
    print()
    print("Centralized keeps local users completely undisturbed (best-effort jobs")
    print("are killed on demand); decentralized balances the load of overloaded")
    print("communities at the cost of migrations and some interference.")


if __name__ == "__main__":
    main()
