"""CLI of the dashboard: serve, render a Gantt, or run the CI smoke check.

::

    python -m repro.dashboard                       # = serve on :8484
    python -m repro.dashboard serve --port 0 --run cluster.policy-panel \\
        --executor inproc://--workers 4 --smoke
    python -m repro.dashboard gantt cluster.policy-panel --out gantt.svg
    python -m repro.dashboard smoke                 # exit 0/1; used by CI

Exit codes: 0 on success, 1 when the smoke check (or a --run scenario)
fails, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import List, Optional

from repro.dashboard.app import DashboardServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dashboard",
        description="Live telemetry dashboard and Gantt explorer.",
    )
    sub = parser.add_subparsers(dest="command")

    serve = sub.add_parser("serve", help="serve the dashboard (default command)")
    serve.add_argument("--port", type=int, default=8484,
                       help="port to bind (0 picks a free one; default: 8484)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--run", action="append", default=[], metavar="SCENARIO",
        help="also run this scenario's sweep while serving (repeatable); "
             "the server exits when the runs finish",
    )
    serve.add_argument("--smoke", action="store_true",
                       help="with --run: smoke-tier sizes")
    serve.add_argument(
        "--executor", default=None, metavar="SPEC",
        help="with --run: executor spec (a job count, 'serial', "
             "'inproc://', tcp://HOST:PORT, ...)",
    )
    serve.add_argument("--workers", type=int, default=2,
                       help="with --executor inproc:// or tcp://...:0: "
                            "fleet size (default: 2)")

    gantt = sub.add_parser("gantt", help="render one scenario's schedule as SVG")
    gantt.add_argument("scenario", help="a registered, simulator-backed scenario")
    gantt.add_argument("--seed", type=int, default=None,
                       help="cell seed (default: the spec's seed)")
    gantt.add_argument("--full", action="store_true",
                       help="full-tier sizes instead of the smoke tier")
    gantt.add_argument("--out", default=None, metavar="FILE.svg",
                       help="write here instead of stdout")

    smoke = sub.add_parser(
        "smoke",
        help="self-check: serve, run an inproc campaign, poll every endpoint, "
             "assert digest parity with a serial baseline",
    )
    smoke.add_argument("--scenario", default="cluster.policy-panel",
                       help="campaign + Gantt scenario (default: "
                            "cluster.policy-panel)")
    smoke.add_argument("--workers", type=int, default=2,
                       help="inproc fleet size (default: 2)")
    smoke.add_argument("--pollers", type=int, default=2,
                       help="concurrent /api/status pollers during the "
                            "campaign (default: 2)")
    return parser


def _resolve_executor(spec: Optional[str], workers: int):
    if spec is None:
        return None
    if spec.startswith(("inproc://", "tcp://")):
        from repro.distributed.executor import DistributedExecutor

        return DistributedExecutor(spec, workers=workers)
    from repro.scenarios.cli import _executor

    return _executor(spec)


def _fetch(url: str, timeout: float = 30.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.scenarios import registry
    from repro.scenarios.composer import rows_digest, run_scenario

    try:
        specs = [registry.get(name) for name in args.run]
        executor = _resolve_executor(args.executor, args.workers)
    except (KeyError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    with DashboardServer(port=args.port, host=args.host) as server:
        print(f"dashboard serving on {server.url}", file=sys.stderr, flush=True)
        if not specs:
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                return 0
        failures = 0
        for spec in specs:
            try:
                result = run_scenario(spec, smoke=args.smoke, executor=executor)
            except Exception as error:
                failures += 1
                print(f"FAIL {spec.name}: {type(error).__name__}: {error}")
                continue
            print(f"ok   {spec.name}: {len(result.rows)} rows "
                  f"digest {rows_digest(result.rows)[:12]}")
        return 1 if failures else 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.dashboard.gantt import render_scenario_gantt
    from repro.scenarios.spec import SpecError

    try:
        svg = render_scenario_gantt(
            args.scenario, seed=args.seed, smoke=not args.full
        )
    except (KeyError, SpecError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(svg, encoding="utf-8")
        print(f"gantt written to {args.out}", file=sys.stderr)
    else:
        print(svg)
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    from repro.distributed.executor import DistributedExecutor
    from repro.scenarios import registry
    from repro.scenarios.composer import rows_digest, run_scenario

    try:
        spec = registry.get(args.scenario)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2

    print(f"[1/4] serial baseline: {spec.name}", flush=True)
    baseline = run_scenario(spec, smoke=True)
    baseline_digest = rows_digest(baseline.rows)

    failures: List[str] = []
    with DashboardServer(port=0) as server:
        print(f"[2/4] dashboard up on {server.url}; running inproc campaign "
              f"with {args.pollers} poller(s)", flush=True)
        stop = threading.Event()

        def poll_status() -> None:
            while not stop.is_set():
                try:
                    _fetch(f"{server.url}/api/status", timeout=5.0)
                except urllib.error.URLError:
                    pass
                time.sleep(0.05)

        pollers = [
            threading.Thread(target=poll_status, daemon=True)
            for _ in range(max(args.pollers, 0))
        ]
        for thread in pollers:
            thread.start()
        executor = DistributedExecutor("inproc://", workers=args.workers)
        observed = run_scenario(spec, smoke=True, executor=executor)
        stop.set()
        for thread in pollers:
            thread.join(timeout=5.0)
        observed_digest = rows_digest(observed.rows)

        print("[3/4] checking endpoints", flush=True)
        page = _fetch(server.url + "/")
        if b"<html" not in page:
            failures.append("/ did not serve the HTML view")
        status = json.loads(_fetch(server.url + "/api/status"))
        if spec.name not in status.get("sweeps", {}):
            failures.append(f"/api/status has no sweep entry for {spec.name}")
        topics = json.loads(_fetch(server.url + "/api/topics"))["topics"]
        if "sweep" not in topics:
            failures.append("/api/topics lists no 'sweep' topic")
        events = json.loads(_fetch(server.url + "/api/events?topic=sweep&limit=16"))
        if not events.get("events"):
            failures.append("/api/events?topic=sweep returned no events")
        scenarios = json.loads(_fetch(server.url + "/api/scenarios"))["scenarios"]
        gantt_capable = [s["name"] for s in scenarios if s["gantt"]]
        if args.scenario not in gantt_capable:
            failures.append(f"{args.scenario} not Gantt-capable per /api/scenarios")
        svg = _fetch(
            f"{server.url}/gantt.svg?scenario={args.scenario}", timeout=120.0
        )
        if not svg.startswith(b"<svg"):
            failures.append("/gantt.svg did not return an SVG document")

    print("[4/4] digest parity", flush=True)
    if observed_digest != baseline_digest:
        failures.append(
            f"digest drift under observation: serial {baseline_digest[:12]} "
            f"!= inproc+dashboard {observed_digest[:12]}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    print(f"ok   {spec.name}: {len(observed.rows)} rows, digest "
          f"{observed_digest[:12]} identical with dashboard observation; "
          f"all endpoints live")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        argv = ["serve"]
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "gantt":
        return _cmd_gantt(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
