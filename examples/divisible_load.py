#!/usr/bin/env python3
"""Divisible Load scheduling: one round, several rounds, or work stealing?

Section 2.1 of the paper introduces the Divisible Load model and notes that
the distribution of the load "can be made in one, several rounds or
dynamically with a work stealing strategy".  This example compares the three
modes (plus the naive equal split and the asymptotic steady-state bound) on:

* a homogeneous bus platform (the polynomial closed-form case),
* a heterogeneous star with per-worker bandwidths,
* the same star with per-message latencies (where using every worker or too
  many rounds becomes counter-productive).

Run with:  python examples/divisible_load.py
"""

from __future__ import annotations

from repro.core.dlt import (
    DLTPlatform,
    multi_round_distribution,
    optimize_round_count,
    star_single_round,
    steady_state_throughput,
    work_stealing_distribution,
)
from repro.core.dlt.bus import bus_equal_split
from repro.core.dlt.platform import DLTWorker
from repro.core.dlt.star import best_participating_subset
from repro.experiments.reporting import ascii_table

LOAD = 10_000.0


def compare(platform: DLTPlatform, title: str) -> None:
    steady = steady_state_throughput(platform)
    single = star_single_round(LOAD, platform)
    multi = optimize_round_count(LOAD, platform, max_rounds=16)
    stealing = work_stealing_distribution(LOAD, platform)
    rows = [
        {"strategy": "equal split (naive)",
         "makespan": bus_equal_split(LOAD, platform,
                                     bus_time_per_unit=platform.workers[0].comm_time).makespan},
        {"strategy": "single round (optimal fractions)", "makespan": single.makespan},
        {"strategy": f"multi round (best of 1..16 = {multi.rounds} rounds)",
         "makespan": multi.makespan},
        {"strategy": f"work stealing (chunk {stealing.chunk_size:.1f})",
         "makespan": stealing.makespan},
        {"strategy": "steady-state lower bound", "makespan": LOAD / steady.throughput},
    ]
    print(ascii_table(rows, title=title))
    print(f"  workers participating in the single round: {single.participating}"
          f" / {len(platform)}\n")


def main() -> None:
    # 1. Homogeneous bus: the closed form of section 2.1 ("polynomial").
    bus = DLTPlatform.homogeneous(16, compute_time=1.0, comm_time=0.02)
    compare(bus, "Homogeneous bus (16 workers, moderate communication cost)")

    # 2. Heterogeneous star: optimal fractions + fastest-links-first order.
    star = DLTPlatform(
        [DLTWorker(f"w{i}", compute_time=0.5 + 0.25 * (i % 5), comm_time=0.01 * (1 + i % 3))
         for i in range(16)]
    )
    compare(star, "Heterogeneous star (16 workers, per-worker bandwidths)")

    # 3. Latencies: the participating set matters.
    lazy = DLTPlatform(
        [DLTWorker(f"w{i}", compute_time=1.0, comm_time=0.01, latency=20.0) for i in range(16)]
    )
    subset = best_participating_subset(LOAD / 20, lazy)
    print("With a per-message latency of 20 time units and a small load "
          f"({LOAD / 20:.0f} units),")
    print(f"the best single-round distribution only uses {subset.participating} of the "
          f"16 workers (makespan {subset.makespan:.1f}).")
    few_rounds = multi_round_distribution(LOAD, lazy, rounds=2)
    many_rounds = multi_round_distribution(LOAD, lazy, rounds=64)
    print(f"And 2 rounds ({few_rounds.makespan:.1f}) beat 64 rounds "
          f"({many_rounds.makespan:.1f}): latencies penalise over-splitting.")


if __name__ == "__main__":
    main()
