"""Random generators of rigid and moldable Parallel Tasks.

All generators are driven by an explicit seed (or
:class:`numpy.random.Generator`) so every experiment of the repository is
reproducible bit-for-bit.  Runtimes follow a log-uniform distribution by
default -- parallel workloads mix short debug jobs and long production runs
spanning several orders of magnitude -- and weights are either uniform or
proportional to the job work (the two conventions used in the weighted
completion time literature).

:func:`figure2_workload` builds the two workload families of Figure 2:

* ``"non_parallel"`` -- sequential jobs only (each job uses exactly one
  processor);
* ``"parallel"`` -- moldable jobs whose profiles follow a random mix of
  Amdahl and power-law speedups, with maximum parallelism up to the cluster
  size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.job import Job, MoldableJob, RigidJob
from repro.core.speedup import AmdahlSpeedup, PowerLawSpeedup, runtime_profile_array
from repro.workload.table import JobTable

RandomState = Union[int, np.random.Generator, None]


def _rng(random_state: RandomState) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


@dataclass
class WorkloadConfig:
    """Parameters shared by the synthetic workload generators."""

    #: Minimum and maximum sequential runtime (log-uniform distribution).
    runtime_range: Tuple[float, float] = (1.0, 100.0)
    #: Weights: "unit" (all 1), "work" (proportional to sequential work) or
    #: "random" (uniform in [1, 10]).
    weight_scheme: str = "unit"
    #: Fraction of jobs that are sequential even in a "parallel" workload.
    sequential_fraction: float = 0.0
    #: Maximum processor count of moldable jobs (None = platform size).
    max_procs: Optional[int] = None
    #: Range of the Amdahl serial fraction of moldable jobs.
    serial_fraction_range: Tuple[float, float] = (0.02, 0.25)
    #: Range of the power-law exponent of moldable jobs.
    power_alpha_range: Tuple[float, float] = (0.7, 1.0)

    def __post_init__(self) -> None:
        lo, hi = self.runtime_range
        if lo <= 0 or hi < lo:
            raise ValueError("invalid runtime_range")
        if self.weight_scheme not in ("unit", "work", "random"):
            raise ValueError("weight_scheme must be 'unit', 'work' or 'random'")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ValueError("sequential_fraction must be in [0, 1]")


def _runtimes(rng: np.random.Generator, n: int, runtime_range: Tuple[float, float]) -> np.ndarray:
    lo, hi = runtime_range
    return np.exp(rng.uniform(math.log(lo), math.log(hi), size=n))


def _weight(rng: np.random.Generator, scheme: str, work: float) -> float:
    if scheme == "unit":
        return 1.0
    if scheme == "work":
        return float(work)
    return float(rng.uniform(1.0, 10.0))


def generate_rigid_jobs(
    n_jobs: int,
    machine_count: int,
    *,
    config: Optional[WorkloadConfig] = None,
    max_procs: Optional[int] = None,
    random_state: RandomState = None,
    name_prefix: str = "rigid",
) -> List[RigidJob]:
    """Random rigid jobs: log-uniform runtimes, log-uniform processor counts."""

    if n_jobs < 0:
        raise ValueError("n_jobs must be >= 0")
    config = config or WorkloadConfig()
    rng = _rng(random_state)
    cap = max_procs or config.max_procs or machine_count
    cap = min(cap, machine_count)
    runtimes = _runtimes(rng, n_jobs, config.runtime_range)
    jobs: List[RigidJob] = []
    for i in range(n_jobs):
        # Log-uniform processor requirement in [1, cap]: most jobs are small,
        # a few are large, which matches observed supercomputer workloads.
        nbproc = int(round(math.exp(rng.uniform(0.0, math.log(cap))))) if cap > 1 else 1
        nbproc = max(1, min(cap, nbproc))
        duration = float(runtimes[i])
        jobs.append(
            RigidJob(
                name=f"{name_prefix}-{i:05d}",
                nbproc=nbproc,
                duration=duration,
                weight=_weight(rng, config.weight_scheme, duration * nbproc),
            )
        )
    return jobs


def generate_moldable_jobs(
    n_jobs: int,
    machine_count: int,
    *,
    config: Optional[WorkloadConfig] = None,
    random_state: RandomState = None,
    name_prefix: str = "moldable",
) -> List[MoldableJob]:
    """Random moldable jobs with Amdahl or power-law speedup profiles."""

    if n_jobs < 0:
        raise ValueError("n_jobs must be >= 0")
    config = config or WorkloadConfig()
    rng = _rng(random_state)
    cap = min(config.max_procs or machine_count, machine_count)
    runtimes = _runtimes(rng, n_jobs, config.runtime_range)
    # Struct-of-arrays fast path: the RNG draw loop below is kept scalar --
    # per-job draw *order* is part of the reproducibility contract -- but
    # profiles are built as float64 arrays and collected into one JobTable,
    # which validates the whole batch in a few vectorized passes and
    # materializes MoldableJob objects with their bound caches pre-seeded
    # (bit-identical to constructing each job individually).
    names: List[str] = []
    profiles: List[np.ndarray] = []
    weights: List[float] = []
    for i in range(n_jobs):
        seq = float(runtimes[i])
        if rng.random() < config.sequential_fraction:
            profile = np.array([seq])
        else:
            if rng.random() < 0.5:
                lo, hi = config.serial_fraction_range
                model = AmdahlSpeedup(float(rng.uniform(lo, hi)))
            else:
                lo, hi = config.power_alpha_range
                model = PowerLawSpeedup(float(rng.uniform(lo, hi)))
            max_procs = int(rng.integers(2, cap + 1)) if cap >= 2 else 1
            profile = runtime_profile_array(seq, max_procs, model)
        names.append(f"{name_prefix}-{i:05d}")
        profiles.append(profile)
        weights.append(_weight(rng, config.weight_scheme, seq))
    if not names:
        return []
    return JobTable.from_profiles(names, profiles, weights=weights).to_jobs()


def generate_mixed_jobs(
    n_jobs: int,
    machine_count: int,
    *,
    rigid_fraction: float = 0.3,
    config: Optional[WorkloadConfig] = None,
    random_state: RandomState = None,
    name_prefix: str = "job",
) -> List[Job]:
    """A mix of rigid and moldable jobs (section 5.1 scenario)."""

    if not 0.0 <= rigid_fraction <= 1.0:
        raise ValueError("rigid_fraction must be in [0, 1]")
    rng = _rng(random_state)
    n_rigid = int(round(n_jobs * rigid_fraction))
    n_moldable = n_jobs - n_rigid
    rigid = generate_rigid_jobs(
        n_rigid, machine_count, config=config, random_state=rng,
        name_prefix=f"{name_prefix}-r",
    )
    moldable = generate_moldable_jobs(
        n_moldable, machine_count, config=config, random_state=rng,
        name_prefix=f"{name_prefix}-m",
    )
    jobs: List[Job] = [*rigid, *moldable]
    rng.shuffle(jobs)  # type: ignore[arg-type]
    return jobs


def figure2_workload(
    n_jobs: int,
    machine_count: int = 100,
    *,
    family: str = "parallel",
    random_state: RandomState = None,
    runtime_range: Tuple[float, float] = (1.0, 50.0),
    weight_scheme: str = "work",
) -> List[MoldableJob]:
    """The two workload families of Figure 2.

    Parameters
    ----------
    family:
        ``"parallel"`` -- moldable jobs (random Amdahl / power-law profiles);
        ``"non_parallel"`` -- strictly sequential jobs.
    weight_scheme:
        Weights of the ``sum w_i C_i`` criterion; the default makes the weight
        proportional to the job's sequential work, the usual convention when
        users "pay" proportionally to the resources they request.
    """

    if family not in ("parallel", "non_parallel"):
        raise ValueError("family must be 'parallel' or 'non_parallel'")
    config = WorkloadConfig(
        runtime_range=runtime_range,
        weight_scheme=weight_scheme,
        sequential_fraction=1.0 if family == "non_parallel" else 0.0,
        max_procs=machine_count,
    )
    return generate_moldable_jobs(
        n_jobs,
        machine_count,
        config=config,
        random_state=random_state,
        name_prefix=family,
    )
