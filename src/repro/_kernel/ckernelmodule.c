/* Compiled tier for the discrete-event simulation kernel.
 *
 * `repro._ckernel` provides `KernelCore`, a C implementation of the
 * EventQueue + Simulator run loop from `repro.simulation` with identical
 * observable semantics:
 *
 *   - events ordered by (time, priority, seq); seq is a monotonically
 *     increasing insertion counter, so ordering is fully deterministic;
 *   - cancelled events stay in the heap and are dropped lazily;
 *   - the run loop dispatches every event tied at the current timestamp in
 *     one batch, re-checking stop / max-events between callbacks;
 *   - error messages match the pure-python kernel byte for byte, so tests
 *     written against the pure tier pass unchanged.
 *
 * Event times are C doubles.  The pure kernel can in principle carry any
 * python number through the heap, but every in-repo scheduling call site
 * produces floats (verified by the equivalence suite), so the layouts agree
 * bit for bit and result digests are identical across tiers.
 *
 * The type is deliberately a superset of both EventQueue (push/pop/
 * peek_time/cancel/clear/len) and the Simulator scheduling surface
 * (schedule/schedule_at/run/stop/now/processed): `_CompiledSimulator` in
 * `repro.simulation.engine` binds these methods directly as instance
 * attributes so hot call sites skip a python-level dispatch layer.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* CEvent                                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    long priority;
    long long seq;
    PyObject *callback; /* strong; never NULL after init (may be None) */
    PyObject *label;    /* strong; never NULL after init */
    char cancelled;
} CEvent;

static PyTypeObject CEvent_Type;

#define CEvent_Check(op) Py_IS_TYPE((op), &CEvent_Type)

/* Recycling dead events sidesteps both the GC allocator round-trip and the
 * generation-0 collection pressure of two allocations per dispatched event
 * (the kernel.churn bench schedules a decoy per tick). */
#define CEVENT_FREELIST_MAX 512
static CEvent *cevent_freelist[CEVENT_FREELIST_MAX];
static int cevent_freelist_size = 0;

/* Interned keyword names, initialised in PyInit__ckernel. */
static PyObject *s_priority, *s_label, *s_callback, *s_until, *s_max_events;

/* Allocate (or recycle) an event; fields other than refcount are unset. */
static CEvent *
cevent_alloc(void)
{
    if (cevent_freelist_size > 0) {
        CEvent *ev = cevent_freelist[--cevent_freelist_size];
        Py_SET_REFCNT((PyObject *)ev, 1);
        PyObject_GC_Track((PyObject *)ev);
        return ev;
    }
    return (CEvent *)CEvent_Type.tp_alloc(&CEvent_Type, 0);
}

static PyObject *
cevent_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "priority", "seq", "callback", "label", NULL};
    double time = 0.0;
    long priority = 0;
    long long seq = 0;
    PyObject *callback = Py_None;
    PyObject *label = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "d|lLOO", kwlist, &time,
                                     &priority, &seq, &callback, &label))
        return NULL;
    CEvent *self = type == &CEvent_Type ? cevent_alloc()
                                        : (CEvent *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->time = time;
    self->priority = priority;
    self->seq = seq;
    Py_INCREF(callback);
    self->callback = callback;
    if (label == NULL)
        label = PyUnicode_FromString("");
    else
        Py_INCREF(label);
    self->label = label;
    self->cancelled = 0;
    return (PyObject *)self;
}

static int
cevent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->label);
    return 0;
}

static int
cevent_clear(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->label);
    return 0;
}

static void
cevent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    cevent_clear(self);
    if (cevent_freelist_size < CEVENT_FREELIST_MAX) {
        cevent_freelist[cevent_freelist_size++] = self;
        return;
    }
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
cevent_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    self->cancelled = 1;
    Py_RETURN_NONE;
}

static PyObject *
cevent_sort_key(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("(dlL)", self->time, self->priority, self->seq);
}

static PyObject *
cevent_repr(CEvent *self)
{
    char buf[64];
    PyOS_snprintf(buf, sizeof(buf), "%g", self->time);
    int labelled = self->label != NULL ? PyObject_IsTrue(self->label) : 0;
    if (labelled < 0)
        return NULL;
    PyObject *label_part;
    if (labelled) {
        PyObject *label_repr = PyObject_Repr(self->label);
        if (label_repr == NULL)
            return NULL;
        label_part = PyUnicode_FromFormat(" %U", label_repr);
        Py_DECREF(label_repr);
    }
    else {
        label_part = PyUnicode_FromString("");
    }
    if (label_part == NULL)
        return NULL;
    PyObject *out = PyUnicode_FromFormat("<Event t=%s prio=%ld seq=%lld%U%s>", buf,
                                         self->priority, self->seq, label_part,
                                         self->cancelled ? " cancelled" : "");
    Py_DECREF(label_part);
    return out;
}

static PyObject *
cevent_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_LT || !CEvent_Check(a) || !CEvent_Check(b))
        Py_RETURN_NOTIMPLEMENTED;
    CEvent *x = (CEvent *)a, *y = (CEvent *)b;
    int lt;
    if (x->time != y->time)
        lt = x->time < y->time;
    else if (x->priority != y->priority)
        lt = x->priority < y->priority;
    else
        lt = x->seq < y->seq;
    return PyBool_FromLong(lt);
}

static PyObject *
cevent_get_cancelled(CEvent *self, void *Py_UNUSED(closure))
{
    return PyBool_FromLong(self->cancelled);
}

static int
cevent_set_cancelled(CEvent *self, PyObject *value, void *Py_UNUSED(closure))
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete cancelled");
        return -1;
    }
    int truth = PyObject_IsTrue(value);
    if (truth < 0)
        return -1;
    self->cancelled = (char)truth;
    return 0;
}

static PyMemberDef cevent_members[] = {
    {"time", T_DOUBLE, offsetof(CEvent, time), 0, "simulation time the event fires at"},
    {"priority", T_LONG, offsetof(CEvent, priority), 0, "tie-break priority"},
    {"seq", T_LONGLONG, offsetof(CEvent, seq), 0, "insertion sequence number"},
    {"callback", T_OBJECT_EX, offsetof(CEvent, callback), 0, "zero-argument callable"},
    {"label", T_OBJECT_EX, offsetof(CEvent, label), 0, "trace label"},
    {NULL},
};

static PyGetSetDef cevent_getset[] = {
    {"cancelled", (getter)cevent_get_cancelled, (setter)cevent_set_cancelled,
     "cancelled events stay in the heap but are skipped when popped", NULL},
    {NULL},
};

static PyMethodDef cevent_methods[] = {
    {"cancel", (PyCFunction)cevent_cancel, METH_NOARGS,
     "Mark the event as cancelled; it will be silently dropped."},
    {"sort_key", (PyCFunction)cevent_sort_key, METH_NOARGS,
     "Return the deterministic (time, priority, seq) ordering key."},
    {NULL},
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback handle (compiled tier).",
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_richcompare = cevent_richcompare,
    .tp_methods = cevent_methods,
    .tp_members = cevent_members,
    .tp_getset = cevent_getset,
    .tp_new = cevent_new,
};

/* ------------------------------------------------------------------ */
/* KernelCore                                                         */
/* ------------------------------------------------------------------ */

typedef struct {
    double time;
    long priority;
    long long seq;
    PyObject *ev; /* strong ref to a CEvent */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t size;
    Py_ssize_t capacity;
    long long seq;
    Py_ssize_t live;
    double now;
    long long processed;
    char running;
    char stop_requested;
} KernelCore;

static PyTypeObject KernelCore_Type;

static inline int
entry_lt(const HeapEntry *a, const HeapEntry *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->seq < b->seq;
}

/* Append `item` (ownership of item.ev transferred in) and bubble it up. */
static int
heap_push(KernelCore *self, HeapEntry item)
{
    if (self->size == self->capacity) {
        Py_ssize_t cap = self->capacity ? self->capacity * 2 : 64;
        HeapEntry *heap = PyMem_Realloc(self->heap, (size_t)cap * sizeof(HeapEntry));
        if (heap == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        self->heap = heap;
        self->capacity = cap;
    }
    HeapEntry *heap = self->heap;
    Py_ssize_t pos = self->size++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&item, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
    return 0;
}

/* Remove and return the smallest entry; caller owns the returned ref. */
static HeapEntry
heap_pop_min(KernelCore *self)
{
    HeapEntry *heap = self->heap;
    HeapEntry result = heap[0];
    Py_ssize_t n = --self->size;
    if (n > 0) {
        HeapEntry last = heap[n];
        Py_ssize_t pos = 0, child;
        while ((child = 2 * pos + 1) < n) {
            if (child + 1 < n && entry_lt(&heap[child + 1], &heap[child]))
                child++;
            if (!entry_lt(&heap[child], &last))
                break;
            heap[pos] = heap[child];
            pos = child;
        }
        heap[pos] = last;
    }
    return result;
}

/* Drop cancelled events sitting at the heap top (lazy deletion). */
static void
core_purge_top(KernelCore *self)
{
    while (self->size > 0 && ((CEvent *)self->heap[0].ev)->cancelled) {
        HeapEntry e = heap_pop_min(self);
        Py_DECREF(e.ev);
    }
}

static PyObject *
core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "KernelCore() takes no arguments");
        return NULL;
    }
    KernelCore *self = (KernelCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = 0;
    self->capacity = 0;
    self->seq = 0;
    self->live = 0;
    self->now = 0.0;
    self->processed = 0;
    self->running = 0;
    self->stop_requested = 0;
    return (PyObject *)self;
}

static int
core_traverse(KernelCore *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->heap[i].ev);
    return 0;
}

static int
core_clear_refs(KernelCore *self)
{
    Py_ssize_t n = self->size;
    self->size = 0;
    self->live = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->heap[i].ev);
    return 0;
}

static void
core_dealloc(KernelCore *self)
{
    PyObject_GC_UnTrack(self);
    core_clear_refs(self);
    PyMem_Free(self->heap);
    self->heap = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Create the event, push it, return a new reference to it. */
static PyObject *
core_push_internal(KernelCore *self, double time, PyObject *callback,
                   long priority, PyObject *label)
{
    if (time < 0.0) {
        PyErr_SetString(PyExc_ValueError, "cannot schedule an event at a negative time");
        return NULL;
    }
    CEvent *ev = cevent_alloc();
    if (ev == NULL)
        return NULL;
    ev->time = time;
    ev->priority = priority;
    ev->seq = self->seq++;
    Py_INCREF(callback);
    ev->callback = callback;
    if (label == NULL)
        label = PyUnicode_FromString("");
    else
        Py_INCREF(label);
    ev->label = label;
    ev->cancelled = 0;
    HeapEntry item = {time, priority, ev->seq, (PyObject *)ev};
    Py_INCREF(ev); /* the heap's reference */
    if (heap_push(self, item) < 0) {
        Py_DECREF(ev);
        Py_DECREF(ev);
        return NULL;
    }
    self->live++;
    return (PyObject *)ev;
}

/* Shared fastcall argument parsing for push / schedule / schedule_at:
 * (time_or_delay, callback, *, priority=0, label=""). */
static int
parse_sched_args(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                 const char *name, PyObject **time_obj, PyObject **callback,
                 long *priority, PyObject **label)
{
    *time_obj = NULL;
    *callback = NULL;
    *priority = 0;
    *label = NULL;
    if (nargs > 2) {
        PyErr_Format(PyExc_TypeError, "%s() takes at most 2 positional arguments", name);
        return -1;
    }
    if (nargs >= 1)
        *time_obj = args[0];
    if (nargs == 2)
        *callback = args[1];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *kw = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (kw == s_priority || PyUnicode_CompareWithASCIIString(kw, "priority") == 0) {
                PyObject *idx = PyNumber_Index(value);
                if (idx == NULL)
                    return -1;
                *priority = PyLong_AsLong(idx);
                Py_DECREF(idx);
                if (*priority == -1 && PyErr_Occurred())
                    return -1;
            }
            else if (kw == s_label || PyUnicode_CompareWithASCIIString(kw, "label") == 0) {
                *label = value;
            }
            else if (kw == s_callback || PyUnicode_CompareWithASCIIString(kw, "callback") == 0) {
                if (*callback != NULL) {
                    PyErr_Format(PyExc_TypeError,
                                 "%s() got multiple values for argument 'callback'", name);
                    return -1;
                }
                *callback = value;
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "%s() got an unexpected keyword argument %R", name, kw);
                return -1;
            }
        }
    }
    if (*time_obj == NULL || *callback == NULL) {
        PyErr_Format(PyExc_TypeError, "%s() missing required arguments", name);
        return -1;
    }
    return 0;
}

static PyObject *
core_push(KernelCore *self, PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *time_obj, *callback, *label;
    long priority;
    if (parse_sched_args(args, nargs, kwnames, "push", &time_obj, &callback,
                         &priority, &label) < 0)
        return NULL;
    double t = PyFloat_AsDouble(time_obj);
    if (t == -1.0 && PyErr_Occurred())
        return NULL;
    return core_push_internal(self, t, callback, priority, label);
}

static PyObject *
core_schedule(KernelCore *self, PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *time_obj, *callback, *label;
    long priority;
    if (parse_sched_args(args, nargs, kwnames, "schedule", &time_obj, &callback,
                         &priority, &label) < 0)
        return NULL;
    double delay = PyFloat_AsDouble(time_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0.0) {
        PyErr_SetString(PyExc_ValueError, "cannot schedule in the past (negative delay)");
        return NULL;
    }
    return core_push_internal(self, self->now + delay, callback, priority, label);
}

static PyObject *
core_schedule_at(KernelCore *self, PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *time_obj, *callback, *label;
    long priority;
    if (parse_sched_args(args, nargs, kwnames, "schedule_at", &time_obj, &callback,
                         &priority, &label) < 0)
        return NULL;
    double t = PyFloat_AsDouble(time_obj);
    if (t == -1.0 && PyErr_Occurred())
        return NULL;
    if (t < self->now - 1e-12) {
        PyObject *now_obj = PyFloat_FromDouble(self->now);
        if (now_obj == NULL)
            return NULL;
        PyErr_Format(PyExc_ValueError, "cannot schedule at %S, current time is already %S",
                     time_obj, now_obj);
        Py_DECREF(now_obj);
        return NULL;
    }
    return core_push_internal(self, t > self->now ? t : self->now, callback,
                              priority, label);
}

static PyObject *
core_pop(KernelCore *self, PyObject *Py_UNUSED(ignored))
{
    while (self->size > 0) {
        HeapEntry e = heap_pop_min(self);
        CEvent *ev = (CEvent *)e.ev;
        if (ev->cancelled) {
            Py_DECREF(ev);
            continue;
        }
        self->live--;
        return (PyObject *)ev;
    }
    PyErr_SetString(PyExc_IndexError, "pop from an empty event queue");
    return NULL;
}

static PyObject *
core_peek_time(KernelCore *self, PyObject *Py_UNUSED(ignored))
{
    core_purge_top(self);
    if (self->size == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(self->heap[0].time);
}

static PyObject *
core_cancel(KernelCore *self, PyObject *event)
{
    if (CEvent_Check(event)) {
        CEvent *ev = (CEvent *)event;
        if (!ev->cancelled) {
            ev->cancelled = 1;
            self->live--;
        }
        Py_RETURN_NONE;
    }
    /* Duck-typed fallback (e.g. a pure-python Event passed across tiers). */
    PyObject *flag = PyObject_GetAttrString(event, "cancelled");
    if (flag == NULL)
        return NULL;
    int truth = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (truth < 0)
        return NULL;
    if (!truth) {
        PyObject *res = PyObject_CallMethod(event, "cancel", NULL);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
        self->live--;
    }
    Py_RETURN_NONE;
}

static PyObject *
core_clear(KernelCore *self, PyObject *Py_UNUSED(ignored))
{
    core_clear_refs(self);
    Py_RETURN_NONE;
}

static PyObject *
core_stop(KernelCore *self, PyObject *Py_UNUSED(ignored))
{
    self->stop_requested = 1;
    Py_RETURN_NONE;
}

static PyObject *
core_run(KernelCore *self, PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *until_obj = Py_None;
    PyObject *max_events_obj = Py_None;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "run() takes at most 1 positional argument");
        return NULL;
    }
    if (nargs == 1)
        until_obj = args[0];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *kw = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (kw == s_until || PyUnicode_CompareWithASCIIString(kw, "until") == 0) {
                if (nargs == 1) {
                    PyErr_SetString(PyExc_TypeError,
                                    "run() got multiple values for argument 'until'");
                    return NULL;
                }
                until_obj = value;
            }
            else if (kw == s_max_events || PyUnicode_CompareWithASCIIString(kw, "max_events") == 0) {
                max_events_obj = value;
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "run() got an unexpected keyword argument %R", kw);
                return NULL;
            }
        }
    }
    int has_limit = 0;
    double until_d = 0.0, limit = 0.0;
    if (until_obj != Py_None) {
        until_d = PyFloat_AsDouble(until_obj);
        if (until_d == -1.0 && PyErr_Occurred())
            return NULL;
        has_limit = 1;
        limit = until_d + 1e-12;
    }
    int has_budget = 0;
    long long remaining = 0;
    if (max_events_obj != Py_None) {
        PyObject *idx = PyNumber_Index(max_events_obj);
        if (idx == NULL)
            return NULL;
        remaining = PyLong_AsLongLong(idx);
        Py_DECREF(idx);
        if (remaining == -1 && PyErr_Occurred())
            return NULL;
        has_budget = 1;
    }
    if (self->running) {
        PyErr_SetString(PyExc_RuntimeError,
                        "simulator is already running (re-entrant run())");
        return NULL;
    }
    self->running = 1;
    self->stop_requested = 0;
    int failed = 0;
    while (self->size > 0) {
        CEvent *head = (CEvent *)self->heap[0].ev;
        if (head->cancelled) {
            HeapEntry e = heap_pop_min(self);
            Py_DECREF(e.ev);
            continue;
        }
        double now = self->heap[0].time;
        if (has_limit && now > limit) {
            self->now = until_d;
            goto done;
        }
        self->now = now;
        /* Batched same-time dispatch, mirroring Simulator.run(). */
        while (self->size > 0 && self->heap[0].time == now) {
            HeapEntry e = heap_pop_min(self);
            CEvent *ev = (CEvent *)e.ev;
            if (ev->cancelled) {
                Py_DECREF(ev);
                continue;
            }
            self->live--;
            PyObject *res = PyObject_CallNoArgs(ev->callback);
            Py_DECREF(ev);
            if (res == NULL) {
                failed = 1;
                goto done;
            }
            Py_DECREF(res);
            self->processed++;
            if (self->stop_requested)
                goto done;
            if (has_budget && --remaining <= 0)
                goto done;
        }
    }
    /* Queue fully drained: advance the clock to the horizon. */
    if (has_limit && until_d > self->now)
        self->now = until_d;
done:
    self->running = 0;
    if (failed)
        return NULL;
    return PyFloat_FromDouble(self->now);
}

static Py_ssize_t
core_len(KernelCore *self)
{
    return self->live > 0 ? self->live : 0;
}

static int
core_bool(KernelCore *self)
{
    core_purge_top(self);
    return self->size > 0;
}

static PyObject *
core_get_now(KernelCore *self, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
core_get_processed(KernelCore *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->processed);
}

static int
core_set_processed(KernelCore *self, PyObject *value, void *Py_UNUSED(closure))
{
    if (value == NULL) {
        PyErr_SetString(PyExc_AttributeError, "cannot delete processed");
        return -1;
    }
    PyObject *idx = PyNumber_Index(value);
    if (idx == NULL)
        return -1;
    long long processed = PyLong_AsLongLong(idx);
    Py_DECREF(idx);
    if (processed == -1 && PyErr_Occurred())
        return -1;
    self->processed = processed;
    return 0;
}

static PyObject *
core_get_running(KernelCore *self, void *Py_UNUSED(closure))
{
    return PyBool_FromLong(self->running);
}

static PyObject *
core_repr(KernelCore *self)
{
    char now_buf[64];
    PyOS_snprintf(now_buf, sizeof(now_buf), "%.3f", self->now);
    return PyUnicode_FromFormat("KernelCore(now=%s, pending=%zd)", now_buf,
                                core_len(self));
}

static PyMethodDef core_methods[] = {
    {"push", (PyCFunction)(void (*)(void))core_push, METH_FASTCALL | METH_KEYWORDS,
     "push(time, callback, *, priority=0, label='') -> Event"},
    {"schedule", (PyCFunction)(void (*)(void))core_schedule, METH_FASTCALL | METH_KEYWORDS,
     "schedule(delay, callback, *, priority=0, label='') -> Event"},
    {"schedule_at", (PyCFunction)(void (*)(void))core_schedule_at, METH_FASTCALL | METH_KEYWORDS,
     "schedule_at(time, callback, *, priority=0, label='') -> Event"},
    {"pop", (PyCFunction)core_pop, METH_NOARGS,
     "Remove and return the next non-cancelled event."},
    {"peek_time", (PyCFunction)core_peek_time, METH_NOARGS,
     "Time of the next non-cancelled event, or None when empty."},
    {"cancel", (PyCFunction)core_cancel, METH_O,
     "Cancel an event (lazy heap removal)."},
    {"clear", (PyCFunction)core_clear, METH_NOARGS, "Drop all pending events."},
    {"run", (PyCFunction)(void (*)(void))core_run, METH_FASTCALL | METH_KEYWORDS,
     "run(until=None, *, max_events=None) -> float"},
    {"stop", (PyCFunction)core_stop, METH_NOARGS,
     "Request the run loop to stop after the current event."},
    {NULL},
};

static PyGetSetDef core_getset[] = {
    {"now", (getter)core_get_now, NULL, "current simulation time", NULL},
    {"processed", (getter)core_get_processed, (setter)core_set_processed,
     "number of events dispatched so far", NULL},
    {"running", (getter)core_get_running, NULL, "True while run() is active", NULL},
    {NULL},
};

static PySequenceMethods core_as_sequence = {
    .sq_length = (lenfunc)core_len,
};

static PyNumberMethods core_as_number = {
    .nb_bool = (inquiry)core_bool,
};

static PyTypeObject KernelCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._ckernel.KernelCore",
    .tp_basicsize = sizeof(KernelCore),
    .tp_dealloc = (destructor)core_dealloc,
    .tp_repr = (reprfunc)core_repr,
    .tp_as_number = &core_as_number,
    .tp_as_sequence = &core_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled event queue + run loop (deterministic, digest-identical "
              "to the pure-python kernel).",
    .tp_traverse = (traverseproc)core_traverse,
    .tp_clear = (inquiry)core_clear_refs,
    .tp_methods = core_methods,
    .tp_getset = core_getset,
    .tp_new = core_new,
};

/* ------------------------------------------------------------------ */
/* module                                                             */
/* ------------------------------------------------------------------ */

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._ckernel",
    .m_doc = "Compiled tier of the discrete-event simulation kernel.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (PyType_Ready(&CEvent_Type) < 0 || PyType_Ready(&KernelCore_Type) < 0)
        return NULL;
    s_priority = PyUnicode_InternFromString("priority");
    s_label = PyUnicode_InternFromString("label");
    s_callback = PyUnicode_InternFromString("callback");
    s_until = PyUnicode_InternFromString("until");
    s_max_events = PyUnicode_InternFromString("max_events");
    if (!s_priority || !s_label || !s_callback || !s_until || !s_max_events)
        return NULL;
    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CEvent_Type);
    if (PyModule_AddObject(module, "Event", (PyObject *)&CEvent_Type) < 0) {
        Py_DECREF(&CEvent_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&KernelCore_Type);
    if (PyModule_AddObject(module, "KernelCore", (PyObject *)&KernelCore_Type) < 0) {
        Py_DECREF(&KernelCore_Type);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddStringConstant(module, "KERNEL_TIER", "compiled") < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
