"""Classical list scheduling of rigid (or pre-allocated moldable) jobs.

List scheduling is the baseline every other policy is compared against: take
the jobs in some order and start each as early as possible.  The order is a
parameter (FCFS, LPT, SPT, largest-area, WSPT); LPT is the traditional choice
for makespan and WSPT for weighted completion times.

Moldable jobs are first frozen to rigid ones using a
:class:`repro.core.policies.base.MoldableAllocator` (``sequential`` by
default, i.e. the "Non Parallel" treatment of Figure 2 where every job runs
on a single processor).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.allocation import Schedule
from repro.core.job import Job, validate_jobs
from repro.core.policies.base import (
    MoldableAllocator,
    OfflineScheduler,
    list_schedule_rigid,
    sort_jobs,
)


class ListScheduler(OfflineScheduler):
    """Greedy list scheduling with a configurable job order.

    Parameters
    ----------
    order:
        One of ``"fcfs"``, ``"lpt"``, ``"spt"``, ``"area"``, ``"wspt"``.
    allocator:
        Strategy freezing moldable jobs into rigid ones; the default uses a
        single processor per moldable job so the policy degrades gracefully
        to the sequential baseline.
    """

    def __init__(
        self,
        order: str = "lpt",
        allocator: Optional[MoldableAllocator] = None,
    ) -> None:
        self.order = order
        self.allocator = allocator or MoldableAllocator("sequential")
        self.name = f"list-{order}"

    def schedule(
        self, jobs: Sequence[Job], machine_count: int, *, start_time: float = 0.0
    ) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        ordered = sort_jobs(jobs, self.order)
        allocations = self.allocator.freeze(ordered, machine_count)
        return list_schedule_rigid(allocations, machine_count, start_time=start_time)


class OnlineListScheduler(ListScheduler):
    """List scheduling that also respects release dates (FCFS queue discipline).

    It is the simplest possible on-line policy: jobs are considered in FCFS
    order and started as soon as enough processors are free after their
    release date.  The grid simulators use it as the default local-cluster
    policy when no backfilling is requested.
    """

    def __init__(self, allocator: Optional[MoldableAllocator] = None) -> None:
        super().__init__(order="fcfs", allocator=allocator)
        self.name = "online-fcfs"

    def schedule(
        self, jobs: Sequence[Job], machine_count: int, *, start_time: float = 0.0
    ) -> Schedule:
        jobs = validate_jobs(jobs)
        if not jobs:
            return Schedule(machine_count)
        ordered = sort_jobs(jobs, self.order)
        allocations = self.allocator.freeze(ordered, machine_count)
        return list_schedule_rigid(
            allocations,
            machine_count,
            start_time=start_time,
            respect_release_dates=True,
        )
