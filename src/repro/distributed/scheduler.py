"""The campaign scheduler: owns the cell queue, workers pull from it.

One :class:`Scheduler` binds a TCP listening socket and serves *campaigns*
(one sweep each) to socket-connected workers speaking the protocol of
:mod:`repro.distributed.protocol`.  The design follows the minimal
scheduler/worker shape of early ``distributed`` (central queue, registered
workers, heartbeats, retry on worker loss), scaled down to the needs of a
deterministic sweep:

* **pull-based**: workers request cells; the scheduler never pushes, so it
  only ever writes in response to a message and each connection is served
  by a single thread;
* **ordered streaming**: :meth:`run_campaign` yields outcomes in submission
  order (out-of-order completions are buffered), which is what makes
  distributed rows bit-identical to :class:`SerialExecutor` rows -- every
  cell carries its own deterministic seed, so order of *completion* cannot
  leak into the results;
* **fault tolerance**: a dropped connection or a missed-heartbeat eviction
  requeues the worker's in-flight cell at the *front* of the queue (bounded
  by a per-cell retry budget); past the budget the cell is failed with a
  ``WorkerLostError`` outcome that the harness surfaces as
  :class:`~repro.experiments.harness.CellExecutionError` carrying the
  failing configuration;
* **resumability**: with a :class:`~repro.distributed.campaign.CampaignJournal`
  attached, completed cells are appended to the journal as they stream in
  and journaled cells of a restarted campaign are replayed without
  re-execution.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.distributed import protocol
from repro.distributed.campaign import CampaignJournal
from repro.experiments.grid import Cell, CellOutcome

#: ``error_type`` recorded on a cell whose retry budget was exhausted by
#: worker deaths (connection drops / heartbeat timeouts).
WORKER_LOST = "WorkerLostError"

#: Delay (seconds) suggested to an idle worker before its next request.
IDLE_DELAY = 0.05


@dataclass
class SchedulerStats:
    """Counters exposed for tests, logs and CLI summaries."""

    workers_joined: int = 0
    evictions: int = 0
    retries: int = 0
    results: int = 0
    duplicates: int = 0
    journal_hits: int = 0
    worker_lost_failures: int = 0


@dataclass
class _WorkerConn:
    """Scheduler-side state of one connected worker."""

    worker_id: str
    sock: socket.socket
    last_seen: float
    inflight: Optional[tuple] = None  # (campaign_id, position)
    fn_campaign: Optional[str] = None  # campaign the fn payload was sent for
    evicted: bool = False


@dataclass
class _Campaign:
    """One sweep being served: queue, buffered results, retry bookkeeping."""

    campaign_id: str
    cells: Sequence[Cell]
    fn_payload: str
    version: str
    pending: deque = field(default_factory=deque)   # positions awaiting a worker
    done: set = field(default_factory=set)          # positions with a result
    results: Dict[int, CellOutcome] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)


class CampaignStalled(RuntimeError):
    """No workers were connected for longer than the stall timeout."""


class Scheduler:
    """Serve sweep campaigns to socket-connected workers.

    Parameters
    ----------
    address:
        ``tcp://host:port`` to bind; port ``0`` picks an ephemeral port
        (read the bound address back from :attr:`address`).
    heartbeat_interval:
        Interval advertised to workers in the welcome message.
    heartbeat_timeout:
        A worker silent for longer than this is evicted and its in-flight
        cell requeued.  Must comfortably exceed ``heartbeat_interval``.
    max_retries:
        How many times a cell may be *re*-assigned after a worker loss
        before it is failed with a ``WorkerLostError`` outcome.
    journal:
        Optional :class:`CampaignJournal` (or path): completed cells are
        appended, journaled cells are replayed on restart.
    stall_timeout:
        When set, :meth:`run_campaign` raises :class:`CampaignStalled` if
        cells are pending but no worker has been connected for this long --
        the safety net that keeps an unattended campaign from hanging
        forever when its workers never appear (or all died).
    """

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        *,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 3,
        journal: Union[None, str, CampaignJournal] = None,
        stall_timeout: Optional[float] = None,
    ) -> None:
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._bind_host, self._bind_port = protocol.parse_address(address)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.journal = CampaignJournal.coerce(journal)
        self.stall_timeout = stall_timeout
        self.stats = SchedulerStats()

        self._lock = threading.Condition()
        self._conns: Dict[str, _WorkerConn] = {}
        self._campaign: Optional[_Campaign] = None
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._closed = False
        self._last_worker_seen = time.monotonic()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Scheduler":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._bind_host, self._bind_port))
        listener.listen(128)
        self._listener = listener
        self._bind_port = listener.getsockname()[1]
        self._last_worker_seen = time.monotonic()
        for target, name in (
            (self._accept_loop, "accept"),
            (self._monitor_loop, "monitor"),
        ):
            thread = threading.Thread(
                target=target, name=f"repro-scheduler-{name}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    @property
    def address(self) -> str:
        """The bound ``tcp://host:port`` address (valid after :meth:`start`)."""

        host = self._bind_host if self._bind_host not in ("", "0.0.0.0") else "127.0.0.1"
        return protocol.format_address(host, self._bind_port)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns.values())
            self._lock.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for conn in conns:
            _close_socket(conn.sock)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._conns)

    # -- campaign execution -------------------------------------------------

    def run_campaign(
        self,
        fn: Callable[[Cell], CellOutcome],
        cells: Sequence[Cell],
        *,
        version: Optional[str] = None,
    ) -> Iterator[CellOutcome]:
        """Execute ``fn`` over ``cells``, yielding outcomes in submission order.

        ``version`` keys the journal entries; it defaults to
        :func:`~repro.experiments.harness.run_fingerprint` of the wrapped
        run function, mirroring the result-cache versioning.
        """

        cells = list(cells)
        if not cells:
            return
        if version is None:
            version = self._fingerprint(fn)
        campaign = _Campaign(
            campaign_id=uuid.uuid4().hex[:12],
            cells=cells,
            fn_payload=protocol.encode_payload(fn),
            version=version,
        )
        # Replay journaled cells; queue only the incomplete ones.
        for position, cell in enumerate(cells):
            replayed = self.journal.lookup(cell, version) if self.journal else None
            if replayed is not None:
                campaign.results[position] = replayed
                campaign.done.add(position)
                self.stats.journal_hits += 1
            else:
                campaign.pending.append(position)

        with self._lock:
            if self._campaign is not None:
                raise RuntimeError("scheduler already has an active campaign")
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._campaign = campaign
            self._last_worker_seen = time.monotonic()
            self._lock.notify_all()
        try:
            for position in range(len(cells)):
                with self._lock:
                    while position not in campaign.results:
                        self._check_stalled(campaign)
                        if self._closed:
                            raise RuntimeError("scheduler closed mid-campaign")
                        self._lock.wait(timeout=0.25)
                    outcome = campaign.results.pop(position)
                yield outcome
        finally:
            with self._lock:
                self._campaign = None
                self._lock.notify_all()

    @staticmethod
    def _fingerprint(fn: Callable[[Cell], CellOutcome]) -> str:
        from repro.experiments.harness import run_fingerprint

        return run_fingerprint(getattr(fn, "run", fn))

    def _check_stalled(self, campaign: _Campaign) -> None:
        """Raise when cells are pending but no worker has shown up for too long.

        Called with the lock held.
        """

        if self.stall_timeout is None:
            return
        if self._conns:
            self._last_worker_seen = time.monotonic()
            return
        outstanding = len(campaign.cells) - len(campaign.done)
        if outstanding and time.monotonic() - self._last_worker_seen > self.stall_timeout:
            raise CampaignStalled(
                f"campaign {campaign.campaign_id} stalled: {outstanding} cell(s) "
                f"outstanding but no worker connected to {self.address} for "
                f"{self.stall_timeout:.0f}s"
            )

    # -- accept / monitor threads -------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,),
                name="repro-scheduler-conn", daemon=True,
            )
            thread.start()

    def _monitor_loop(self) -> None:
        """Evict workers whose heartbeat went silent for too long."""

        while not self._closed:
            now = time.monotonic()
            stale: List[_WorkerConn] = []
            with self._lock:
                for conn in self._conns.values():
                    if not conn.evicted and now - conn.last_seen > self.heartbeat_timeout:
                        conn.evicted = True
                        stale.append(conn)
            for conn in stale:
                self.stats.evictions += 1
                # Closing the socket unblocks the connection's serve thread,
                # whose cleanup path requeues the in-flight cell.
                _close_socket(conn.sock)
            time.sleep(min(self.heartbeat_interval, 0.2))

    # -- per-connection protocol handling -----------------------------------

    def _serve_connection(self, sock: socket.socket) -> None:
        conn: Optional[_WorkerConn] = None
        try:
            hello = protocol.recv_message(sock)
            if hello.get("op") != "hello":
                return
            worker_id = str(hello.get("worker") or uuid.uuid4().hex[:8])
            conn = _WorkerConn(worker_id=worker_id, sock=sock, last_seen=time.monotonic())
            with self._lock:
                if self._closed:
                    return
                # A reconnecting worker id replaces its stale connection.
                previous = self._conns.pop(worker_id, None)
                self._conns[worker_id] = conn
                self.stats.workers_joined += 1
                self._last_worker_seen = time.monotonic()
                self._lock.notify_all()
            if previous is not None:
                _close_socket(previous.sock)
            protocol.send_message(
                sock,
                {"op": "welcome", "heartbeat_interval": self.heartbeat_interval},
            )
            while True:
                message = protocol.recv_message(sock)
                op = message.get("op")
                with self._lock:
                    conn.last_seen = time.monotonic()
                if op == "request":
                    self._handle_request(conn)
                elif op == "result":
                    self._handle_result(conn, message)
                elif op == "heartbeat":
                    pass
                elif op == "bye":
                    return
                else:
                    raise protocol.ProtocolError(f"unexpected op {op!r} from worker")
        except (protocol.ProtocolError, OSError):
            pass  # connection lost: the finally-block requeues in-flight work
        finally:
            if conn is not None:
                self._forget_connection(conn)
            _close_socket(sock)

    def _handle_request(self, conn: _WorkerConn) -> None:
        with self._lock:
            campaign = self._campaign
            position: Optional[int] = None
            if campaign is not None:
                while campaign.pending:
                    candidate = campaign.pending.popleft()
                    if candidate not in campaign.done:
                        position = candidate
                        break
            if position is None:
                reply = {"op": "idle", "delay": IDLE_DELAY}
            else:
                campaign.attempts[position] = campaign.attempts.get(position, 0) + 1
                conn.inflight = (campaign.campaign_id, position)
                reply = {
                    "op": "task",
                    "campaign": campaign.campaign_id,
                    "index": position,
                    "cell": protocol.encode_payload(campaign.cells[position]),
                }
                if conn.fn_campaign != campaign.campaign_id:
                    reply["fn"] = campaign.fn_payload
                    conn.fn_campaign = campaign.campaign_id
        protocol.send_message(conn.sock, reply)

    def _handle_result(self, conn: _WorkerConn, message: Dict[str, object]) -> None:
        outcome = protocol.decode_payload(str(message.get("outcome")))
        position = int(message.get("index", -1))
        record = None
        with self._lock:
            campaign = self._campaign
            if conn.inflight == (message.get("campaign"), position):
                conn.inflight = None
            if (
                campaign is None
                or campaign.campaign_id != message.get("campaign")
                or position in campaign.done
                or not 0 <= position < len(campaign.cells)
            ):
                self.stats.duplicates += 1
                return
            campaign.done.add(position)
            campaign.results[position] = outcome
            self.stats.results += 1
            if self.journal is not None and not outcome.failed:
                record = (campaign.cells[position], outcome, campaign.version)
            self._lock.notify_all()
        if record is not None:
            self.journal.record(*record)

    def _forget_connection(self, conn: _WorkerConn) -> None:
        """Drop a dead connection and requeue (or fail) its in-flight cell."""

        with self._lock:
            if self._conns.get(conn.worker_id) is conn:
                del self._conns[conn.worker_id]
            if conn.inflight is None:
                return
            campaign_id, position = conn.inflight
            conn.inflight = None
            campaign = self._campaign
            if (
                campaign is None
                or campaign.campaign_id != campaign_id
                or position in campaign.done
            ):
                return
            attempts = campaign.attempts.get(position, 1)
            if attempts > self.max_retries:
                cell = campaign.cells[position]
                campaign.done.add(position)
                campaign.results[position] = CellOutcome(
                    cell=cell,
                    error=(
                        f"cell {cell.describe()} lost with worker "
                        f"{conn.worker_id!r} (connection dropped or heartbeat "
                        f"timed out) on attempt {attempts}; retry budget of "
                        f"{self.max_retries} exhausted"
                    ),
                    error_type=WORKER_LOST,
                )
                self.stats.worker_lost_failures += 1
            else:
                # Front of the queue: a retried cell is the oldest submission
                # still outstanding, so finishing it first keeps the ordered
                # result stream moving.
                campaign.pending.appendleft(position)
                self.stats.retries += 1
            self._lock.notify_all()


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
