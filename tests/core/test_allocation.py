"""Unit tests of schedules, allocations, reservations and validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    Allocation,
    Reservation,
    Schedule,
    ScheduleError,
    ScheduledJob,
    pack_contiguously,
)
from repro.core.job import MoldableJob, RigidJob


def rigid(name, nbproc=1, duration=1.0, **kw):
    return RigidJob(name=name, nbproc=nbproc, duration=duration, **kw)


class TestAllocation:
    def test_basic_properties(self):
        alloc = Allocation(processors=(0, 1, 2), runtime=4.0)
        assert alloc.nbproc == 3
        assert alloc.work == 12.0

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            Allocation(processors=(0, 0), runtime=1.0)
        with pytest.raises(ValueError):
            Allocation(processors=(), runtime=1.0)
        with pytest.raises(ValueError):
            Allocation(processors=(0,), runtime=0.0)


class TestScheduledJob:
    def test_completion_and_overlap(self):
        a = ScheduledJob(rigid("a", 1, 5.0), 0.0, Allocation((0,), 5.0))
        b = ScheduledJob(rigid("b", 1, 5.0), 4.0, Allocation((0,), 5.0))
        c = ScheduledJob(rigid("c", 1, 5.0), 5.0, Allocation((0,), 5.0))
        d = ScheduledJob(rigid("d", 1, 5.0), 4.0, Allocation((1,), 5.0))
        assert a.completion == 5.0
        assert a.overlaps(b)
        assert not a.overlaps(c)   # back to back is not an overlap
        assert not a.overlaps(d)   # different processor


class TestScheduleBasics:
    def test_add_and_makespan(self):
        schedule = Schedule(4)
        schedule.add(rigid("a", 2, 3.0), 0.0, [0, 1])
        schedule.add(rigid("b", 1, 5.0), 1.0, [2])
        assert len(schedule) == 2
        assert "a" in schedule
        assert schedule.makespan() == 6.0
        assert schedule.total_work() == pytest.approx(2 * 3.0 + 5.0)

    def test_duplicate_job_rejected(self):
        schedule = Schedule(2)
        schedule.add(rigid("a"), 0.0, [0])
        with pytest.raises(ValueError):
            schedule.add(rigid("a"), 1.0, [1])

    def test_processor_out_of_range_rejected(self):
        schedule = Schedule(2)
        with pytest.raises(ValueError):
            schedule.add(rigid("a"), 0.0, [2])

    def test_utilization(self):
        schedule = Schedule(2)
        schedule.add(rigid("a", 1, 4.0), 0.0, [0])
        schedule.add(rigid("b", 1, 4.0), 0.0, [1])
        assert schedule.utilization() == pytest.approx(1.0)
        schedule2 = Schedule(2)
        schedule2.add(rigid("c", 1, 4.0), 0.0, [0])
        assert schedule2.utilization() == pytest.approx(0.5)

    def test_shift_and_merge(self):
        s1 = Schedule(2)
        s1.add(rigid("a", 1, 2.0), 0.0, [0])
        s2 = Schedule(2)
        s2.add(rigid("b", 1, 2.0), 0.0, [1])
        shifted = s1.shift(5.0)
        assert shifted["a"].start == 5.0
        merged = s1.merge(s2)
        assert len(merged) == 2
        with pytest.raises(ValueError):
            s1.merge(Schedule(3))

    def test_empty_schedule(self):
        schedule = Schedule(3)
        assert schedule.makespan() == 0.0
        assert schedule.utilization() == 0.0
        assert schedule.to_gantt() == "(empty schedule)"
        schedule.validate()  # no jobs is trivially valid


class TestScheduleValidation:
    def test_detects_processor_overlap(self):
        schedule = Schedule(2)
        schedule.add(rigid("a", 1, 5.0), 0.0, [0])
        schedule.add(rigid("b", 1, 5.0), 3.0, [0])
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_back_to_back_is_valid(self):
        schedule = Schedule(1)
        schedule.add(rigid("a", 1, 5.0), 0.0, [0])
        schedule.add(rigid("b", 1, 5.0), 5.0, [0])
        schedule.validate()

    def test_detects_release_date_violation(self):
        schedule = Schedule(1)
        schedule.add(rigid("a", 1, 1.0, release_date=10.0), 0.0, [0])
        with pytest.raises(ScheduleError):
            schedule.validate()
        schedule.validate(check_release_dates=False)

    def test_detects_wrong_rigid_allocation(self):
        schedule = Schedule(4)
        schedule.add(rigid("a", 3, 1.0), 0.0, [0, 1], runtime=1.0)
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_detects_moldable_allocation_outside_profile(self):
        job = MoldableJob(name="m", runtimes=[4.0, 3.0])
        schedule = Schedule(4)
        schedule.add(job, 0.0, [0, 1, 2], runtime=3.0)
        with pytest.raises(ScheduleError):
            schedule.validate()

    def test_detects_reservation_conflict(self):
        reservation = Reservation(processors=(0,), start=2.0, end=4.0)
        schedule = Schedule(2, reservations=[reservation])
        schedule.add(rigid("a", 1, 5.0), 0.0, [0])
        with pytest.raises(ScheduleError):
            schedule.validate()
        ok = Schedule(2, reservations=[reservation])
        ok.add(rigid("a", 1, 5.0), 0.0, [1])
        ok.validate()

    def test_is_valid_helper(self):
        schedule = Schedule(1)
        schedule.add(rigid("a", 1, 5.0), 0.0, [0])
        schedule.add(rigid("b", 1, 5.0), 1.0, [0])
        assert not schedule.is_valid()


class TestReservation:
    def test_blocks(self):
        reservation = Reservation(processors=(1, 2), start=5.0, end=10.0)
        assert reservation.blocks(1, 6.0, 7.0)
        assert reservation.blocks(1, 0.0, 6.0)
        assert not reservation.blocks(1, 0.0, 5.0)
        assert not reservation.blocks(1, 10.0, 12.0)
        assert not reservation.blocks(0, 6.0, 7.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Reservation(processors=(), start=0.0, end=1.0)
        with pytest.raises(ValueError):
            Reservation(processors=(0,), start=2.0, end=1.0)


class TestExports:
    def test_gantt_contains_all_processors(self):
        schedule = Schedule(3)
        schedule.add(rigid("a", 2, 3.0), 0.0, [0, 1])
        text = schedule.to_gantt(width=40)
        assert text.count("|") >= 6  # two bars per processor row
        assert "a" in text

    def test_records_are_sorted_by_start(self):
        schedule = Schedule(2)
        schedule.add(rigid("late", 1, 1.0), 5.0, [0])
        schedule.add(rigid("early", 1, 1.0), 0.0, [1])
        records = schedule.to_records()
        assert [r["job"] for r in records] == ["early", "late"]
        assert records[0]["completion"] == 1.0


class TestPackContiguously:
    def test_simple_packing(self):
        jobs = [rigid("a", 2, 3.0), rigid("b", 2, 3.0), rigid("c", 4, 1.0)]
        placements = [(jobs[0], 0.0, 2), (jobs[1], 0.0, 2), (jobs[2], 3.0, 4)]
        schedule = pack_contiguously(4, placements)
        schedule.validate()
        assert schedule.makespan() == 4.0

    def test_infeasible_profile_rejected(self):
        jobs = [rigid("a", 3, 2.0), rigid("b", 2, 2.0)]
        placements = [(jobs[0], 0.0, 3), (jobs[1], 0.0, 2)]
        with pytest.raises(ScheduleError):
            pack_contiguously(4, placements)


@settings(max_examples=40, deadline=None)
@given(
    durations=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=12),
    machines=st.integers(min_value=1, max_value=6),
)
def test_sequential_stacking_is_always_valid(durations, machines):
    """Property: stacking jobs one after the other on processor 0 is always valid."""

    schedule = Schedule(machines)
    t = 0.0
    for i, duration in enumerate(durations):
        job = RigidJob(name=f"j{i}", nbproc=1, duration=duration)
        schedule.add(job, t, [0])
        t += duration
    schedule.validate()
    assert schedule.makespan() == pytest.approx(sum(durations))
