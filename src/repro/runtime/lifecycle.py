"""The shared job-lifecycle core of all simulators.

One state machine -- submit -> queue -> allocate -> run -> complete (with
preemption of best-effort leases handled by the resource pool) -- drives
every platform organisation of the paper.  A :class:`SchedulingRuntime`
owns the discrete-event kernel, the trace, and one :class:`ClusterNode`
per cluster (queue + :class:`~repro.simulation.resources.ProcessorPool` +
policy + schedule); the differences between the single-cluster simulator,
the centralized best-effort grid and the decentralized exchange are

* a handful of :class:`RuntimeConfig` knobs (preemption-aware free counts,
  trace tagging, work/flow accounting, strict policy checking), and
* :class:`RuntimeHook` objects (:mod:`repro.runtime.hooks`) that attach
  extra behavior at the lifecycle's extension points -- best-effort bag
  filling, load exchange, mid-run policy switching.

New platform organisations implement hooks; they do not fork the event
loop.  The hot path keeps the PR-2 fast-path characteristics: ``__slots__``
state, per-event label strings gated behind ``trace_labels``, and the
kernel's batched same-time dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.allocation import Schedule
from repro.core.job import Job
from repro.core.policies.base import SchedulerError
from repro.core.policies.online import SchedulingPolicy
from repro.platform.cluster import Cluster
from repro.simulation.engine import Simulator
from repro.simulation.resources import ProcessorPool
from repro.simulation.tracing import Trace
from repro.telemetry import TOPIC_RUNTIME, get_bus


class ClusterNode:
    """Per-cluster runtime state: queue, processor pool, policy, schedule."""

    __slots__ = (
        "name",
        "trace_name",
        "machine_count",
        "speed",
        "pool",
        "queue",
        "policy",
        "schedule",
        "work",
        "cluster",
    )

    def __init__(
        self,
        name: str,
        machine_count: int,
        *,
        policy: SchedulingPolicy,
        speed: float = 1.0,
        trace_name: Optional[str] = "",
        cluster: Optional[Cluster] = None,
    ) -> None:
        if machine_count < 1:
            raise ValueError("machine_count must be >= 1")
        self.name = name
        #: Cluster tag on trace events ("" means: use ``name``).
        self.trace_name = name if trace_name == "" else trace_name
        self.machine_count = machine_count
        self.speed = speed
        self.pool = ProcessorPool(machine_count)
        self.queue: List[Job] = []
        self.policy = policy
        self.schedule = Schedule(machine_count)
        #: Accumulated work (see RuntimeConfig.track_work); best-effort hooks
        #: also add their completed durations here for utilization accounting.
        self.work = 0.0
        #: The platform description (None for anonymous processor counts).
        self.cluster = cluster

    def __repr__(self) -> str:
        return (
            f"ClusterNode(name={self.name!r}, machines={self.machine_count}, "
            f"policy={self.policy.name!r}, queued={len(self.queue)})"
        )


class RuntimeHook:
    """Extension point: organisation-specific behavior plugs into the core.

    Hooks are bound to the runtime before the event loop starts and get
    callbacks at the lifecycle's decision points.  All methods default to
    no-ops, so a hook only implements the points it cares about.
    """

    runtime: "SchedulingRuntime"

    def bind(self, runtime: "SchedulingRuntime") -> None:
        self.runtime = runtime

    def on_run_start(self) -> None:
        """After submissions are scheduled, before the event loop runs."""

    def after_try_start(self, node: ClusterNode) -> None:
        """After a scheduling attempt on ``node`` (queue may be empty)."""

    def on_submit(self, node: ClusterNode, job: Job) -> None:
        """After ``job`` was queued on ``node`` and a start was attempted."""

    def on_job_complete(self, node: ClusterNode) -> None:
        """After a job completed on ``node`` and a start was attempted."""


@dataclass(frozen=True)
class RuntimeConfig:
    """The per-organisation knobs of the lifecycle core."""

    #: Enforce that the policy never over-commits and always gets the
    #: processors it asked for (single-cluster strictness); without it,
    #: decisions that no longer fit are skipped and stay queued.
    strict_select: bool = False
    #: Offer processors held by preemptible (best-effort) leases to the
    #: policy as free, and let local starts reclaim them.
    preempt_best_effort: bool = False
    #: ``info=`` tag on submit/start/complete trace records of local jobs.
    local_info: str = ""
    #: Include the processor tuple on completion trace records.
    complete_with_processors: bool = False
    #: Accumulate ``runtime * nbproc`` on ``node.work`` when a job starts.
    track_work: bool = False
    #: Subtract it again on completion (running-work load accounting).
    release_work_on_complete: bool = False
    #: Record per-job flow times (completion - submission).
    track_flows: bool = False
    #: Message for the end-of-run starvation check; formatted with
    #: ``name`` / ``count`` / ``policy``.
    starved_message: str = "cluster {name!r} finished with {count} jobs queued"


class SchedulingRuntime:
    """The unified job-lifecycle core under all simulators."""

    __slots__ = (
        "sim",
        "trace",
        "nodes",
        "node_list",
        "hooks",
        "trace_labels",
        "flows",
        "release_of",
        "config",
        "_strict",
        "_preempt",
        "_local_info",
        "_complete_procs",
        "_track_work",
        "_release_work",
        "_track_flows",
    )

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        *,
        hooks: Sequence[RuntimeHook] = (),
        config: Optional[RuntimeConfig] = None,
        trace_labels: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        if not nodes:
            raise ValueError("the runtime needs at least one cluster node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster node names: {names}")
        # ``kernel`` selects the simulation kernel tier for this runtime's
        # event dispatch (pure / compiled / auto; defaults to $REPRO_KERNEL).
        self.sim = Simulator(trace_labels=trace_labels, kernel=kernel)
        self.trace = Trace()
        self.node_list: List[ClusterNode] = list(nodes)
        self.nodes: Dict[str, ClusterNode] = {node.name: node for node in nodes}
        self.hooks: List[RuntimeHook] = list(hooks)
        self.trace_labels = trace_labels
        self.config = config or RuntimeConfig()
        #: Flow time of each completed job (when config.track_flows).
        self.flows: Dict[str, float] = {}
        #: First submission time of each job (when config.track_flows).
        self.release_of: Dict[str, float] = {}
        # Bind the config to slots: these are read per event on the hot path.
        self._strict = self.config.strict_select
        self._preempt = self.config.preempt_best_effort
        self._local_info = self.config.local_info
        self._complete_procs = self.config.complete_with_processors
        self._track_work = self.config.track_work
        self._release_work = self.config.release_work_on_complete
        self._track_flows = self.config.track_flows
        for hook in self.hooks:
            hook.bind(self)

    # -- lifecycle ----------------------------------------------------------
    def run(self, submissions: Mapping[str, Sequence[Job]]) -> float:
        """Schedule the submissions, run the event loop, return the horizon."""

        unknown = [name for name in submissions if name not in self.nodes]
        if unknown:
            raise ValueError(f"submissions reference unknown clusters: {unknown}")
        for node in self.node_list:
            node.policy.reset()
        # Telemetry is per-run (not per-event): two bus publishes bracket the
        # whole event loop, so the hot path stays untouched.
        job_count = sum(len(jobs) for jobs in submissions.values())
        get_bus().emit(
            TOPIC_RUNTIME,
            "run-start",
            nodes=len(self.node_list),
            machines=sum(node.machine_count for node in self.node_list),
            jobs=job_count,
            hooks=[type(hook).__name__ for hook in self.hooks],
        )
        labels = self.trace_labels
        sim = self.sim
        for cluster_name, jobs in submissions.items():
            node = self.nodes[cluster_name]
            for job in sorted(jobs, key=lambda j: (j.release_date, j.name)):
                sim.schedule_at(
                    job.release_date,
                    lambda node=node, job=job: self._submit(node, job),
                    label=f"submit {job.name}" if labels else "",
                )
        for hook in self.hooks:
            hook.on_run_start()
        sim.run()
        for node in self.node_list:
            if node.queue:
                raise SchedulerError(
                    self.config.starved_message.format(
                        name=node.name, count=len(node.queue), policy=node.policy.name
                    )
                )
        get_bus().emit(
            TOPIC_RUNTIME,
            "run-end",
            nodes=len(self.node_list),
            jobs=job_count,
            horizon=sim.now,
            trace_events=len(self.trace),
        )
        return sim.now

    def _submit(self, node: ClusterNode, job: Job) -> None:
        now = self.sim.now
        if self._track_flows:
            self.release_of[job.name] = now
        self.trace.record(now, "submit", job.name, cluster=node.trace_name,
                          info=self._local_info)
        node.queue.append(job)
        self.try_start(node)
        for hook in self.hooks:
            hook.on_submit(node, job)

    def try_start(self, node: ClusterNode) -> None:
        """Ask the node's policy for jobs to start on the free processors."""

        sim = self.sim
        now = sim.now
        queue = node.queue
        if not queue:
            for hook in self.hooks:
                hook.after_try_start(node)
            return
        pool = node.pool
        free = pool.free_count(now)
        if self._preempt:
            free += len(pool.preemptible_processors())
        elif free == 0:
            # Saturated cluster: no point consulting the policy, but the
            # extension point still fires so hooks see *every* attempt.
            for hook in self.hooks:
                hook.after_try_start(node)
            return
        decisions = node.policy.select(tuple(queue), free, now, node.machine_count)
        if self._strict:
            used = sum(nbproc for _, nbproc in decisions)
            if used > free:
                raise SchedulerError(
                    f"policy {node.policy.name!r} over-committed: asked {used} "
                    f"processors, only {free} free"
                )
        labels = self.trace_labels
        trace = self.trace
        for job, nbproc in decisions:
            processors = pool.try_acquire(
                job.name, nbproc, now=now, allow_preemption=self._preempt
            )
            if processors is None:
                assert not self._strict
                continue
            queue.remove(job)
            runtime = job.runtime(nbproc) / node.speed
            if self._track_work:
                node.work += runtime * nbproc
            node.schedule.add(job, now, processors, runtime)
            trace.record(now, "start", job.name, cluster=node.trace_name,
                         processors=processors, info=self._local_info)
            sim.schedule(
                runtime,
                lambda node=node, job=job, processors=processors, runtime=runtime,
                nbproc=nbproc: self._complete(node, job, processors, runtime, nbproc),
                label=f"complete {job.name}" if labels else "",
            )
        for hook in self.hooks:
            hook.after_try_start(node)

    def _complete(self, node: ClusterNode, job: Job, processors, runtime: float,
                  nbproc: int) -> None:
        now = self.sim.now
        node.pool.release(job.name)
        if self._release_work:
            node.work -= runtime * nbproc
        if self._track_flows:
            self.flows[job.name] = now - self.release_of[job.name]
        if self._complete_procs:
            self.trace.record(now, "complete", job.name, cluster=node.trace_name,
                              processors=processors, info=self._local_info)
        else:
            self.trace.record(now, "complete", job.name, cluster=node.trace_name,
                              info=self._local_info)
        self.try_start(node)
        for hook in self.hooks:
            hook.on_job_complete(node)
