"""Unit tests of the shelf algorithms (NFDH/FFDH and SMART)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    makespan_lower_bound,
    sum_completion_lower_bound,
    weighted_completion_lower_bound,
)
from repro.core.criteria import makespan, sum_completion_times, weighted_completion_time
from repro.core.job import RigidJob
from repro.core.policies.shelf import ShelfScheduler, SmartShelfScheduler, _Shelf
from repro.workload.models import WorkloadConfig, generate_rigid_jobs


class TestShelfInternal:
    def test_shelf_capacity(self):
        shelf = _Shelf(height=2.0)
        job = RigidJob(name="a", nbproc=3, duration=2.0, weight=2.0)
        assert shelf.fits(3, 4)
        shelf.add(job, 3)
        assert not shelf.fits(2, 4)
        assert shelf.weight == 2.0


class TestShelfScheduler:
    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            ShelfScheduler("worst-fit")

    def test_all_jobs_start_at_shelf_boundaries(self, small_rigid_jobs):
        schedule = ShelfScheduler("ffdh").schedule(small_rigid_jobs, 4)
        schedule.validate()
        starts = sorted({e.start for e in schedule})
        # Jobs of the same shelf share the same start time: fewer distinct
        # start times than jobs.
        assert len(starts) <= len(small_rigid_jobs)

    def test_ffdh_no_worse_than_nfdh(self):
        jobs = generate_rigid_jobs(60, 16, random_state=23)
        ffdh = ShelfScheduler("ffdh").schedule(jobs, 16)
        nfdh = ShelfScheduler("nfdh").schedule(jobs, 16)
        ffdh.validate()
        nfdh.validate()
        assert makespan(ffdh) <= makespan(nfdh) + 1e-9

    def test_empty(self):
        assert len(ShelfScheduler().schedule([], 4)) == 0

    def test_single_wide_job(self):
        job = RigidJob(name="wide", nbproc=4, duration=3.0)
        schedule = ShelfScheduler().schedule([job], 4)
        schedule.validate()
        assert schedule.makespan() == 3.0

    def test_ffdh_strip_packing_bound(self):
        """FFDH makespan <= 1.7 * OPT + h_max (checked against the area bound)."""

        for seed in range(5):
            jobs = generate_rigid_jobs(50, 16, random_state=seed)
            schedule = ShelfScheduler("ffdh").schedule(jobs, 16)
            lower = makespan_lower_bound(jobs, 16)
            h_max = max(j.duration for j in jobs)
            assert makespan(schedule) <= 1.7 * lower + h_max + 1e-9


class TestSmartShelfScheduler:
    def test_valid_schedule(self, small_rigid_jobs):
        schedule = SmartShelfScheduler().schedule(small_rigid_jobs, 4)
        schedule.validate()
        assert len(schedule) == len(small_rigid_jobs)

    def test_empty(self):
        assert len(SmartShelfScheduler().schedule([], 4)) == 0

    def test_unweighted_ratio_stays_below_8(self):
        """Empirical check of the SMART ratio (8) of section 4.3."""

        for seed in range(4):
            jobs = generate_rigid_jobs(
                60, 16, config=WorkloadConfig(weight_scheme="unit"), random_state=seed
            )
            schedule = SmartShelfScheduler().schedule(jobs, 16)
            schedule.validate()
            value = sum_completion_times(schedule)
            bound = sum_completion_lower_bound(jobs, 16)
            assert value <= 8.0 * bound + 1e-9

    def test_weighted_ratio_stays_below_8_53(self):
        """Empirical check of the weighted SMART ratio (8.53) of section 4.3."""

        for seed in range(4):
            jobs = generate_rigid_jobs(
                60, 16, config=WorkloadConfig(weight_scheme="random"), random_state=seed
            )
            schedule = SmartShelfScheduler().schedule(jobs, 16)
            schedule.validate()
            value = weighted_completion_time(schedule)
            bound = weighted_completion_lower_bound(jobs, 16)
            assert value <= 8.53 * bound + 1e-9

    def test_small_weighted_jobs_scheduled_early(self):
        """A tiny heavy job must not wait behind a huge light one."""

        jobs = [
            RigidJob(name="huge", nbproc=4, duration=64.0, weight=1.0),
            RigidJob(name="tiny", nbproc=1, duration=1.0, weight=100.0),
        ]
        schedule = SmartShelfScheduler().schedule(jobs, 4)
        schedule.validate()
        assert schedule["tiny"].start < schedule["huge"].start

    def test_shelf_heights_are_powers_of_two_of_pmin(self):
        jobs = generate_rigid_jobs(30, 8, random_state=77)
        schedule = SmartShelfScheduler().schedule(jobs, 8)
        p_min = min(j.duration for j in jobs)
        starts = sorted({round(e.start, 9) for e in schedule})
        # Consecutive shelf starts differ by p_min * 2^k for some k >= 0.
        for previous, current in zip(starts, starts[1:]):
            gap = current - previous
            ratio = gap / p_min
            assert ratio > 0
            power = math.log2(ratio)
            assert abs(power - round(power)) < 1e-6


@settings(max_examples=25, deadline=None)
@given(
    n_jobs=st.integers(min_value=1, max_value=30),
    machines=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_shelf_schedules_are_always_valid(n_jobs, machines, seed):
    jobs = generate_rigid_jobs(n_jobs, machines, random_state=seed)
    for scheduler in (ShelfScheduler("nfdh"), ShelfScheduler("ffdh"), SmartShelfScheduler()):
        schedule = scheduler.schedule(jobs, machines)
        schedule.validate()
        assert len(schedule) == n_jobs
