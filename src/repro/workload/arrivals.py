"""Arrival processes: turning an off-line job set into an on-line one.

The on-line policies of sections 4.2-4.4 need jobs with release dates.  The
generators below assign release dates to an existing list of jobs (returning
*new* job objects -- jobs are treated as immutable descriptions):

* :func:`offline_arrivals` -- everything available at time 0;
* :func:`poisson_arrivals` -- exponential inter-arrival times, the standard
  model for independent users submitting to a cluster;
* :func:`bursty_arrivals` -- arrivals grouped in bursts, modelling campaign
  submissions (a user submitting a whole parameter sweep at once);
* :func:`diurnal_arrivals` -- a non-homogeneous Poisson process whose rate
  follows a day/night cycle, modelling interactive users.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.job import Job

RandomState = Union[int, np.random.Generator, None]


def _rng(random_state: RandomState) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def _with_release(job: Job, release_date: float) -> Job:
    """Return a copy of ``job`` with the given release date."""

    return dataclasses.replace(job, release_date=float(max(0.0, release_date)))


def offline_arrivals(jobs: Sequence[Job]) -> List[Job]:
    """All jobs available at time 0 (the off-line setting of section 4.1)."""

    return [_with_release(job, 0.0) for job in jobs]


def poisson_arrivals(
    jobs: Sequence[Job],
    *,
    rate: Optional[float] = None,
    mean_interarrival: Optional[float] = None,
    random_state: RandomState = None,
    sorted_by_name: bool = True,
) -> List[Job]:
    """Assign Poisson-process release dates to the jobs.

    Exactly one of ``rate`` (arrivals per time unit) or ``mean_interarrival``
    must be given.  Jobs receive their release dates in list order (or name
    order when ``sorted_by_name``), which keeps the mapping deterministic for
    a fixed seed.
    """

    if (rate is None) == (mean_interarrival is None):
        raise ValueError("specify exactly one of rate / mean_interarrival")
    if rate is not None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        mean_interarrival = 1.0 / rate
    assert mean_interarrival is not None
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be > 0")
    rng = _rng(random_state)
    ordered = sorted(jobs, key=lambda j: j.name) if sorted_by_name else list(jobs)
    gaps = rng.exponential(mean_interarrival, size=len(ordered))
    releases = np.cumsum(gaps)
    return [_with_release(job, float(t)) for job, t in zip(ordered, releases)]


def bursty_arrivals(
    jobs: Sequence[Job],
    *,
    burst_size: int = 10,
    burst_gap: float = 50.0,
    random_state: RandomState = None,
) -> List[Job]:
    """Group jobs into bursts of ``burst_size`` separated by ``burst_gap``.

    Inside a burst all jobs share the same release date (with a tiny jitter to
    keep orderings unambiguous).
    """

    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if burst_gap < 0:
        raise ValueError("burst_gap must be >= 0")
    rng = _rng(random_state)
    ordered = sorted(jobs, key=lambda j: j.name)
    out: List[Job] = []
    for i, job in enumerate(ordered):
        burst_index = i // burst_size
        jitter = float(rng.uniform(0.0, 1e-6))
        out.append(_with_release(job, burst_index * burst_gap + jitter))
    return out


def diurnal_arrivals(
    jobs: Sequence[Job],
    *,
    mean_interarrival: float,
    period: float = 24.0,
    peak_to_trough: float = 4.0,
    phase: float = 0.0,
    random_state: RandomState = None,
) -> List[Job]:
    """Non-homogeneous Poisson arrivals following a day/night cycle.

    The instantaneous rate oscillates sinusoidally around the average rate
    ``1 / mean_interarrival`` with period ``period`` (hours, matching the
    community workloads); ``peak_to_trough`` sets the ratio between the
    busiest and the quietest instant.  Sampling uses the standard thinning
    construction: candidate arrivals are drawn from a homogeneous process at
    the peak rate and accepted with probability ``rate(t) / peak_rate``,
    which is exact and stays deterministic for a fixed seed.
    """

    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be > 0")
    if period <= 0:
        raise ValueError("period must be > 0")
    if peak_to_trough < 1:
        raise ValueError("peak_to_trough must be >= 1 (peak rate >= trough rate)")
    rng = _rng(random_state)
    mean_rate = 1.0 / mean_interarrival
    # rate(t) = mean_rate * (1 + a sin(...)) with (1+a)/(1-a) = peak_to_trough.
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    peak_rate = mean_rate * (1.0 + amplitude)
    ordered = sorted(jobs, key=lambda j: j.name)
    out: List[Job] = []
    t = 0.0
    for job in ordered:
        while True:
            t += float(rng.exponential(1.0 / peak_rate))
            rate = mean_rate * (
                1.0 + amplitude * math.sin(2.0 * math.pi * (t / period) + phase)
            )
            if rng.random() * peak_rate <= rate:
                break
        out.append(_with_release(job, t))
    return out


def scaled_load_arrivals(
    jobs: Sequence[Job],
    machine_count: int,
    *,
    target_utilization: float = 0.7,
    random_state: RandomState = None,
) -> List[Job]:
    """Poisson arrivals whose rate targets a given average platform utilization.

    The arrival rate is chosen so that (average work per job) x (rate) equals
    ``target_utilization x machine_count``: the standard way of generating
    on-line instances with a controlled load factor.
    """

    if not 0 < target_utilization:
        raise ValueError("target_utilization must be > 0")
    if machine_count < 1:
        raise ValueError("machine_count must be >= 1")
    from repro.core.bounds import min_work  # local import to avoid a cycle at import time

    jobs = list(jobs)
    if not jobs:
        return []
    mean_work = sum(min_work(j) for j in jobs) / len(jobs)
    rate = target_utilization * machine_count / max(mean_work, 1e-12)
    return poisson_arrivals(jobs, rate=rate, random_state=random_state)
