"""``python -m repro.telemetry``: record, replay, report, smoke."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.cli import TELEMETRY_QUERIES, main


@pytest.fixture(scope="module")
def recorded_store(tmp_path_factory):
    """One smoke scenario recorded serially; shared across read-only tests."""

    root = tmp_path_factory.mktemp("flight") / "store"
    code = main([
        "record", "fig2.bicriteria", "--smoke",
        "--store", str(root), "--campaign", "demo",
    ])
    assert code == 0
    return root


class TestRecord:
    def test_record_lands_events_and_prints_a_summary(
        self, recorded_store, capsys
    ):
        # The fixture already ran `record`; re-run to exercise the summary
        # line and prove two sessions coexist in one store.
        code = main([
            "record", "fig2.bicriteria", "--smoke",
            "--store", str(recorded_store), "--campaign", "demo",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flight recorder:" in out
        assert "0 dropped" in out

    def test_record_without_scenarios_is_usage_error(self, tmp_path, capsys):
        assert main(["record", "--store", str(tmp_path / "s")]) == 2
        assert main(["record", "no.such", "--store", str(tmp_path / "s")]) == 2


class TestReplay:
    def test_replay_prints_recorded_events_as_jsonl(self, recorded_store, capsys):
        assert main(["replay", "--store", str(recorded_store)]) == 0
        out, err = capsys.readouterr()
        events = [json.loads(line) for line in out.splitlines()]
        assert events
        assert all("topic" in event and "seq" in event for event in events)
        assert "replayed" in err

    def test_replay_filters_by_topic_kind_and_limit(self, recorded_store, capsys):
        assert main([
            "replay", "--store", str(recorded_store),
            "--topic", "sweep", "--kind", "sweep-end", "--limit", "1",
        ]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()]
        assert len(events) == 1
        assert events[0]["kind"] == "sweep-end"


class TestReport:
    def test_list_is_store_free_and_leads_with_telemetry_queries(self, capsys):
        assert main(["report", "--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        leading = [line.split()[0] for line in lines[: len(TELEMETRY_QUERIES)]]
        assert sorted(leading) == sorted(TELEMETRY_QUERIES)

    def test_span_summary_over_a_recording(self, recorded_store, capsys):
        assert main([
            "report", "span-summary", "--store", str(recorded_store),
            "--engine", "py", "--param", "campaign=demo",
        ]) == 0
        out = capsys.readouterr().out
        assert "harness.wait" in out

    def test_phase_attribution_is_nonempty_and_writable(
        self, recorded_store, tmp_path
    ):
        target = tmp_path / "phases.jsonl"
        assert main([
            "report", "phase-attribution", "--store", str(recorded_store),
            "--engine", "py", "--out", str(target),
        ]) == 0
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert rows and all(row["total_seconds"] > 0 for row in rows)

    def test_bad_query_and_missing_name_are_usage_errors(
        self, recorded_store, capsys
    ):
        assert main(["report", "no-such", "--store", str(recorded_store)]) == 2
        assert main(["report", "--store", str(recorded_store)]) == 2


class TestSmoke:
    def test_inproc_smoke_passes_end_to_end(self, tmp_path, capsys):
        code = main([
            "smoke", "--comm", "inproc", "--workers", "3",
            "--dir", str(tmp_path / "smoke"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ok: telemetry smoke" in out
        assert "phase-attribution:" in out
        assert "worker.*" in out
