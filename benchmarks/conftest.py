"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one artifact of the paper (a figure, a platform
description, or a stated performance ratio), prints the reproduced rows /
curves with the reporting helpers, and asserts the *shape* that must hold
(who wins, by roughly what factor) -- not the absolute numbers, which depend
on the authors' unknown workload distributions.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the benchmarks without an installed distribution, exactly like
# the pythonpath pytest option does for tests/.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def report(capsys):
    """Print a report block that survives pytest's output capture."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n===== {title} =====")
            print(body)

    return _print
