"""The campaign scheduler: a single-event-loop asyncio state machine.

One :class:`Scheduler` owns the cell queue of a *campaign* (one sweep routed
through the harness) and serves it to workers over the pluggable comm layer
(:mod:`repro.distributed.comm`): ``tcp://`` sockets for real fleets,
``inproc://`` channels for simulated ones.  Everything runs on **one**
asyncio event loop in a background thread -- one coroutine per connection,
one monitor task -- so a thousand workers cost a thousand small coroutines,
not a thousand OS threads.

Scheduling model:

* **pull-based with prefetch leases**: workers request work; the reply
  carries up to ``prefetch`` assignments, the extras forming the worker's
  *lease* (a local backlog it executes without further round trips).  The
  scheduler tracks every lease.
* **work stealing**: when the global queue is dry, an idle worker's request
  triggers a steal from the tail of the most-loaded worker's lease.  The
  steal is two-phase: the victim gets a ``revoke`` push and answers with a
  ``revoked`` frame naming the cells it *actually* still had queued (it may
  have started some in the meantime); only those confirmed cells are
  requeued and handed to idle workers.  Stealing therefore never duplicates
  an execution -- a cell runs twice only when speculation chooses to.
* **speculative re-execution**: when queue and leases are all dry but cells
  are still executing, a straggler cell older than ``speculation_delay`` is
  duplicated onto the idle worker.  The first result wins; every other
  live attempt gets a ``cancel`` push and its late result is counted as a
  duplicate.  Correctness rides on the duplicate-result idempotence the
  runtime always had: results are keyed by position, and each cell carries
  its own deterministic seed, so *which* attempt wins cannot change a row.
* **ordered streaming**: :meth:`run_campaign` yields outcomes in submission
  order (out-of-order completions are buffered), which is what keeps
  distributed rows bit-identical to
  :class:`~repro.experiments.executors.SerialExecutor` rows under stealing
  and speculation alike.
* **fault tolerance**: a dropped connection or a missed-heartbeat eviction
  requeues the worker's in-flight cells at the *front* of the queue, unless
  another live (speculative) attempt already covers them; past a bounded
  per-cell retry budget the cell is failed with a ``WorkerLostError``
  outcome that the harness surfaces as
  :class:`~repro.experiments.harness.CellExecutionError`.
* **resumability**: with a
  :class:`~repro.distributed.campaign.CampaignJournal` attached, completed
  cells are appended as they stream in and journaled cells of a restarted
  campaign are replayed without re-execution.

The heartbeat monitor is event-driven: it sleeps until the earliest
possible eviction deadline (or forever while no worker is connected) and is
woken by membership changes -- an idle scheduler no longer polls at 5 Hz.
"""

from __future__ import annotations

import asyncio
import threading
import time
import uuid
import warnings
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.distributed import protocol
from repro.distributed.campaign import CampaignJournal
from repro.distributed.comm import core as comm_core
from repro.distributed.comm.core import Comm, CommError
from repro.experiments.grid import Cell, CellOutcome
from repro.telemetry import (
    TOPIC_ASSIGNMENTS,
    TOPIC_QUEUE,
    TOPIC_SCHEDULER,
    TOPIC_SCHEDULER_SPANS,
    TOPIC_STATS,
    TOPIC_WORKERS,
    TelemetryBus,
    get_bus,
)
from repro.telemetry.events import SCHEMA_VERSION, worker_topic

#: ``error_type`` recorded on a cell whose retry budget was exhausted by
#: worker deaths (connection drops / heartbeat timeouts).
WORKER_LOST = "WorkerLostError"

#: Delay (seconds) suggested to an idle worker before its next request.
IDLE_DELAY = 0.05


@dataclass
class SchedulerStats:
    """Monotonic scheduling counters with one versioned export shape.

    :meth:`to_payload` is the single snapshot format consumed by the CLI
    stderr summary, the dashboard's stats endpoint and the tests; it pairs
    the raw counters with derived rates so consumers never re-implement the
    arithmetic.  :meth:`counters` is the plain name-to-count mapping, and
    :meth:`as_dict` survives as a deprecated alias of it.
    """

    workers_joined: int = 0
    evictions: int = 0
    retries: int = 0
    results: int = 0
    duplicates: int = 0
    journal_hits: int = 0
    worker_lost_failures: int = 0
    steals: int = 0
    speculations: int = 0
    cancels: int = 0

    def counters(self) -> Dict[str, int]:
        """The raw monotonic counters, in declaration order."""

        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def to_payload(self, *, elapsed_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Versioned stats snapshot: ``schema_version`` + counters + rates.

        ``elapsed_seconds`` (when the caller tracked a campaign wall clock)
        adds a ``results_per_second`` throughput rate.
        """

        counters = self.counters()
        delivered = counters["results"]
        attempts = delivered + counters["duplicates"]
        rates: Dict[str, float] = {
            "steal_fraction": counters["steals"] / delivered if delivered else 0.0,
            "speculation_fraction": (
                counters["speculations"] / delivered if delivered else 0.0
            ),
            "duplicate_fraction": counters["duplicates"] / attempts if attempts else 0.0,
            "retry_fraction": counters["retries"] / delivered if delivered else 0.0,
        }
        if elapsed_seconds is not None and elapsed_seconds > 0:
            rates["results_per_second"] = delivered / elapsed_seconds
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "scheduler-stats",
            "counters": counters,
            "rates": rates,
        }

    def as_dict(self) -> Dict[str, int]:
        """Deprecated alias of :meth:`counters`."""

        warnings.warn(
            "SchedulerStats.as_dict() is deprecated; use counters() for the "
            "raw counts or to_payload() for the versioned snapshot",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.counters()

    def add(self, other: "SchedulerStats") -> None:
        for key, value in other.counters().items():
            setattr(self, key, getattr(self, key) + value)


@dataclass
class _Assignment:
    """One live attempt of one cell on one worker."""

    position: int
    attempt: int
    conn: "_WorkerConn"
    assigned_at: float
    speculative: bool = False
    #: A revoke asking for this cell back is in flight; it stays the
    #: worker's until the worker confirms it never started it.
    revoking: bool = False


@dataclass
class _WorkerConn:
    """Scheduler-side state of one connected worker."""

    worker_id: str
    comm: Comm
    last_seen: float
    #: Live assignments keyed by position (a worker never holds two
    #: attempts of the same cell).
    assignments: Dict[int, _Assignment] = field(default_factory=dict)
    #: Positions in dispatch order; the head is (probably) executing, the
    #: tail is the stealable backlog.
    lease: Deque[int] = field(default_factory=deque)
    fn_campaign: Optional[str] = None  # campaign the fn payload was sent for
    evicted: bool = False
    #: Monotonic stamp of the last ``revoke`` push, for steal round-trip spans.
    revoke_sent_at: Optional[float] = None
    # Aggregated from forwarded ``telemetry`` frames (span payloads); feeds
    # the per-worker occupancy column in :meth:`Scheduler.telemetry_snapshot`.
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    overhead_seconds: float = 0.0
    cells_reported: int = 0
    events_forwarded: int = 0
    forward_dropped: int = 0


@dataclass
class _Campaign:
    """One sweep being served: queue, buffered results, retry bookkeeping."""

    campaign_id: str
    cells: Sequence[Cell]
    fn_payload: str
    version: str
    pending: Deque[int] = field(default_factory=deque)  # positions awaiting a worker
    done: set = field(default_factory=set)              # positions with a result
    results: Dict[int, CellOutcome] = field(default_factory=dict)
    attempts: Dict[int, int] = field(default_factory=dict)      # total assignments
    loss_retries: Dict[int, int] = field(default_factory=dict)  # worker-loss requeues
    running: Dict[int, List[_Assignment]] = field(default_factory=dict)


class CampaignStalled(RuntimeError):
    """No workers were connected for longer than the stall timeout."""


class Scheduler:
    """Serve sweep campaigns to comm-connected workers.

    Parameters
    ----------
    address:
        Any registered comm address (``tcp://host:port``, ``inproc://name``);
        tcp port ``0`` picks an ephemeral port and ``inproc://`` with an
        empty location picks a fresh token -- read the bound address back
        from :attr:`address`.
    heartbeat_interval:
        Interval advertised to workers in the welcome message.
    heartbeat_timeout:
        A worker silent for longer than this is evicted and its in-flight
        cells requeued.  Must comfortably exceed ``heartbeat_interval``.
    max_retries:
        How many times a cell may be requeued after worker losses before it
        is failed with a ``WorkerLostError`` outcome.
    journal:
        Optional :class:`CampaignJournal` (or path): completed cells are
        appended, journaled cells are replayed on restart.
    stall_timeout:
        When set, :meth:`run_campaign` raises :class:`CampaignStalled` if
        cells are pending but no worker has been connected for this long.
    prefetch:
        Assignments per ``task`` reply (1 = classic pull-of-one; larger
        values amortise round trips and create the leases stealing feeds on).
    steal:
        Let idle workers steal queued-but-unstarted cells from the most
        loaded worker's lease when the global queue is dry.
    speculate:
        Let idle workers run duplicate attempts of straggler cells (older
        than ``speculation_delay``); first result wins, losers are
        cancelled.
    speculation_delay:
        Minimum age (seconds) of a running attempt before it is considered
        a straggler worth duplicating.
    max_speculative:
        Extra concurrent attempts allowed per cell on top of the primary.
    telemetry:
        Where scheduling events (worker membership, assignments, steals,
        speculation, queue depth, stats snapshots) are published: ``None``
        (default) uses the process-wide bus from
        :func:`repro.telemetry.get_bus`, a :class:`TelemetryBus` targets
        that bus, ``False`` disables publishing entirely.  Telemetry is
        observation only and cannot change scheduling decisions or row
        contents.
    """

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        *,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 3,
        journal: Union[None, str, CampaignJournal] = None,
        stall_timeout: Optional[float] = None,
        prefetch: int = 1,
        steal: bool = True,
        speculate: bool = True,
        speculation_delay: float = 5.0,
        max_speculative: int = 1,
        telemetry: Union[None, bool, TelemetryBus] = None,
    ) -> None:
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        if speculation_delay <= 0:
            raise ValueError("speculation_delay must be > 0")
        if max_speculative < 0:
            raise ValueError("max_speculative must be >= 0")
        comm_core.validate_address(address)
        self._requested_address = address
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.journal = CampaignJournal.coerce(journal)
        self.stall_timeout = stall_timeout
        self.prefetch = prefetch
        self.steal = steal
        self.speculate = speculate
        self.speculation_delay = speculation_delay
        self.max_speculative = max_speculative
        self.stats = SchedulerStats()
        if telemetry is False:
            self._bus: Optional[TelemetryBus] = None
        elif telemetry is None or telemetry is True:
            self._bus = get_bus()
        else:
            self._bus = telemetry

        self._lock = threading.Condition()
        self._conns: Dict[str, _WorkerConn] = {}
        self._campaign: Optional[_Campaign] = None
        self._closed = False
        self._last_worker_seen = time.monotonic()

        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._listener: Optional[comm_core.Listener] = None
        self._monitor_wake: Optional[asyncio.Event] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Scheduler":
        """Spin up the event-loop thread and bind the listener."""

        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-scheduler-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=2.0)
            self._thread = None
            raise error
        if not self._started.is_set():
            raise RuntimeError("scheduler event loop failed to start in time")
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surface startup failures to start()
            if not self._started.is_set():
                self._startup_error = error
        finally:
            self._started.set()
            with self._lock:
                self._lock.notify_all()  # wake any consumer blocked mid-campaign

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._monitor_wake = asyncio.Event()
        listener = comm_core.listener(self._requested_address, self._serve_comm)
        await listener.start()
        self._listener = listener
        self._last_worker_seen = time.monotonic()
        self._started.set()
        source_name = f"scheduler@{self.address}"
        if self._bus is not None:
            self._bus.add_snapshot_source(source_name, self.telemetry_snapshot)
        monitor = asyncio.create_task(self._monitor())
        lag_probe: Optional["asyncio.Task"] = None
        if self._bus is not None:
            lag_probe = asyncio.create_task(self._lag_probe())
        try:
            await self._shutdown.wait()
        finally:
            if self._bus is not None:
                self._bus.remove_snapshot_source(source_name)
            monitor.cancel()
            if lag_probe is not None:
                lag_probe.cancel()
            await listener.stop()
            with self._lock:
                conns = list(self._conns.values())
            for conn in conns:
                await conn.comm.close()

    @property
    def address(self) -> str:
        """The bound contact address (valid after :meth:`start`)."""

        if self._listener is not None:
            return self._listener.address
        return self._requested_address

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
        if self._thread is None:
            return
        self._started.wait(timeout=5.0)
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._conns)

    def spawn_local_worker(self, **worker_kwargs: object) -> "asyncio.Future":
        """Run an :class:`~repro.distributed.worker.AsyncWorker` on this
        scheduler's own event loop, connected to :attr:`address`.

        This is how ``inproc://`` fleets are raised: each worker is one
        coroutine, so a thousand of them fit in one process.  Returns the
        ``concurrent.futures.Future`` of the worker's ``run()``.
        """

        from repro.distributed.worker import AsyncWorker

        if self._loop is None:
            raise RuntimeError("scheduler is not started")
        worker = AsyncWorker(self.address, **worker_kwargs)  # type: ignore[arg-type]
        return asyncio.run_coroutine_threadsafe(worker.run(), self._loop)

    # -- campaign execution -------------------------------------------------

    def run_campaign(
        self,
        fn: Callable[[Cell], CellOutcome],
        cells: Sequence[Cell],
        *,
        version: Optional[str] = None,
    ) -> Iterator[CellOutcome]:
        """Execute ``fn`` over ``cells``, yielding outcomes in submission order.

        ``version`` keys the journal entries; it defaults to
        :func:`~repro.experiments.harness.run_fingerprint` of the wrapped
        run function, mirroring the result-cache versioning.
        """

        cells = list(cells)
        if not cells:
            return
        if version is None:
            version = self._fingerprint(fn)
        campaign = _Campaign(
            campaign_id=uuid.uuid4().hex[:12],
            cells=cells,
            fn_payload=protocol.encode_payload(fn),
            version=version,
        )
        # Replay journaled cells; queue only the incomplete ones.
        for position, cell in enumerate(cells):
            replayed = self.journal.lookup(cell, version) if self.journal else None
            if replayed is not None:
                campaign.results[position] = replayed
                campaign.done.add(position)
                self.stats.journal_hits += 1
            else:
                campaign.pending.append(position)

        with self._lock:
            if self._campaign is not None:
                raise RuntimeError("scheduler already has an active campaign")
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._campaign = campaign
            self._last_worker_seen = time.monotonic()
            self._lock.notify_all()
        started_at = time.monotonic()
        self._emit(
            TOPIC_SCHEDULER, "campaign-start", campaign=campaign.campaign_id,
            cells=len(cells), pending=len(campaign.pending),
            journal_hits=len(campaign.done),
        )
        try:
            for position in range(len(cells)):
                with self._lock:
                    while position not in campaign.results:
                        self._check_stalled(campaign)
                        if self._closed:
                            raise RuntimeError("scheduler closed mid-campaign")
                        self._lock.wait(timeout=0.25)
                    outcome = campaign.results.pop(position)
                yield outcome
        finally:
            with self._lock:
                self._campaign = None
                done = len(campaign.done)
                self._lock.notify_all()
            elapsed = time.monotonic() - started_at
            self._emit(
                TOPIC_SCHEDULER, "campaign-end", campaign=campaign.campaign_id,
                cells=len(cells), done=done, elapsed_seconds=elapsed,
            )
            if self._bus is not None:
                # to_payload() is already a complete versioned payload
                # (schema_version + kind); publish it as-is, tagged with
                # the campaign it summarizes.
                body = self.stats.to_payload(elapsed_seconds=elapsed)
                body["campaign"] = campaign.campaign_id
                self._bus.publish(TOPIC_STATS, body)

    @staticmethod
    def _fingerprint(fn: Callable[[Cell], CellOutcome]) -> str:
        from repro.experiments.harness import run_fingerprint

        return run_fingerprint(getattr(fn, "run", fn))

    def _check_stalled(self, campaign: _Campaign) -> None:
        """Raise when cells are pending but no worker has shown up for too long.

        Called with the lock held.
        """

        if self.stall_timeout is None:
            return
        if self._conns:
            self._last_worker_seen = time.monotonic()
            return
        outstanding = len(campaign.cells) - len(campaign.done)
        if outstanding and time.monotonic() - self._last_worker_seen > self.stall_timeout:
            raise CampaignStalled(
                f"campaign {campaign.campaign_id} stalled: {outstanding} cell(s) "
                f"outstanding but no worker connected to {self.address} for "
                f"{self.stall_timeout:.0f}s"
            )

    # -- the heartbeat-eviction monitor (event-driven, no busy-poll) --------

    async def _monitor(self) -> None:
        """Evict workers whose heartbeat went silent for too long.

        Sleeps until the earliest possible eviction deadline, or forever
        while no worker is connected; membership changes set
        ``_monitor_wake``.  An idle scheduler therefore burns zero CPU
        between events instead of polling at 5 Hz.
        """

        assert self._monitor_wake is not None
        while True:
            self._monitor_wake.clear()
            with self._lock:
                conns = [c for c in self._conns.values() if not c.evicted]
            if not conns:
                await self._monitor_wake.wait()
                continue
            now = time.monotonic()
            stale = [c for c in conns if now - c.last_seen > self.heartbeat_timeout]
            if stale:
                with self._lock:
                    for conn in stale:
                        conn.evicted = True
                for conn in stale:
                    self.stats.evictions += 1
                    self._emit(
                        TOPIC_WORKERS, "worker-evicted", worker=conn.worker_id,
                        silent_seconds=now - conn.last_seen,
                    )
                    # Closing the comm unblocks the connection's serve task,
                    # whose cleanup path requeues the in-flight cells.
                    await conn.comm.close()
                continue
            deadline = min(c.last_seen for c in conns) + self.heartbeat_timeout
            try:
                await asyncio.wait_for(
                    self._monitor_wake.wait(),
                    timeout=max(deadline - time.monotonic(), 0.005),
                )
            except asyncio.TimeoutError:
                pass

    #: Cadence (and baseline) of the event-loop lag probe.
    LAG_PROBE_INTERVAL = 0.5

    async def _lag_probe(self) -> None:
        """Sample event-loop lag: how late a timed sleep fires.

        High lag means frame handling or lock-held sections are starving
        the loop -- heartbeats and steals degrade before anything visibly
        breaks, so this is the canary.  Runs only when a bus is attached.
        """

        interval = self.LAG_PROBE_INTERVAL
        while True:
            before = time.monotonic()
            await asyncio.sleep(interval)
            lag = max(time.monotonic() - before - interval, 0.0)
            self._emit(
                TOPIC_SCHEDULER_SPANS, "span", name="scheduler.loop_lag",
                seconds=lag, interval=interval,
            )

    # -- per-connection protocol handling -----------------------------------

    async def _serve_comm(self, comm: Comm) -> None:
        conn: Optional[_WorkerConn] = None
        try:
            hello = await comm.recv()
            if hello.get("op") != "hello":
                return
            worker_id = str(hello.get("worker") or uuid.uuid4().hex[:8])
            conn = _WorkerConn(worker_id=worker_id, comm=comm, last_seen=time.monotonic())
            with self._lock:
                if self._closed:
                    return
                # A reconnecting worker id replaces its stale connection.
                previous = self._conns.pop(worker_id, None)
                self._conns[worker_id] = conn
                self.stats.workers_joined += 1
                self._last_worker_seen = time.monotonic()
                workers = len(self._conns)
                self._lock.notify_all()
            self._monitor_wake_up()
            self._emit(
                TOPIC_WORKERS, "worker-joined", worker=worker_id, workers=workers,
                reconnect=previous is not None,
            )
            if previous is not None:
                await previous.comm.close()
            await comm.send(
                {
                    "op": "welcome",
                    "heartbeat_interval": self.heartbeat_interval,
                    "prefetch": self.prefetch,
                    # Advertise span capture + forwarding only when there is
                    # a bus to re-publish on; workers stay zero-cost otherwise.
                    "telemetry": self._bus is not None,
                }
            )
            while True:
                message = await comm.recv()
                op = message.get("op")
                with self._lock:
                    conn.last_seen = time.monotonic()
                if op == "request":
                    await self._handle_request(conn)
                elif op == "result":
                    await self._handle_result(conn, message)
                elif op == "revoked":
                    self._handle_revoked(conn, message)
                elif op == "telemetry":
                    self._handle_telemetry(conn, message)
                elif op == "heartbeat":
                    pass
                elif op == "bye":
                    return
                else:
                    raise protocol.ProtocolError(f"unexpected op {op!r} from worker")
        except (CommError, OSError, asyncio.IncompleteReadError):
            pass  # connection lost: the finally-block requeues in-flight work
        finally:
            if conn is not None:
                self._forget_connection(conn)
            await comm.close()
            self._monitor_wake_up()

    def _monitor_wake_up(self) -> None:
        if self._monitor_wake is not None:
            self._monitor_wake.set()

    # -- telemetry (observation only: no scheduling decision reads the bus) --

    def _emit(self, topic: str, kind: str, **fields: Any) -> None:
        bus = self._bus
        if bus is not None:
            bus.emit(topic, kind, **fields)

    def _queue_sample(self, campaign: "_Campaign") -> Dict[str, Any]:
        """A compact queue-depth payload (lock held)."""

        return {
            "campaign": campaign.campaign_id,
            "total": len(campaign.cells),
            "pending": len(campaign.pending),
            "running": len(campaign.running),
            "done": len(campaign.done),
            "workers": len(self._conns),
        }

    #: Upper bound on events accepted per forwarded ``telemetry`` frame; a
    #: mis-batching worker gets truncated, never buffered without bound.
    TELEMETRY_FRAME_CAP = 1024

    def _handle_telemetry(self, conn: _WorkerConn, message: Dict[str, object]) -> None:
        """Re-publish a worker's forwarded events under ``worker.<id>.*``.

        Fire-and-forget in both directions: bad entries are skipped, the
        frame is capped, and nothing here touches scheduling state beyond
        the per-worker occupancy aggregates.
        """

        entries = message.get("events")
        if not isinstance(entries, list):
            return
        truncated = len(entries) > self.TELEMETRY_FRAME_CAP
        if truncated:
            entries = entries[: self.TELEMETRY_FRAME_CAP]
        bus = self._bus
        busy = idle = overhead = 0.0
        cells = 0
        accepted = 0
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            body = entry.get("payload")
            if not isinstance(body, dict):
                continue
            accepted += 1
            if body.get("kind") == "span":
                name = body.get("name")
                try:
                    seconds = float(body.get("seconds") or 0.0)
                except (TypeError, ValueError):
                    seconds = 0.0
                if name == "cell.execute":
                    busy += seconds
                    cells += 1
                elif name == "worker.idle":
                    idle += seconds
                elif name in ("cell.deserialize", "cell.serialize"):
                    overhead += seconds
            if bus is not None:
                topic = str(entry.get("topic") or "events")
                bus.publish(worker_topic(conn.worker_id, topic), dict(body))
        dropped = message.get("dropped")
        with self._lock:
            conn.busy_seconds += busy
            conn.idle_seconds += idle
            conn.overhead_seconds += overhead
            conn.cells_reported += cells
            conn.events_forwarded += accepted
            if isinstance(dropped, int):
                conn.forward_dropped = dropped
        if truncated:
            self._emit(
                TOPIC_WORKERS, "telemetry-truncated", worker=conn.worker_id,
                cap=self.TELEMETRY_FRAME_CAP,
            )

    @staticmethod
    def _occupancy(conn: _WorkerConn) -> float:
        total = conn.busy_seconds + conn.idle_seconds + conn.overhead_seconds
        return conn.busy_seconds / total if total > 0 else 0.0

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """Live occupancy view served through the bus snapshot registry.

        Queue depth, per-worker occupancy (live assignments, lease backlog,
        plus busy/idle seconds aggregated from forwarded worker spans) and
        the current stats payload, all JSON-safe.
        """

        with self._lock:
            now = time.monotonic()
            workers = {
                conn.worker_id: {
                    "assignments": len(conn.assignments),
                    "lease": len(conn.lease),
                    "evicted": conn.evicted,
                    "last_seen_age": now - conn.last_seen,
                    "busy_seconds": conn.busy_seconds,
                    "idle_seconds": conn.idle_seconds,
                    "overhead_seconds": conn.overhead_seconds,
                    "occupancy": self._occupancy(conn),
                    "cells": conn.cells_reported,
                    "events_forwarded": conn.events_forwarded,
                    "events_dropped": conn.forward_dropped,
                }
                for conn in self._conns.values()
            }
            campaign = self._campaign
            queue = self._queue_sample(campaign) if campaign is not None else None
            stats = self.stats.to_payload()
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "scheduler-snapshot",
            "address": self.address,
            "workers": workers,
            "queue": queue,
            "stats": stats,
        }

    # -- assignment: queue, steal, speculate --------------------------------

    def _assign(
        self, campaign: _Campaign, conn: _WorkerConn, position: int, *, speculative: bool
    ) -> Dict[str, object]:
        """Record one attempt and build its wire entry (lock held)."""

        attempt = campaign.attempts.get(position, 0) + 1
        campaign.attempts[position] = attempt
        assignment = _Assignment(
            position=position,
            attempt=attempt,
            conn=conn,
            assigned_at=time.monotonic(),
            speculative=speculative,
        )
        conn.assignments[position] = assignment
        conn.lease.append(position)
        campaign.running.setdefault(position, []).append(assignment)
        return {
            "index": position,
            "attempt": attempt,
            "cell": protocol.encode_payload(campaign.cells[position]),
        }

    def _request_steal(
        self, campaign: _Campaign, thief: _WorkerConn
    ) -> Optional[Tuple[_WorkerConn, Dict[str, object]]]:
        """Ask the most-loaded worker to give its lease tail back (lock held).

        Phase one of a two-phase steal: the cells stay the victim's until
        its ``revoked`` confirmation arrives (see :meth:`_handle_revoked`),
        because only the victim knows which of them it has already started.
        The lease head is never asked for -- it is (probably) executing.
        Returns the ``revoke`` push for the victim, or ``None`` when nobody
        has a stealable backlog.
        """

        def stealable(conn: _WorkerConn) -> List[int]:
            return [
                position
                for position in list(conn.lease)[1:]
                if not conn.assignments[position].revoking
            ]

        # Candidate victims come from the live assignments, not the fleet:
        # with thousands of mostly-idle workers, the scan must be bounded by
        # outstanding work, not by fleet size.
        loaded = {
            id(a.conn): a.conn
            for attempts in campaign.running.values()
            for a in attempts
        }
        victim, candidates = None, []
        for candidate in loaded.values():
            if candidate is thief or candidate.evicted:
                continue
            tail = stealable(candidate)
            if len(tail) > len(candidates):
                victim, candidates = candidate, tail
        if victim is None or not candidates:
            return None
        count = min(self.prefetch, max(1, (len(candidates) + 1) // 2))
        wanted = candidates[-count:]
        for position in wanted:
            victim.assignments[position].revoking = True
        victim.revoke_sent_at = time.monotonic()
        return (
            victim,
            {"op": "revoke", "campaign": campaign.campaign_id, "indices": wanted},
        )

    def _handle_revoked(self, conn: _WorkerConn, message: Dict[str, object]) -> None:
        """Phase two of a steal: requeue the cells the victim confirmed."""

        stolen: List[int] = []
        campaign_id = ""
        round_trip: Optional[float] = None
        with self._lock:
            if conn.revoke_sent_at is not None:
                round_trip = time.monotonic() - conn.revoke_sent_at
                conn.revoke_sent_at = None
            removed = [int(i) for i in (message.get("indices") or [])]  # type: ignore[union-attr]
            kept = [int(i) for i in (message.get("kept") or [])]  # type: ignore[union-attr]
            for position in kept:
                assignment = conn.assignments.get(position)
                if assignment is not None:
                    assignment.revoking = False  # started after all; still its
            campaign = self._campaign
            if campaign is None or campaign.campaign_id != message.get("campaign"):
                for position in removed:
                    assignment = conn.assignments.get(position)
                    if assignment is not None:
                        assignment.revoking = False
                return
            requeue: List[int] = []
            for position in removed:
                assignment = conn.assignments.pop(position, None)
                if assignment is None:
                    continue
                try:
                    conn.lease.remove(position)
                except ValueError:
                    pass
                live = campaign.running.get(position)
                if live is not None:
                    live = [a for a in live if a is not assignment]
                    if live:
                        campaign.running[position] = live
                    else:
                        del campaign.running[position]
                if (
                    position not in campaign.done
                    and position not in campaign.pending
                    and position not in campaign.running
                ):
                    requeue.append(position)
                    self.stats.steals += 1
            # Front of the queue, oldest first: stolen cells are older than
            # anything still pending, and idle workers re-request within
            # IDLE_DELAY, so they move immediately.
            for position in reversed(requeue):
                campaign.pending.appendleft(position)
            stolen = requeue
            campaign_id = campaign.campaign_id
            self._lock.notify_all()
        if round_trip is not None:
            # Two-phase steal round trip: revoke pushed -> revoked received.
            self._emit(
                TOPIC_SCHEDULER_SPANS, "span", name="scheduler.steal",
                seconds=round_trip, victim=conn.worker_id, stolen=len(stolen),
            )
        if stolen:
            self._emit(
                TOPIC_ASSIGNMENTS, "steal", campaign=campaign_id,
                victim=conn.worker_id, positions=stolen,
            )

    def _speculative_candidate(
        self, campaign: _Campaign, conn: _WorkerConn
    ) -> Optional[int]:
        """The oldest straggler cell worth duplicating onto ``conn`` (lock held)."""

        if self.max_speculative < 1:
            return None
        now = time.monotonic()
        best: Optional[Tuple[float, int]] = None
        for position, attempts in campaign.running.items():
            if position in campaign.done or position in conn.assignments:
                continue
            if not attempts or len(attempts) > self.max_speculative:
                continue
            oldest = min(a.assigned_at for a in attempts)
            if now - oldest < self.speculation_delay:
                continue
            if best is None or oldest < best[0]:
                best = (oldest, position)
        return best[1] if best is not None else None

    async def _handle_request(self, conn: _WorkerConn) -> None:
        pushes: List[Tuple[_WorkerConn, Dict[str, object]]] = []
        assigned: List[Tuple[int, int, bool]] = []  # (position, attempt, speculative)
        steal_victim: Optional[str] = None
        queue_sample: Optional[Dict[str, Any]] = None
        assign_started = time.monotonic() if self._bus is not None else None
        with self._lock:
            campaign = self._campaign
            batch: List[Dict[str, object]] = []
            if campaign is not None and not conn.evicted:
                while len(batch) < self.prefetch and campaign.pending:
                    position = campaign.pending.popleft()
                    if position in campaign.done or position in conn.assignments:
                        continue
                    batch.append(self._assign(campaign, conn, position, speculative=False))
                    assigned.append((position, campaign.attempts[position], False))
                if not batch and self.steal:
                    push = self._request_steal(campaign, conn)
                    if push is not None:
                        pushes.append(push)
                        steal_victim = push[0].worker_id
                if not batch and not pushes and self.speculate:
                    position = self._speculative_candidate(campaign, conn)
                    if position is not None:
                        batch.append(
                            self._assign(campaign, conn, position, speculative=True)
                        )
                        assigned.append((position, campaign.attempts[position], True))
                        self.stats.speculations += 1
                if assigned:
                    queue_sample = self._queue_sample(campaign)
            if batch:
                reply = {
                    "op": "task",
                    "campaign": campaign.campaign_id,
                    **batch[0],
                }
                if len(batch) > 1:
                    reply["extra"] = batch[1:]
                if conn.fn_campaign != campaign.campaign_id:
                    reply["fn"] = campaign.fn_payload
                    conn.fn_campaign = campaign.campaign_id
            else:
                reply = {"op": "idle", "delay": IDLE_DELAY}
        if assign_started is not None and assigned:
            # Lock-held selection latency: how long building this worker's
            # batch took (queue pops + steal/speculate scans + wire entries).
            self._emit(
                TOPIC_SCHEDULER_SPANS, "span", name="scheduler.assign",
                seconds=time.monotonic() - assign_started,
                worker=conn.worker_id, cells=len(assigned),
            )
        for position, attempt, speculative in assigned:
            self._emit(
                TOPIC_ASSIGNMENTS,
                "speculate" if speculative else "assign",
                campaign=campaign.campaign_id, position=position,
                attempt=attempt, worker=conn.worker_id, speculative=speculative,
            )
        if steal_victim is not None:
            self._emit(
                TOPIC_ASSIGNMENTS, "steal-requested", campaign=campaign.campaign_id,
                thief=conn.worker_id, victim=steal_victim,
            )
        if queue_sample is not None:
            self._emit(TOPIC_QUEUE, "queue-sample", **queue_sample)
        for victim, message in pushes:
            try:
                await victim.comm.send(message)
            except (CommError, OSError):
                pass  # the victim is dying; its cleanup path covers the cells
        await conn.comm.send(reply)

    # -- results ------------------------------------------------------------

    async def _handle_result(self, conn: _WorkerConn, message: Dict[str, object]) -> None:
        outcome = protocol.decode_payload(str(message.get("outcome")))
        position = int(message.get("index", -1))  # type: ignore[arg-type]
        record = None
        cancels: List[Tuple[_WorkerConn, Dict[str, object]]] = []
        queue_sample: Optional[Dict[str, Any]] = None
        with self._lock:
            campaign = self._campaign
            # This connection's bookkeeping for the cell is settled either way.
            assignment = conn.assignments.pop(position, None)
            if assignment is not None:
                try:
                    conn.lease.remove(position)
                except ValueError:
                    pass
            if (
                campaign is None
                or campaign.campaign_id != message.get("campaign")
                or position in campaign.done
                or not 0 <= position < len(campaign.cells)
            ):
                self.stats.duplicates += 1
                self._emit(
                    TOPIC_ASSIGNMENTS, "duplicate-result",
                    campaign=str(message.get("campaign") or ""),
                    position=position, worker=conn.worker_id,
                )
                return
            campaign.done.add(position)
            campaign.results[position] = outcome
            self.stats.results += 1
            # First result wins: cancel every other live attempt of the cell.
            for loser in campaign.running.pop(position, []):
                if loser is assignment:
                    continue
                loser.conn.assignments.pop(position, None)
                try:
                    loser.conn.lease.remove(position)
                except ValueError:
                    pass
                self.stats.cancels += 1
                cancels.append(
                    (
                        loser.conn,
                        {
                            "op": "cancel",
                            "campaign": campaign.campaign_id,
                            "index": position,
                            "attempt": loser.attempt,
                        },
                    )
                )
            if self.journal is not None and not outcome.failed:
                record = (campaign.cells[position], outcome, campaign.version)
            queue_sample = self._queue_sample(campaign)
            self._lock.notify_all()
        self._emit(
            TOPIC_ASSIGNMENTS, "result", campaign=campaign.campaign_id,
            position=position, worker=conn.worker_id,
            failed=bool(outcome.failed), cancelled_attempts=len(cancels),
        )
        if queue_sample is not None:
            self._emit(TOPIC_QUEUE, "queue-sample", **queue_sample)
        for loser_conn, cancel in cancels:
            try:
                await loser_conn.comm.send(cancel)
            except (CommError, OSError):
                pass
        if record is not None:
            self.journal.record(*record)

    # -- connection loss ----------------------------------------------------

    def _forget_connection(self, conn: _WorkerConn) -> None:
        """Drop a dead connection and requeue (or fail) its in-flight cells."""

        with self._lock:
            if self._conns.get(conn.worker_id) is conn:
                del self._conns[conn.worker_id]
            workers = len(self._conns)
            lost_before = self.stats.worker_lost_failures
            positions = list(conn.lease)
            for position in conn.assignments:
                if position not in positions:
                    positions.append(position)
            conn.lease.clear()
            conn.assignments.clear()
            campaign = self._campaign
            if campaign is None or not positions:
                self._lock.notify_all()
                self._emit(
                    TOPIC_WORKERS, "worker-left", worker=conn.worker_id,
                    workers=workers, requeued=0, failed=0,
                )
                return
            requeue: List[int] = []
            for position in positions:
                if position in campaign.done:
                    continue
                live = campaign.running.get(position)
                if live is not None:
                    live = [a for a in live if a.conn is not conn]
                    if live:
                        # A speculative (or stolen) attempt is still running
                        # elsewhere; the cell stays covered without a retry.
                        campaign.running[position] = live
                        continue
                    del campaign.running[position]
                losses = campaign.loss_retries.get(position, 0) + 1
                campaign.loss_retries[position] = losses
                if losses > self.max_retries:
                    cell = campaign.cells[position]
                    campaign.done.add(position)
                    campaign.results[position] = CellOutcome(
                        cell=cell,
                        error=(
                            f"cell {cell.describe()} lost with worker "
                            f"{conn.worker_id!r} (connection dropped or heartbeat "
                            f"timed out) on attempt "
                            f"{campaign.attempts.get(position, losses)}; retry "
                            f"budget of {self.max_retries} exhausted"
                        ),
                        error_type=WORKER_LOST,
                    )
                    self.stats.worker_lost_failures += 1
                else:
                    requeue.append(position)
                    self.stats.retries += 1
            # Front of the queue, oldest first: a retried cell is the oldest
            # submission still outstanding, so finishing it first keeps the
            # ordered result stream moving.
            for position in reversed(requeue):
                campaign.pending.appendleft(position)
            failed = self.stats.worker_lost_failures - lost_before
            self._lock.notify_all()
            self._emit(
                TOPIC_WORKERS, "worker-left", worker=conn.worker_id,
                workers=workers, requeued=len(requeue), failed=failed,
            )
