"""Single-round divisible-load distribution on a heterogeneous star.

Workers have individual link speeds and latencies ("the complexity becomes
quickly NP-hard with more general network topologies", section 2.1 -- the
hardness comes precisely from latencies and from choosing the participating
set / order).  This module implements:

* the closed-form / linear-system solution of the fractions for a *given*
  transmission order (all participating workers finish simultaneously);
* the classical ordering heuristic (serve workers by non-decreasing link
  time, i.e. fastest links first), which is optimal when there are no
  latencies;
* automatic removal of workers whose optimal share would be negative (with
  large latencies it is better not to use a slow-link worker at all).

The system solved for ``m`` participating workers, fractions ``alpha_i`` and
makespan ``T``::

    sum_{j <= i} (L_j + z_j * alpha_j * W) + w_i * alpha_i * W = T   (i = 1..m)
    sum_i alpha_i = 1

which is linear in ``(alpha_1, ..., alpha_m, T)`` and solved with NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dlt.platform import DLTPlatform, DLTWorker


@dataclass(frozen=True)
class StarDistribution:
    """Result of a single-round star distribution."""

    order: Tuple[str, ...]
    fractions: Tuple[float, ...]
    loads: Tuple[float, ...]
    makespan: float
    excluded: Tuple[str, ...]

    @property
    def participating(self) -> int:
        return len(self.order)


def _solve_given_order(
    total_load: float, workers: Sequence[DLTWorker]
) -> Optional[Tuple[List[float], float]]:
    """Solve the linear system for a fixed order; None if singular."""

    m = len(workers)
    if m == 0:
        return None
    # Unknowns: alpha_1..alpha_m, T
    a = np.zeros((m + 1, m + 1))
    b = np.zeros(m + 1)
    for i, worker in enumerate(workers):
        for j in range(i + 1):
            a[i, j] += workers[j].comm_time * total_load
        a[i, i] += worker.compute_time * total_load
        a[i, m] = -1.0
        b[i] = -sum(workers[j].latency for j in range(i + 1))
    a[m, :m] = 1.0
    b[m] = 1.0
    try:
        solution = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        return None
    fractions = solution[:m].tolist()
    makespan = float(solution[m])
    return fractions, makespan


def star_single_round(
    total_load: float,
    platform: DLTPlatform,
    *,
    order: Optional[Sequence[str]] = None,
) -> StarDistribution:
    """Optimal-fraction single-round distribution on a star platform.

    ``order`` fixes the transmission order explicitly (list of worker names);
    by default workers are served by non-decreasing ``comm_time`` (fastest
    links first), the classical optimal order in the latency-free case.
    Workers whose share would be negative are removed and the system is
    re-solved, so the returned distribution is always feasible.
    """

    if total_load <= 0:
        raise ValueError("total_load must be > 0")
    by_name = {w.name: w for w in platform.workers}
    if order is not None:
        unknown = [name for name in order if name not in by_name]
        if unknown:
            raise ValueError(f"unknown workers in order: {unknown}")
        ordered = [by_name[name] for name in order]
    else:
        # Fastest links first (classical optimal order without latencies);
        # latency is used as a tie-break so that high-startup workers are
        # served last and naturally excluded when they are not worth using.
        ordered = sorted(
            platform.workers,
            key=lambda w: (w.comm_time, w.latency, w.compute_time, w.name),
        )

    excluded: List[str] = []
    current = list(ordered)
    while current:
        solved = _solve_given_order(total_load, current)
        if solved is None:
            # Singular system: drop the slowest-link worker and retry.
            worst = max(current, key=lambda w: (w.comm_time, w.compute_time))
            current.remove(worst)
            excluded.append(worst.name)
            continue
        fractions, makespan = solved
        negative = [i for i, f in enumerate(fractions) if f < -1e-12]
        if not negative:
            loads = [f * total_load for f in fractions]
            return StarDistribution(
                order=tuple(w.name for w in current),
                fractions=tuple(max(0.0, f) for f in fractions),
                loads=tuple(loads),
                makespan=makespan,
                excluded=tuple(excluded),
            )
        # Remove the most negative worker (least useful) and re-solve.
        worst_index = min(negative, key=lambda i: fractions[i])
        excluded.append(current[worst_index].name)
        current.pop(worst_index)
    raise ValueError("no feasible single-round distribution (all workers excluded)")


def star_makespan_for_order(
    total_load: float, platform: DLTPlatform, order: Sequence[str]
) -> float:
    """Makespan of the optimal-fraction distribution for an explicit order."""

    return star_single_round(total_load, platform, order=order).makespan


def best_participating_subset(
    total_load: float, platform: DLTPlatform, *, max_workers: Optional[int] = None
) -> StarDistribution:
    """Greedy search of the best subset of workers (useful with large latencies).

    Workers are added one by one (fastest links first) while the resulting
    makespan keeps decreasing; with latencies, adding a slow worker can hurt,
    which this incremental search detects.
    """

    ordered = sorted(
        platform.workers,
        key=lambda w: (w.comm_time, w.latency, w.compute_time, w.name),
    )
    if max_workers is not None:
        ordered = ordered[:max_workers]
    best: Optional[StarDistribution] = None
    for k in range(1, len(ordered) + 1):
        subset = DLTPlatform(ordered[:k])
        dist = star_single_round(total_load, subset)
        if best is None or dist.makespan < best.makespan - 1e-12:
            best = dist
        else:
            break
    assert best is not None
    return best
