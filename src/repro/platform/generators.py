"""Random platform generators used by tests and benchmarks.

The experiments of the paper use a 100-machine homogeneous cluster
(Figure 2); the multi-cluster benchmarks also exercise heterogeneous and
randomly-sized platforms.  All generators take an explicit
:class:`numpy.random.Generator` or integer seed so every experiment is
reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.platform.cluster import Cluster, Interconnect
from repro.platform.grid import GridLink, LightGrid
from repro.platform.machine import Machine

RandomState = Union[int, np.random.Generator, None]


def _rng(random_state: RandomState) -> np.random.Generator:
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def homogeneous_cluster(
    name: str,
    processors: int,
    *,
    speed: float = 1.0,
    cores_per_node: int = 1,
    bandwidth: float = 1000.0,
    community: Optional[str] = None,
) -> Cluster:
    """A cluster of ``processors`` identical processors.

    ``processors`` must be divisible by ``cores_per_node``; by default one
    core per node so the cluster has exactly ``processors`` machines -- this
    is the "cluster of 100 machines" configuration of Figure 2.
    """

    if processors < 1:
        raise ValueError("processors must be >= 1")
    if processors % cores_per_node != 0:
        raise ValueError("processors must be a multiple of cores_per_node")
    nodes = processors // cores_per_node
    machines = [
        Machine(name=f"{name}-{i:04d}", speed=speed, cores=cores_per_node)
        for i in range(nodes)
    ]
    return Cluster(
        name,
        machines,
        Interconnect(name="cluster-switch", bandwidth=bandwidth),
        community=community,
    )


def heterogeneous_cluster(
    name: str,
    nodes: int,
    *,
    speed_range: Sequence[float] = (0.8, 1.2),
    cores_per_node: int = 1,
    bandwidth: float = 1000.0,
    community: Optional[str] = None,
    random_state: RandomState = None,
) -> Cluster:
    """A *weakly heterogeneous* cluster (speeds drawn uniformly in ``speed_range``).

    This matches the intra-cluster heterogeneity described in section 1.2:
    "different generations of processors running under the same Operating
    System with different clock speeds".
    """

    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    lo, hi = speed_range
    if lo <= 0 or hi < lo:
        raise ValueError("invalid speed_range")
    rng = _rng(random_state)
    speeds = rng.uniform(lo, hi, size=nodes)
    machines = [
        Machine(name=f"{name}-{i:04d}", speed=float(speeds[i]), cores=cores_per_node)
        for i in range(nodes)
    ]
    return Cluster(
        name,
        machines,
        Interconnect(name="cluster-switch", bandwidth=bandwidth),
        community=community,
    )


def random_light_grid(
    *,
    n_clusters: int = 3,
    nodes_range: Sequence[int] = (20, 120),
    speed_range: Sequence[float] = (0.5, 1.5),
    cores_per_node: int = 2,
    random_state: RandomState = None,
    name: str = "random-grid",
) -> LightGrid:
    """A random light grid: highly heterogeneous *between* clusters.

    Each cluster gets a single speed drawn from ``speed_range`` (uniform) and
    a node count drawn from ``nodes_range``; this reproduces the "highly
    heterogeneous between clusters but weakly heterogeneous inside each
    cluster" structure.
    """

    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    rng = _rng(random_state)
    lo_n, hi_n = nodes_range
    lo_s, hi_s = speed_range
    if lo_n < 1 or hi_n < lo_n:
        raise ValueError("invalid nodes_range")
    if lo_s <= 0 or hi_s < lo_s:
        raise ValueError("invalid speed_range")
    clusters: List[Cluster] = []
    for c in range(n_clusters):
        nodes = int(rng.integers(lo_n, hi_n + 1))
        speed = float(rng.uniform(lo_s, hi_s))
        machines = [
            Machine(name=f"c{c}-n{i:04d}", speed=speed, cores=cores_per_node)
            for i in range(nodes)
        ]
        clusters.append(
            Cluster(
                f"cluster-{c}",
                machines,
                Interconnect(name="cluster-switch", bandwidth=1000.0),
                community=f"community-{c}",
            )
        )
    names = [c.name for c in clusters]
    links = [
        GridLink(a, b, bandwidth=float(rng.uniform(10.0, 100.0)), latency=1e-3)
        for i, a in enumerate(names)
        for b in names[i + 1 :]
    ]
    return LightGrid(name, clusters, links)
