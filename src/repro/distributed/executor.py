"""``DistributedExecutor``: the distributed runtime behind the ``Executor`` interface.

This is the piece that lets every existing sweep, scenario and bench case
run distributed *unchanged*: :func:`repro.experiments.harness.run_experiment`
hands the executor an ordered cell list and a picklable cell function, and
gets outcomes streamed back in submission order -- exactly the contract the
serial and process-pool backends satisfy, so distributed rows are
bit-identical to :class:`~repro.experiments.executors.SerialExecutor` rows.

The executor is comm-backend agnostic (see :mod:`repro.distributed.comm`);
selection goes through :func:`repro.experiments.executors.resolve_executor`:

* ``REPRO_JOBS=tcp://host:port`` / ``executor="tcp://host:port"`` -- bind
  the scheduler at that address and wait for externally started workers
  (``python -m repro.distributed worker tcp://host:port``);
* ``executor="distributed"`` -- bind an ephemeral loopback port and
  self-spawn a local mini-cluster of one forked worker process per CPU;
* ``REPRO_JOBS=inproc://`` / ``executor="inproc://..."`` -- no sockets, no
  processes: the scheduler and a fleet of coroutine workers share one event
  loop in this process.  Same scheduler, same wire frames (round-tripped
  through the frame codec), same ordered bit-identical rows -- which is what
  makes it an honest backend for tests that want a thousand workers.

Each ``map`` call runs one campaign: start a
:class:`~repro.distributed.scheduler.Scheduler` (work stealing and
speculative re-execution are **on** by default here, with a prefetch of 2 to
give stealing a backlog to feed on), raise the local fleet -- forked
processes for ``tcp://``, event-loop coroutines for ``inproc://``, either
babysat so a dead worker costs a retry, not the sweep -- stream the ordered
outcomes, then tear everything down.  With ``journal=`` (or
``REPRO_JOURNAL=``) pointing at a JSONL file, completed cells are journaled
as they finish and a restarted campaign re-executes only the incomplete
ones.  After each campaign the scheduler's counters are published on
:attr:`last_stats` (and accumulated on :attr:`stats`) so callers and the CLI
can report steals, speculations and retries.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Callable, Iterator, List, Optional, Sequence, Union

from repro.distributed.campaign import CampaignJournal
from repro.distributed.comm import core as comm_core
from repro.distributed.scheduler import Scheduler, SchedulerStats
from repro.distributed.worker import run_worker
from repro.experiments.executors import Executor, cpu_count
from repro.experiments.grid import Cell, CellOutcome
from repro.telemetry import TelemetryBus

#: Environment variable naming the campaign journal file (JSONL).
JOURNAL_ENV_VAR = "REPRO_JOURNAL"

#: Spawned local workers that die are replaced, but never more than this
#: many times per original slot -- a crash-looping cell function must hit
#: the per-cell retry budget, not fork-bomb the host.
MAX_RESPAWNS_PER_WORKER = 8

#: How long a self-spawned worker lingers without work before exiting.
WORKER_MAX_IDLE = 30.0


class DistributedExecutor(Executor):
    """Run cells on comm-connected workers behind a campaign scheduler.

    Parameters
    ----------
    address:
        Comm address the per-campaign scheduler binds: ``tcp://host:port``
        (port 0 = ephemeral) for socket fleets, ``inproc://name`` (empty
        name = fresh token) for an in-process fleet.  The default picks an
        ephemeral loopback port (self-contained mini-cluster).
    workers:
        Local workers to self-spawn per campaign -- forked processes for
        ``tcp://``, event-loop coroutines for ``inproc://``.  ``0`` spawns
        none and relies on external workers connecting to ``address``.
    journal:
        Campaign journal path or :class:`CampaignJournal`; defaults to the
        ``REPRO_JOURNAL`` environment variable (unset = no journal).
    heartbeat_interval / heartbeat_timeout / max_retries:
        Forwarded to the :class:`Scheduler` (see its docstring).
    stall_timeout:
        Abort the campaign when no worker has been connected for this long
        (``None`` waits forever -- sensible only for interactive use).
    prefetch / steal / speculate / speculation_delay / max_speculative:
        Scheduling knobs, forwarded to the :class:`Scheduler`.  Unlike the
        raw scheduler's conservative pull-of-one default, the executor
        defaults to ``prefetch=2`` with stealing and speculation enabled:
        outcomes are keyed by position and each cell carries its own seed,
        so these change the wall clock, never the rows.
    start_method:
        ``multiprocessing`` start method for self-spawned ``tcp://``
        workers.  ``None`` prefers ``fork`` where available, keeping cell
        functions defined in non-importable modules (pytest test files)
        picklable by reference.
    telemetry:
        Where each campaign scheduler publishes its events: ``None``
        (default) uses the process-wide :func:`repro.telemetry.get_bus`,
        a :class:`~repro.telemetry.TelemetryBus` targets that bus,
        ``False`` disables publishing.  Observation only -- rows are
        bit-identical either way.
    """

    name = "distributed"

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        *,
        workers: int = 0,
        journal: Union[None, str, CampaignJournal] = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 3,
        stall_timeout: Optional[float] = 120.0,
        prefetch: int = 2,
        steal: bool = True,
        speculate: bool = True,
        speculation_delay: float = 5.0,
        max_speculative: int = 1,
        start_method: Optional[str] = None,
        telemetry: Union[None, bool, TelemetryBus] = None,
    ) -> None:
        comm_core.validate_address(address)  # fail early, with the friendly message
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        self.address = address
        self.scheme = comm_core.split_address(address)[0]
        self.workers = workers
        if journal is None:
            journal = os.environ.get(JOURNAL_ENV_VAR, "").strip() or None
        self.journal = CampaignJournal.coerce(journal)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_retries = max_retries
        self.stall_timeout = stall_timeout
        self.prefetch = prefetch
        self.steal = steal
        self.speculate = speculate
        self.speculation_delay = speculation_delay
        self.max_speculative = max_speculative
        self.start_method = start_method
        self.telemetry = telemetry
        #: Counters of the most recently finished campaign, and their
        #: accumulation across every campaign this executor ran.
        self.last_stats: Optional[SchedulerStats] = None
        self.stats = SchedulerStats()
        #: The live scheduler / spawned worker processes of the campaign
        #: currently streaming through :meth:`map` (exposed for tests and
        #: fault-injection: killing ``processes[i]`` exercises the retry
        #: path of a real worker loss).
        self.scheduler: Optional[Scheduler] = None
        self.processes: List[multiprocessing.process.BaseProcess] = []
        self._local_workers: List[object] = []  # futures of inproc coroutines

    def __repr__(self) -> str:
        return f"DistributedExecutor(address={self.address!r}, workers={self.workers})"

    def map(
        self,
        fn: Callable[[Cell], CellOutcome],
        cells: Sequence[Cell],
    ) -> Iterator[CellOutcome]:
        cells = list(cells)

        def stream() -> Iterator[CellOutcome]:
            if not cells:
                return
            scheduler = Scheduler(
                self.address,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                max_retries=self.max_retries,
                journal=self.journal,
                stall_timeout=self.stall_timeout,
                prefetch=self.prefetch,
                steal=self.steal,
                speculate=self.speculate,
                speculation_delay=self.speculation_delay,
                max_speculative=self.max_speculative,
                telemetry=self.telemetry,
            )
            scheduler.start()
            self.scheduler = scheduler
            stop = threading.Event()
            babysitter: Optional[threading.Thread] = None
            try:
                if self.workers:
                    count = min(self.workers, len(cells))
                    if self.scheme == "inproc":
                        self._local_workers = [
                            scheduler.spawn_local_worker(max_idle=WORKER_MAX_IDLE)
                            for _ in range(count)
                        ]
                        babysitter = threading.Thread(
                            target=self._respawn_local_loop,
                            args=(scheduler, stop),
                            name="repro-distributed-babysitter",
                            daemon=True,
                        )
                    else:
                        context = self._context()
                        self.processes = [
                            self._spawn(context, scheduler.address) for _ in range(count)
                        ]
                        babysitter = threading.Thread(
                            target=self._respawn_loop,
                            args=(context, scheduler.address, stop),
                            name="repro-distributed-babysitter",
                            daemon=True,
                        )
                    babysitter.start()
                yield from scheduler.run_campaign(fn, cells)
            finally:
                stop.set()
                if babysitter is not None:
                    babysitter.join(timeout=2.0)
                self.last_stats = scheduler.stats
                self.stats.add(scheduler.stats)
                for future in self._local_workers:
                    future.cancel()  # type: ignore[attr-defined]
                self._local_workers = []
                scheduler.close()
                for process in self.processes:
                    process.terminate()
                for process in self.processes:
                    process.join(timeout=2.0)
                self.processes = []
                self.scheduler = None

        return stream()

    # -- local mini-cluster (tcp://: forked processes) ----------------------

    def _context(self) -> multiprocessing.context.BaseContext:
        method = self.start_method
        if method is None and "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        return multiprocessing.get_context(method)

    @staticmethod
    def _spawn(
        context: multiprocessing.context.BaseContext, address: str
    ) -> multiprocessing.process.BaseProcess:
        process = context.Process(
            target=run_worker,
            args=(address,),
            kwargs={"max_idle": WORKER_MAX_IDLE},
            daemon=True,
        )
        process.start()
        return process

    def _respawn_loop(
        self,
        context: multiprocessing.context.BaseContext,
        address: str,
        stop: threading.Event,
    ) -> None:
        """Replace dead local worker processes while the campaign runs."""

        budget = MAX_RESPAWNS_PER_WORKER * max(len(self.processes), 1)
        while not stop.wait(0.1):
            for slot, process in enumerate(self.processes):
                if stop.is_set() or budget <= 0:
                    return
                if not process.is_alive():
                    process.join(timeout=0.1)
                    self.processes[slot] = self._spawn(context, address)
                    budget -= 1

    # -- local fleet (inproc://: coroutines on the scheduler's loop) --------

    def _respawn_local_loop(self, scheduler: Scheduler, stop: threading.Event) -> None:
        """Replace dead in-process workers while the campaign runs."""

        budget = MAX_RESPAWNS_PER_WORKER * max(len(self._local_workers), 1)
        while not stop.wait(0.1):
            for slot, future in enumerate(self._local_workers):
                if stop.is_set() or budget <= 0:
                    return
                if future.done():  # type: ignore[attr-defined]
                    try:
                        self._local_workers[slot] = scheduler.spawn_local_worker(
                            max_idle=WORKER_MAX_IDLE
                        )
                    except RuntimeError:
                        return  # scheduler shut down under us
                    budget -= 1


def executor_from_address(address: str, *, workers: int = 0) -> DistributedExecutor:
    """The executor behind ``REPRO_JOBS=tcp://host:port`` (external workers)."""

    return DistributedExecutor(address, workers=workers)


def local_mini_cluster(
    workers: Optional[int] = None,
    *,
    journal: Union[None, str, CampaignJournal] = None,
    **kwargs: object,
) -> DistributedExecutor:
    """A self-contained loopback scheduler + ``workers`` forked workers."""

    return DistributedExecutor(
        "tcp://127.0.0.1:0",
        workers=workers if workers is not None else cpu_count(),
        journal=journal,
        **kwargs,  # type: ignore[arg-type]
    )


def inproc_fleet(
    workers: Optional[int] = None,
    *,
    journal: Union[None, str, CampaignJournal] = None,
    **kwargs: object,
) -> DistributedExecutor:
    """A socketless in-process scheduler + ``workers`` coroutine workers."""

    return DistributedExecutor(
        "inproc://",
        workers=workers if workers is not None else cpu_count(),
        journal=journal,
        **kwargs,  # type: ignore[arg-type]
    )
