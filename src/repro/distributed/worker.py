"""The campaign worker: connect, register, heartbeat, pull cells, stream results.

A worker is an asyncio state machine around one comm connection to the
scheduler (:mod:`repro.distributed.scheduler`):

* connect and ``hello``, read the ``welcome`` (which advertises the
  heartbeat interval);
* loop: ``request`` work; a ``task`` reply may carry several assignments
  (the *lease* -- prefetched cells executed locally without further round
  trips), an ``idle`` reply means sleep briefly and re-request;
* pushed frames arrive at any time: ``revoke`` asks for lease entries back
  for an idle worker to steal -- the worker drops the ones still queued and
  confirms with a ``revoked`` frame (cells it already started stay its own,
  which is what keeps stealing duplicate-free); ``cancel`` marks an
  assignment that lost a speculative race (its result is not worth
  sending);
* a heartbeat task keeps ``heartbeat`` frames flowing on the same comm
  while a cell executes (cells run in a thread via ``run_in_executor``, so
  the event loop -- and with it heartbeats and cancellation -- stays live
  during long cells);
* when the ``welcome`` advertises ``telemetry``, the worker times each
  cell's deserialize / execute / serialize phases plus its own idle waits
  with monotonic spans on a private local bus, and a pump task batches
  those events into additive ``telemetry`` frames on the same comm (before
  each result, and periodically while idle).  The scheduler re-publishes
  them under ``worker.<id>.*`` topics; see
  :meth:`Scheduler._handle_telemetry`.  Telemetry frames are fire-and-
  forget metadata: results and digests are identical with them on or off.

The cell function travels pickled inside the first ``task`` of each
campaign and is cached for the campaign's duration, so it must either be
importable from the worker process (module-level functions,
``functools.partial`` of them -- true for every registered scenario and
bench case) or the worker must share the submitting process: forked, as
:class:`~repro.distributed.executor.DistributedExecutor` spawns its local
``tcp://`` mini-cluster, or literally the same process, as ``inproc://``
fleets are -- both keep even test-local functions picklable by reference.

When the scheduler goes away the worker loops back to reconnecting, so one
long-lived worker serves any number of consecutive campaigns; ``max_idle``
bounds how long it lingers without useful work (connection attempts
included) before exiting -- the knob CI uses to make workers self-reap.

:class:`AsyncWorker` is the state machine itself (1000 of them fit on one
event loop -- see :meth:`Scheduler.spawn_local_worker`); :class:`Worker`
wraps it behind the old synchronous ``run()`` surface for worker processes
and the CLI.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
import uuid
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from repro.distributed import protocol
from repro.distributed.comm import core as comm_core
from repro.distributed.comm.core import Comm, CommError
from repro.experiments.grid import Cell, CellOutcome
from repro.telemetry.bus import Subscription, TelemetryBus
from repro.telemetry.spans import SpanRecorder

#: How long a worker waits between connection attempts while the scheduler
#: is down (e.g. between two campaigns bound to the same address).
RECONNECT_DELAY = 0.2

#: Upper bound on events per ``telemetry`` frame; anything beyond waits for
#: the next pump tick (the local bus buffer is itself bounded, so a chatty
#: worker drops oldest events rather than growing frames without bound).
TELEMETRY_BATCH = 256

#: Ring/buffer size of the worker-local telemetry bus.
TELEMETRY_BUFFER = 4096

#: How long a worker waits for the scheduler's reply to a work request (or
#: the welcome) before declaring the connection -- or its host -- dead.
#: Replies are immediate in a healthy system; only the worker's own cell
#: execution is slow, and requests are only sent between cells.
REPLY_TIMEOUT = 30.0


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class AsyncWorker:
    """One worker's connect-and-serve state machine (runs on any event loop)."""

    def __init__(
        self,
        address: str,
        *,
        worker_id: Optional[str] = None,
        max_idle: Optional[float] = None,
        reconnect_delay: float = RECONNECT_DELAY,
        once: bool = False,
        log: Optional[Callable[[str], None]] = None,
        reply_timeout: float = REPLY_TIMEOUT,
        inline: bool = False,
        telemetry: Optional[bool] = None,
    ) -> None:
        comm_core.validate_address(address)
        self.address = str(address).strip()
        self.worker_id = worker_id or default_worker_id()
        self.max_idle = max_idle
        self.reconnect_delay = reconnect_delay
        self.once = once
        self.log = log or (lambda message: None)
        self.reply_timeout = reply_timeout
        #: Span capture + forwarding: None follows the scheduler's welcome
        #: advertisement (on iff the scheduler has a bus), False forces off.
        self.telemetry = telemetry
        #: Execute cells inline on the event loop instead of a thread.  Only
        #: sensible for simulated fleets with cheap cells: it skips the
        #: executor hop but blocks the loop for the cell's duration.
        self.inline = inline
        self.cells_executed = 0
        self.cells_cancelled = 0
        self.cells_revoked = 0
        self.events_forwarded = 0
        self._last_useful = time.monotonic()
        # Per-connection state (reset by _serve).
        self._backlog: Deque[Dict[str, Any]] = deque()
        self._cancelled: Set[Tuple[str, int, int]] = set()
        self._fn: Tuple[Optional[str], Optional[Callable[[Cell], CellOutcome]]] = (None, None)
        self._idle_delay: Optional[float] = None
        self._wake: Optional[asyncio.Event] = None
        self._spans = SpanRecorder(None)
        self._telemetry_sub: Optional[Subscription] = None

    # -- outer loop ---------------------------------------------------------

    async def run(self) -> int:
        """Serve campaigns until idle for too long; returns cells executed."""

        while True:
            try:
                comm = await comm_core.connect(self.address)
            except (CommError, OSError):
                if self._idled_out():
                    return self.cells_executed
                await asyncio.sleep(self.reconnect_delay)
                continue
            self._mark_useful()
            try:
                await self._serve(comm)
            except (CommError, OSError, asyncio.TimeoutError):
                pass  # scheduler went away; reconnect (or idle out) below
            finally:
                await comm.close()
            if self.once or self._idled_out():
                return self.cells_executed

    def _idled_out(self) -> bool:
        return (
            self.max_idle is not None
            and time.monotonic() - self._last_useful > self.max_idle
        )

    def _mark_useful(self) -> None:
        self._last_useful = time.monotonic()

    # -- one connection -----------------------------------------------------

    async def _serve(self, comm: Comm) -> None:
        self._backlog = deque()
        self._cancelled = set()
        self._fn = (None, None)
        self._idle_delay = None
        self._wake = asyncio.Event()
        self._spans = SpanRecorder(None)
        self._telemetry_sub = None

        await comm.send({"op": "hello", "worker": self.worker_id})
        welcome = await asyncio.wait_for(comm.recv(), timeout=self.reply_timeout)
        if welcome.get("op") != "welcome":
            raise protocol.ProtocolError(f"expected welcome, got {welcome!r}")
        heartbeat_interval = float(welcome.get("heartbeat_interval", 1.0))
        telemetry_on = bool(welcome.get("telemetry")) and self.telemetry is not False
        if telemetry_on:
            # A private local bus: spans land here first, the pump batches
            # them into telemetry frames.  Bounded everywhere -- a burst
            # beyond the buffer drops oldest events, never blocks a cell.
            local_bus = TelemetryBus(history=64, subscriber_buffer=TELEMETRY_BUFFER)
            self._telemetry_sub = local_bus.subscribe()
            self._spans = SpanRecorder(local_bus, worker=self.worker_id)
        self.log(f"worker {self.worker_id} connected to {self.address}")

        reader = asyncio.create_task(self._reader(comm))
        # A dying reader (the scheduler closed the connection, e.g. between
        # two campaigns) must wake a blocked _pull immediately -- otherwise
        # the worker wedges for the full reply timeout on a dead comm, and a
        # max_idle near that timeout makes it exit instead of reconnecting.
        wake = self._wake
        reader.add_done_callback(lambda _task: wake.set())
        beat = asyncio.create_task(self._heartbeat(comm, heartbeat_interval))
        pump: Optional["asyncio.Task"] = None
        if telemetry_on:
            pump = asyncio.create_task(
                self._telemetry_pump(comm, max(heartbeat_interval, 0.1))
            )
        tasks = tuple(task for task in (reader, beat, pump) if task is not None)
        try:
            while True:
                if self._backlog:
                    await self._execute(comm, self._backlog.popleft())
                    continue
                idle_started = time.monotonic() if self._spans.enabled else None
                pulled = await self._pull(comm, reader)
                if idle_started is not None:
                    self._spans.record("worker.idle", time.monotonic() - idle_started)
                if not pulled:
                    return  # idled out; bye already sent
        finally:
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except (asyncio.CancelledError, CommError, OSError):
                    pass

    async def _pull(self, comm: Comm, reader: "asyncio.Task") -> bool:
        """Request work until the backlog is non-empty; False = disconnect."""

        assert self._wake is not None
        while not self._backlog:
            self._raise_if_dead(reader)
            self._wake.clear()
            if self._backlog:  # arrived between the check and the clear
                return True
            await comm.send({"op": "request"})
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=self.reply_timeout)
            except asyncio.TimeoutError:
                raise protocol.ConnectionClosed(
                    f"scheduler at {self.address} did not answer a work request "
                    f"within {self.reply_timeout:.0f}s"
                ) from None
            self._raise_if_dead(reader)
            if self._backlog:
                return True
            if self._idle_delay is not None:
                delay, self._idle_delay = self._idle_delay, None
                if self._idled_out():
                    await comm.send({"op": "bye", "worker": self.worker_id})
                    return False
                await asyncio.sleep(delay)
        return True

    @staticmethod
    def _raise_if_dead(reader: "asyncio.Task") -> None:
        if reader.done():
            error = reader.exception()
            if error is not None:
                raise error
            raise protocol.ConnectionClosed("scheduler connection reader exited")

    async def _reader(self, comm: Comm) -> None:
        """Dispatch every inbound frame: replies and pushes alike."""

        assert self._wake is not None
        while True:
            message = await comm.recv()
            op = message.get("op")
            if op == "task":
                campaign = str(message.get("campaign"))
                if "fn" in message:
                    self._fn = (campaign, protocol.decode_payload(str(message["fn"])))
                entries = [message] + list(message.get("extra") or [])
                for entry in entries:
                    self._backlog.append(
                        {
                            "campaign": campaign,
                            "index": int(entry.get("index", -1)),
                            "attempt": int(entry.get("attempt", 0)),
                            "cell": entry.get("cell"),
                        }
                    )
                self._wake.set()
            elif op == "idle":
                self._idle_delay = float(message.get("delay", 0.05))
                self._wake.set()
            elif op == "revoke":
                campaign = str(message.get("campaign"))
                requested = [int(index) for index in (message.get("indices") or [])]
                drop = set(requested)
                removed: Set[int] = set()
                kept_backlog: Deque[Dict[str, Any]] = deque()
                for entry in self._backlog:
                    if entry["campaign"] == campaign and entry["index"] in drop:
                        removed.add(entry["index"])
                    else:
                        kept_backlog.append(entry)
                self._backlog = kept_backlog
                self.cells_revoked += len(removed)
                # Confirm what was actually still queued; anything already
                # started (or finished) stays this worker's.
                await comm.send(
                    {
                        "op": "revoked",
                        "worker": self.worker_id,
                        "campaign": campaign,
                        "indices": sorted(removed),
                        "kept": [i for i in requested if i not in removed],
                    }
                )
            elif op == "cancel":
                self._cancelled.add(
                    (
                        str(message.get("campaign")),
                        int(message.get("index", -1)),
                        int(message.get("attempt", 0)),
                    )
                )
            else:
                raise protocol.ProtocolError(f"unexpected op {op!r} from scheduler")

    async def _heartbeat(self, comm: Comm, interval: float) -> None:
        try:
            while True:
                await asyncio.sleep(interval)
                await comm.send({"op": "heartbeat", "worker": self.worker_id})
        except (CommError, OSError):
            return  # main loop will observe the dead comm itself

    # -- telemetry forwarding ------------------------------------------------

    async def _telemetry_pump(self, comm: Comm, interval: float) -> None:
        """Periodically relay locally-buffered telemetry to the scheduler.

        :meth:`_execute` also forwards right before each result frame, so
        per-cell spans always reach the scheduler before the campaign can
        complete; this task covers idle periods and the long tail.  On
        cancellation (connection teardown) it attempts one final drain.
        """

        try:
            while True:
                await asyncio.sleep(interval)
                await self._forward_telemetry(comm)
        except asyncio.CancelledError:
            try:
                await self._forward_telemetry(comm)
            except (CommError, OSError):
                pass
            raise
        except (CommError, OSError):
            return  # main loop will observe the dead comm itself

    async def _forward_telemetry(self, comm: Comm) -> None:
        """Send one bounded ``telemetry`` frame if any events are queued."""

        subscription = self._telemetry_sub
        if subscription is None:
            return
        events = subscription.poll(TELEMETRY_BATCH)
        if not events:
            return
        self.events_forwarded += len(events)
        await comm.send(
            {
                "op": "telemetry",
                "worker": self.worker_id,
                "events": [event.as_dict() for event in events],
                "dropped": subscription.dropped,
            }
        )

    # -- cell execution -----------------------------------------------------

    async def _execute(self, comm: Comm, item: Dict[str, Any]) -> None:
        campaign = item["campaign"]
        key = (campaign, item["index"], item["attempt"])
        if key in self._cancelled:
            self._cancelled.discard(key)
            self.cells_cancelled += 1
            return
        spans = self._spans
        with spans.span("cell.deserialize", campaign=campaign, index=item["index"]):
            cell: Cell = protocol.decode_payload(str(item["cell"]))
        fn_campaign, fn = self._fn
        if fn_campaign != campaign or fn is None:
            raise protocol.ProtocolError(
                f"task for campaign {campaign} arrived without a cell function"
            )
        with spans.span("cell.execute", campaign=campaign, index=item["index"]):
            if self.inline:
                outcome = self._call(fn, cell)
            else:
                outcome = await asyncio.get_running_loop().run_in_executor(
                    None, self._call, fn, cell
                )
        self.cells_executed += 1
        self._mark_useful()
        if key in self._cancelled:
            # The speculative race was lost while the cell executed; the
            # result is settled elsewhere and not worth a frame.
            self._cancelled.discard(key)
            self.cells_cancelled += 1
            return
        with spans.span("cell.serialize", campaign=campaign, index=item["index"]):
            encoded = protocol.encode_payload(outcome)
        # Telemetry first: the frames are ordered, so this cell's spans are
        # already scheduler-side when the result lands (a campaign can tear
        # the scheduler down the instant its last result arrives).
        await self._forward_telemetry(comm)
        await comm.send(
            {
                "op": "result",
                "worker": self.worker_id,
                "campaign": campaign,
                "index": item["index"],
                "attempt": item["attempt"],
                "outcome": encoded,
            }
        )

    @staticmethod
    def _call(fn: Callable[[Cell], CellOutcome], cell: Cell) -> CellOutcome:
        try:
            return fn(cell)
        except (KeyboardInterrupt, SystemExit):
            # Deliberately propagate: the connection drops and the
            # scheduler's worker-loss path retries the cell elsewhere --
            # Ctrl-C on one worker must cost a retry, never poison the
            # campaign with a fake cell failure.
            raise
        except Exception as error:
            import traceback

            return CellOutcome(
                cell=cell,
                error=traceback.format_exc(),
                error_type=type(error).__name__,
            )


class Worker:
    """The synchronous facade: one worker process' connect-and-serve loop."""

    def __init__(
        self,
        address: str,
        *,
        worker_id: Optional[str] = None,
        max_idle: Optional[float] = None,
        reconnect_delay: float = RECONNECT_DELAY,
        once: bool = False,
        log: Optional[Callable[[str], None]] = None,
        telemetry: Optional[bool] = None,
    ) -> None:
        self._worker = AsyncWorker(
            address,
            worker_id=worker_id,
            max_idle=max_idle,
            reconnect_delay=reconnect_delay,
            once=once,
            log=log,
            telemetry=telemetry,
        )
        self.address = self._worker.address
        self.worker_id = self._worker.worker_id

    @property
    def cells_executed(self) -> int:
        return self._worker.cells_executed

    def run(self) -> int:
        """Serve campaigns until idle for too long; returns cells executed."""

        return asyncio.run(self._worker.run())


def run_worker(
    address: str,
    *,
    worker_id: Optional[str] = None,
    max_idle: Optional[float] = None,
    once: bool = False,
    log: Optional[Callable[[str], None]] = None,
    telemetry: Optional[bool] = None,
) -> int:
    """Module-level entry point (picklable as a ``multiprocessing`` target)."""

    return Worker(
        address,
        worker_id=worker_id,
        max_idle=max_idle,
        once=once,
        log=log,
        telemetry=telemetry,
    ).run()
