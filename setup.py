"""Optional compiled-kernel build for the simulation engine.

The package installs and runs fine as pure python (``pip install .`` never
*requires* a C toolchain): the ``repro._ckernel`` extension is an optional
accelerator for the event queue + run loop, selected at runtime via
``REPRO_KERNEL=compiled`` (see ``repro.simulation.kernel``).  Build it in
place with::

    make kernel            # or: python setup.py build_ext --inplace

By default a failed compile degrades to a warning so environments without a
toolchain still install the pure tier.  Set ``REPRO_CKERNEL=require`` (the
Makefile target does) to turn build failures into hard errors.
"""

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

CKERNEL = Extension(
    "repro._ckernel",
    sources=["src/repro/_kernel/ckernelmodule.c"],
)


class OptionalBuildExt(build_ext):
    """Treat extension build failures as a soft degrade to the pure tier."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # noqa: BLE001 - any toolchain failure degrades
            self._degrade(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # noqa: BLE001
            self._degrade(exc)

    def _degrade(self, exc):
        if os.environ.get("REPRO_CKERNEL", "").strip().lower() == "require":
            raise exc
        print(
            f"warning: building repro._ckernel failed ({exc}); "
            "falling back to the pure-python kernel tier",
            file=sys.stderr,
        )


setup(
    ext_modules=[CKERNEL],
    cmdclass={"build_ext": OptionalBuildExt},
)
