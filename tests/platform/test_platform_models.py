"""Unit tests of machines, clusters, grids and the CIMENT platform."""

import pytest

from repro.platform.ciment import ciment_grid, ciment_processor_counts
from repro.platform.cluster import Cluster, Interconnect
from repro.platform.generators import (
    heterogeneous_cluster,
    homogeneous_cluster,
    random_light_grid,
)
from repro.platform.grid import GridLink, LightGrid
from repro.platform.machine import Machine


class TestMachine:
    def test_effective_runtime(self):
        machine = Machine("n0", speed=2.0, cores=2)
        assert machine.effective_runtime(10.0) == 5.0
        assert machine.compute_rate == 4.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Machine("n0", speed=0.0)
        with pytest.raises(ValueError):
            Machine("n0", cores=0)
        with pytest.raises(ValueError):
            Machine("n0", memory_gb=0.0)
        with pytest.raises(ValueError):
            Machine("n0").effective_runtime(-1.0)


class TestInterconnect:
    def test_transfer_time(self):
        net = Interconnect("eth", bandwidth=100.0, latency=0.01)
        assert net.transfer_time(50.0) == pytest.approx(0.51)
        assert net.transfer_time(0.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Interconnect(bandwidth=0.0)
        with pytest.raises(ValueError):
            Interconnect(latency=-1.0)
        with pytest.raises(ValueError):
            Interconnect().transfer_time(-1.0)


class TestCluster:
    def test_counts_and_speeds(self):
        machines = [Machine(f"n{i}", speed=1.0 + i, cores=2) for i in range(3)]
        cluster = Cluster("c", machines, community="phys")
        assert cluster.node_count == 3
        assert cluster.processor_count == 6
        assert cluster.total_compute_rate == pytest.approx(2 * (1 + 2 + 3))
        assert cluster.processor_speeds() == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
        assert cluster.processor_machine(3).name == "n1"
        assert not cluster.is_homogeneous()
        assert cluster.slowest_speed() == 1.0
        assert cluster.fastest_speed() == 3.0
        assert cluster.describe()["community"] == "phys"

    def test_invalid(self):
        with pytest.raises(ValueError):
            Cluster("c", [])
        with pytest.raises(ValueError):
            Cluster("c", [Machine("x"), Machine("x")])
        cluster = Cluster("c", [Machine("x")])
        with pytest.raises(IndexError):
            cluster.processor_machine(5)


class TestLightGrid:
    def test_lookup_and_sizes(self):
        grid = LightGrid(
            "g",
            [homogeneous_cluster("a", 4), homogeneous_cluster("b", 8)],
            [GridLink("a", "b", bandwidth=50.0, latency=0.1)],
        )
        assert len(grid) == 2
        assert grid.processor_count == 12
        assert grid.cluster("a").processor_count == 4
        assert grid.largest_cluster().name == "b"
        with pytest.raises(KeyError):
            grid.cluster("ghost")

    def test_links_and_transfer_times(self):
        grid = LightGrid(
            "g",
            [homogeneous_cluster("a", 4), homogeneous_cluster("b", 8),
             homogeneous_cluster("c", 2)],
            [GridLink("a", "b", bandwidth=50.0, latency=0.1)],
        )
        assert grid.link("a", "b").bandwidth == 50.0
        assert grid.link("b", "a").bandwidth == 50.0      # symmetric completion
        # Missing links fall back to the grid defaults.
        default = grid.link("a", "c")
        assert default.bandwidth == grid.default_bandwidth
        assert grid.transfer_time("a", "a", 100.0) == 0.0
        assert grid.transfer_time("a", "b", 50.0) == pytest.approx(0.1 + 1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LightGrid("g", [])
        with pytest.raises(ValueError):
            LightGrid("g", [homogeneous_cluster("a", 2), homogeneous_cluster("a", 2)])
        with pytest.raises(ValueError):
            LightGrid("g", [homogeneous_cluster("a", 2)], [GridLink("a", "ghost")])
        with pytest.raises(ValueError):
            GridLink("a", "a")

    def test_summary_mentions_every_cluster(self):
        grid = random_light_grid(n_clusters=3, random_state=1)
        text = grid.summary()
        for name in grid.cluster_names:
            assert name in text


class TestCimentGrid:
    def test_figure3_cluster_inventory(self):
        """The grid reproduces exactly the four clusters of Figure 3."""

        grid = ciment_grid()
        counts = {c.name: c.node_count for c in grid}
        assert counts == {
            "icluster-itanium": 104,
            "xeon-cluster": 48,
            "athlon-cluster-a": 40,
            "athlon-cluster-b": 24,
        }
        # All nodes are bi-processors: 216 nodes, 432 processors.
        assert grid.node_count == 216
        assert grid.processor_count == 432

    def test_processor_counts_helper(self):
        counts = ciment_processor_counts()
        assert counts["icluster-itanium"] == 208
        assert sum(counts.values()) == 432

    def test_extra_workstations_reach_the_600_machine_scale(self):
        grid = ciment_grid(extra_workstations=400)
        assert grid.node_count == 616
        assert "workstation-pool" in grid.cluster_names

    def test_communities_are_distinct(self):
        grid = ciment_grid()
        communities = {c.community for c in grid}
        assert len(communities) == 4

    def test_interconnect_hierarchy(self):
        grid = ciment_grid()
        itanium = grid.cluster("icluster-itanium")
        athlon = grid.cluster("athlon-cluster-a")
        # Myrinet is faster than 100 Mb ethernet, as on Figure 3.
        assert itanium.interconnect.bandwidth > athlon.interconnect.bandwidth


class TestGenerators:
    def test_homogeneous_cluster(self):
        cluster = homogeneous_cluster("c", 100)
        assert cluster.processor_count == 100
        assert cluster.is_homogeneous()
        with pytest.raises(ValueError):
            homogeneous_cluster("c", 10, cores_per_node=3)

    def test_heterogeneous_cluster_speed_range(self):
        cluster = heterogeneous_cluster("h", 50, speed_range=(0.5, 2.0), random_state=3)
        assert cluster.node_count == 50
        assert 0.5 <= cluster.slowest_speed() <= cluster.fastest_speed() <= 2.0

    def test_random_light_grid_reproducible(self):
        g1 = random_light_grid(n_clusters=4, random_state=42)
        g2 = random_light_grid(n_clusters=4, random_state=42)
        assert [c.processor_count for c in g1] == [c.processor_count for c in g2]
        assert g1.processor_count > 0

    def test_invalid_generator_arguments(self):
        with pytest.raises(ValueError):
            homogeneous_cluster("c", 0)
        with pytest.raises(ValueError):
            heterogeneous_cluster("h", 0)
        with pytest.raises(ValueError):
            heterogeneous_cluster("h", 4, speed_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            random_light_grid(n_clusters=0)
