"""Parallel-Task scheduling policies (sections 4 and 5.1 of the paper).

Off-line policies (all jobs available at time 0):

* :class:`~repro.core.policies.list_scheduling.ListScheduler` -- classical
  list scheduling of rigid jobs (FCFS / LPT / SPT orders),
* :class:`~repro.core.policies.shelf.ShelfScheduler` -- NFDH/FFDH shelf
  packing of rigid jobs,
* :class:`~repro.core.policies.shelf.SmartShelfScheduler` -- the
  Schwiegelshohn et al. SMART shelves for (weighted) completion time
  (section 4.3, ratios 8 and 8.53),
* :class:`~repro.core.policies.mrt.MRTScheduler` -- the dual-approximation
  two-shelf algorithm for moldable makespan (section 4.1, ratio 3/2 + eps),
* :class:`~repro.core.policies.mrt.GreedyMoldableScheduler` -- a simple
  allocate-then-pack baseline.

On-line policies (jobs have release dates):

* :class:`~repro.core.policies.batch_online.BatchOnlineScheduler` -- the
  Shmoys/Wein/Williamson batch transform (section 4.2, ratio 2 rho),
* :class:`~repro.core.policies.bicriteria.BiCriteriaScheduler` -- the
  doubling-deadline batches of Hall et al. (section 4.4, ratio 4 rho on both
  Cmax and sum w_j C_j); this is the algorithm whose simulation produces
  Figure 2,
* :class:`~repro.core.policies.backfilling.ConservativeBackfilling` and
  :class:`~repro.core.policies.backfilling.EasyBackfilling` -- the
  production-style baselines used by the local cluster schedulers,
* :class:`~repro.core.policies.rigid_moldable_mix.MixedScheduler` -- the
  three strategies of section 5.1 for handling a mix of rigid and moldable
  jobs,
* :mod:`~repro.core.policies.reservations` -- reservation-aware scheduling
  (section 5.1).
"""

from repro.core.policies.base import (
    MoldableAllocator,
    OfflineScheduler,
    ReleaseDateScheduler,
    SchedulerError,
)
from repro.core.policies.online import (
    BackfillPolicy,
    FifoPolicy,
    SchedulingPolicy,
    SmallestFirstPolicy,
)
from repro.core.policies.adapter import PlannedPolicy
from repro.core.policies.registry import (
    make_policy,
    policy_names,
    register_policy,
    resolve_cluster_policies,
)
from repro.core.policies.list_scheduling import ListScheduler
from repro.core.policies.shelf import ShelfScheduler, SmartShelfScheduler
from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler
from repro.core.policies.batch_online import BatchOnlineScheduler
from repro.core.policies.bicriteria import BiCriteriaScheduler
from repro.core.policies.backfilling import ConservativeBackfilling, EasyBackfilling
from repro.core.policies.rigid_moldable_mix import MixedScheduler
from repro.core.policies.reservations import ReservationAwareScheduler

__all__ = [
    "OfflineScheduler",
    "ReleaseDateScheduler",
    "MoldableAllocator",
    "SchedulerError",
    "SchedulingPolicy",
    "FifoPolicy",
    "BackfillPolicy",
    "SmallestFirstPolicy",
    "PlannedPolicy",
    "make_policy",
    "policy_names",
    "register_policy",
    "resolve_cluster_policies",
    "ListScheduler",
    "ShelfScheduler",
    "SmartShelfScheduler",
    "MRTScheduler",
    "GreedyMoldableScheduler",
    "BatchOnlineScheduler",
    "BiCriteriaScheduler",
    "ConservativeBackfilling",
    "EasyBackfilling",
    "MixedScheduler",
    "ReservationAwareScheduler",
]
