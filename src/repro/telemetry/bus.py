"""In-process telemetry bus: versioned events, ring history, cheap fan-out.

One :class:`TelemetryBus` instance (usually the process-wide default from
:func:`get_bus`) connects every producer -- the asyncio scheduler, the sweep
harness, the simulation trace tap -- to any number of consumers: dashboard
HTTP handlers, tests, row sinks.  The design constraints, in order:

1. **Producers never block and never fail.**  ``publish`` takes one short
   lock, appends to a bounded ring and to bounded subscriber queues, and
   returns.  A slow or dead consumer loses old events (counted in
   ``Subscription.dropped``), it cannot stall a scheduler heartbeat.
2. **Observation must not perturb runs.**  The bus never calls back into
   producers and holds no references to live scheduler state beyond what
   snapshot providers expose; result rows are derived from cell seeds alone,
   so digests are bit-identical with zero or many subscribers.
3. **Payloads are versioned.**  Everything carries
   ``schema_version`` (:data:`repro.telemetry.events.SCHEMA_VERSION`); the
   dashboard, the CLIs and the tests all consume the same payload shapes.

The bus doubles as a :class:`~repro.telemetry.listener.SweepListener`:
the harness notifies it directly, and it turns lifecycle calls into
``sweep`` topic events plus a per-experiment progress table served by
:meth:`snapshot`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.telemetry.events import SCHEMA_VERSION, TOPIC_SWEEP, payload
from repro.telemetry.listener import SweepListener


class TelemetryEvent:
    """One published event: topic + per-topic sequence number + payload.

    ``seq`` counts within the topic; ``gseq`` is the bus-wide publication
    order, the cursor used by :meth:`TelemetryBus.events_since` so pollers
    can follow every topic (including dynamically-named ``worker.*`` ones)
    with a single monotone integer.
    """

    __slots__ = ("topic", "seq", "time", "payload", "gseq")

    def __init__(
        self,
        topic: str,
        seq: int,
        time: float,
        payload: Mapping[str, Any],
        gseq: int = 0,
    ) -> None:
        self.topic = topic
        self.seq = seq
        self.time = time
        self.payload = payload
        self.gseq = gseq

    def as_dict(self) -> Dict[str, Any]:
        return {
            "topic": self.topic,
            "seq": self.seq,
            "gseq": self.gseq,
            "time": self.time,
            "payload": dict(self.payload),
        }

    def __repr__(self) -> str:
        return f"TelemetryEvent(topic={self.topic!r}, seq={self.seq}, payload={self.payload!r})"


class Subscription:
    """A bounded pull-queue of events; oldest events drop when it overflows."""

    def __init__(self, bus: "TelemetryBus", topics: Optional[Iterable[str]], maxlen: int) -> None:
        self._bus = bus
        self.topics = frozenset(topics) if topics is not None else None
        self._queue: deque = deque(maxlen=maxlen)
        self.dropped = 0

    def _offer(self, event: TelemetryEvent) -> None:
        # Called with the bus lock held.
        if self.topics is not None and event.topic not in self.topics:
            return
        if len(self._queue) == self._queue.maxlen:
            self.dropped += 1
        self._queue.append(event)

    def poll(self, limit: Optional[int] = None) -> List[TelemetryEvent]:
        """Drain up to ``limit`` queued events (all of them by default)."""

        with self._bus._lock:
            count = len(self._queue) if limit is None else min(limit, len(self._queue))
            return [self._queue.popleft() for _ in range(count)]

    def close(self) -> None:
        self._bus.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TelemetryBus(SweepListener):
    """Thread-safe publish/subscribe hub with per-topic ring history."""

    def __init__(self, history: int = 1024, subscriber_buffer: int = 4096) -> None:
        self._lock = threading.Lock()
        self._history = history
        self._subscriber_buffer = subscriber_buffer
        self._rings: Dict[str, deque] = {}
        self._seq: Dict[str, int] = {}
        self._gseq = 0
        self._subscribers: List[Subscription] = []
        self._snapshot_sources: Dict[str, Callable[[], Mapping[str, Any]]] = {}
        self._sweeps: Dict[str, Dict[str, Any]] = {}
        self.published = 0

    # -- publishing ---------------------------------------------------------
    def publish(self, topic: str, body: Mapping[str, Any]) -> TelemetryEvent:
        """Publish ``body`` (a versioned payload dict) on ``topic``.

        Never blocks and never raises for full consumers; returns the
        stamped event.
        """

        with self._lock:
            seq = self._seq.get(topic, 0) + 1
            self._seq[topic] = seq
            self._gseq += 1
            event = TelemetryEvent(topic, seq, time.time(), body, self._gseq)
            ring = self._rings.get(topic)
            if ring is None:
                ring = self._rings[topic] = deque(maxlen=self._history)
            ring.append(event)
            self.published += 1
            for subscription in self._subscribers:
                subscription._offer(event)
        return event

    def emit(self, topic: str, kind: str, **fields: Any) -> TelemetryEvent:
        """Shorthand for ``publish(topic, payload(kind, **fields))``."""

        return self.publish(topic, payload(kind, **fields))

    # -- history + subscriptions -------------------------------------------
    def events(
        self,
        topic: str,
        *,
        since: int = 0,
        limit: Optional[int] = None,
    ) -> List[TelemetryEvent]:
        """Ring-buffered history of ``topic`` with ``seq > since``, oldest first."""

        with self._lock:
            ring = self._rings.get(topic)
            if not ring:
                return []
            out = [event for event in ring if event.seq > since]
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    def events_since(
        self,
        since_global: int = 0,
        *,
        topics: Optional[Iterable[str]] = None,
        limit: Optional[int] = None,
    ) -> List[TelemetryEvent]:
        """Ring history across topics with ``gseq > since_global``, oldest first.

        ``topics`` entries ending in ``*`` match as prefixes (``worker.*``
        follows every forwarded worker topic); ``None`` matches everything.
        ``limit`` trims the *newest* events so the returned slice stays
        contiguous from the cursor: advance ``since_global`` to the last
        returned ``gseq`` and nothing is skipped.
        """

        matcher = _topic_matcher(topics)
        with self._lock:
            out = [
                event
                for ring in self._rings.values()
                for event in ring
                if event.gseq > since_global and matcher(event.topic)
            ]
        out.sort(key=lambda event: event.gseq)
        if limit is not None and len(out) > limit:
            out = out[:limit]
        return out

    def topics(self) -> Dict[str, int]:
        """Mapping of topic name to its latest sequence number."""

        with self._lock:
            return dict(self._seq)

    def has_subscribers(self) -> bool:
        """True when at least one subscription is live (gates span capture)."""

        with self._lock:
            return bool(self._subscribers)

    def subscribe(
        self,
        topics: Optional[Iterable[str]] = None,
        *,
        buffer: Optional[int] = None,
    ) -> Subscription:
        subscription = Subscription(self, topics, buffer or self._subscriber_buffer)
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass

    # -- snapshot providers --------------------------------------------------
    def add_snapshot_source(self, name: str, provider: Callable[[], Mapping[str, Any]]) -> None:
        """Register a pull-style state provider (scheduler occupancy, ...)."""

        with self._lock:
            self._snapshot_sources[name] = provider

    def remove_snapshot_source(self, name: str) -> None:
        with self._lock:
            self._snapshot_sources.pop(name, None)

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-safe view of everything live: sweeps, sources, topics."""

        with self._lock:
            sources = dict(self._snapshot_sources)
            sweeps = {name: dict(state) for name, state in self._sweeps.items()}
            topics = dict(self._seq)
            published = self.published
        now = time.time()
        for state in sweeps.values():
            end = state["finished"] if state["finished"] is not None else now
            elapsed = max(end - state["started"], 1e-9)
            state["elapsed_seconds"] = end - state["started"]
            state["cells_per_second"] = state["done"] / elapsed
        rendered: Dict[str, Any] = {}
        for name, provider in sources.items():
            try:
                rendered[name] = dict(provider())
            except Exception as error:  # a dying source must not kill /api/status
                rendered[name] = {"error": repr(error)}
        return {
            "schema_version": SCHEMA_VERSION,
            "time": now,
            "published": published,
            "topics": topics,
            "sweeps": sweeps,
            "sources": rendered,
        }

    # -- SweepListener: the harness publishes through these ------------------
    def on_sweep_start(self, experiment: str, total_cells: int) -> None:
        with self._lock:
            self._sweeps[experiment] = {
                "experiment": experiment,
                "total": total_cells,
                "done": 0,
                "errors": 0,
                "cached": 0,
                "started": time.time(),
                "finished": None,
            }
        self.emit(TOPIC_SWEEP, "sweep-start", experiment=experiment, total_cells=total_cells)

    def on_cell_start(self, experiment: str, cell: Any) -> None:
        self.emit(
            TOPIC_SWEEP,
            "cell-start",
            experiment=experiment,
            index=getattr(cell, "index", None),
            seed=getattr(cell, "seed", None),
            cell=cell.describe(),
        )

    def on_row(self, experiment: str, cell: Any, row: Dict[str, Any], outcome: Any) -> None:
        with self._lock:
            state = self._sweeps.get(experiment)
            if state is not None:
                state["done"] += 1
                if outcome.cached:
                    state["cached"] += 1
        self.emit(
            TOPIC_SWEEP,
            "cell-row",
            experiment=experiment,
            index=getattr(cell, "index", None),
            seed=getattr(cell, "seed", None),
            cached=bool(outcome.cached),
            elapsed_seconds=outcome.elapsed_seconds,
            columns=len(row),
        )

    def on_error(self, experiment: str, cell: Any, outcome: Any) -> None:
        with self._lock:
            state = self._sweeps.get(experiment)
            if state is not None:
                state["done"] += 1
                state["errors"] += 1
        self.emit(
            TOPIC_SWEEP,
            "cell-error",
            experiment=experiment,
            index=getattr(cell, "index", None),
            seed=getattr(cell, "seed", None),
            error_type=outcome.error_type,
        )

    def on_sweep_end(self, experiment: str, result: Any) -> None:
        with self._lock:
            state = self._sweeps.get(experiment)
            if state is not None:
                state["finished"] = time.time()
        self.emit(
            TOPIC_SWEEP,
            "sweep-end",
            experiment=experiment,
            rows=len(getattr(result, "rows", ()) or ()),
            errors=len(getattr(result, "errors", ()) or ()),
            cache_hits=getattr(result, "cache_hits", 0),
            executor=getattr(result, "executor", ""),
            elapsed_seconds=getattr(result, "elapsed_seconds", 0.0),
        )

    def __repr__(self) -> str:
        with self._lock:
            topics = len(self._seq)
            subs = len(self._subscribers)
        return f"TelemetryBus(topics={topics}, subscribers={subs}, published={self.published})"


def _topic_matcher(topics: Optional[Iterable[str]]) -> Callable[[str], bool]:
    """Compile a topic filter: exact names plus ``prefix*`` glob entries."""

    if topics is None:
        return lambda topic: True
    exact = set()
    prefixes = []
    for entry in topics:
        entry = str(entry)
        if entry.endswith("*"):
            prefixes.append(entry[:-1])
        else:
            exact.add(entry)
    prefix_tuple = tuple(prefixes)

    def matches(topic: str) -> bool:
        return topic in exact or (bool(prefix_tuple) and topic.startswith(prefix_tuple))

    return matches


_default_bus = TelemetryBus()
_default_lock = threading.Lock()


def get_bus() -> TelemetryBus:
    """The process-wide default bus every producer publishes into."""

    return _default_bus


def set_bus(bus: TelemetryBus) -> TelemetryBus:
    """Swap the default bus (tests, embedding); returns the previous one."""

    global _default_bus
    if bus is None:
        raise ValueError("the default telemetry bus cannot be None; pass a TelemetryBus")
    with _default_lock:
        previous = _default_bus
        _default_bus = bus
    return previous
