"""Job models of the Parallel Tasks (PT) and Divisible Load (DLT) worlds.

Section 2 of the paper distinguishes two alternative computational models:

* **Parallel Tasks (PT)** -- a task that gathers elementary operations and
  contains enough internal parallelism to be executed by more than one
  processor.  Communications inside the task are accounted for implicitly by
  a *penalty* on the parallel execution time.  Three flavours are defined:

  - *rigid* jobs: the number of processors is fixed a priori,
  - *moldable* jobs: the number of processors is decided by the scheduler
    before the execution starts and never changes afterwards,
  - *malleable* jobs: the number of processors may change during execution.

* **Divisible Load Tasks (DLT)** -- a large bag of arbitrarily divisible,
  completely independent elementary computations (fine grain).  The
  scheduling problem is the *distribution* of the load to the processors.

This module defines light-weight, immutable-ish dataclasses for each of
these job types.  They carry no scheduling state; scheduling state lives in
:class:`repro.core.allocation.Schedule` and in the simulators.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np


class JobKind(enum.Enum):
    """Enumeration of the job families handled by the library."""

    RIGID = "rigid"
    MOLDABLE = "moldable"
    MALLEABLE = "malleable"
    DIVISIBLE = "divisible"


@dataclass
class Job:
    """Common base class of every job.

    Parameters
    ----------
    name:
        Unique identifier of the job (any hashable string).
    release_date:
        Time at which the job becomes available (``r_j``).  ``0`` for
        off-line problems.
    weight:
        Priority weight ``w_j`` used by the weighted completion time
        criterion.  Defaults to 1 (unweighted).
    due_date:
        Optional due date used by the tardiness criteria.
    owner:
        Optional identifier of the submitting user / community (used by the
        grid fairness metrics).
    """

    name: str
    release_date: float = 0.0
    weight: float = 1.0
    due_date: Optional[float] = None
    owner: Optional[str] = None

    def __post_init__(self) -> None:
        if self.release_date < 0:
            raise ValueError(f"job {self.name!r}: negative release date")
        if self.weight < 0:
            raise ValueError(f"job {self.name!r}: negative weight")
        if self.due_date is not None and self.due_date < self.release_date:
            raise ValueError(
                f"job {self.name!r}: due date {self.due_date} before release "
                f"date {self.release_date}"
            )

    # -- interface -------------------------------------------------------
    @property
    def kind(self) -> JobKind:
        raise NotImplementedError

    def runtime(self, nbproc: int) -> float:
        """Execution time ``p_j(nbproc)`` when run on ``nbproc`` processors."""

        raise NotImplementedError

    def work(self, nbproc: int) -> float:
        """Work (processor-time area) ``nbproc * p_j(nbproc)``."""

        return nbproc * self.runtime(nbproc)

    def __hash__(self) -> int:  # jobs are used as dict keys throughout
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Job):
            return NotImplemented
        return self.name == other.name


@dataclass(eq=False)
class RigidJob(Job):
    """A parallel task whose processor count is fixed a priori.

    A rigid job is a rectangle in the Gantt chart: ``nbproc`` processors for
    ``duration`` units of time.  The allocation problem for a set of rigid
    jobs corresponds to a strip-packing problem (section 2.2 of the paper).
    """

    nbproc: int = 1
    duration: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nbproc < 1:
            raise ValueError(f"job {self.name!r}: nbproc must be >= 1")
        if self.duration <= 0:
            raise ValueError(f"job {self.name!r}: duration must be > 0")

    @property
    def kind(self) -> JobKind:
        return JobKind.RIGID

    def runtime(self, nbproc: int) -> float:
        if nbproc != self.nbproc:
            raise ValueError(
                f"rigid job {self.name!r} requires exactly {self.nbproc} "
                f"processors, got {nbproc}"
            )
        return self.duration


@dataclass(eq=False)
class MoldableJob(Job):
    """A parallel task whose processor count is chosen by the scheduler.

    The execution-time profile is given either as an explicit table
    ``runtimes[k-1] = p_j(k)`` for ``k = 1 .. max_procs`` or lazily through a
    :class:`repro.core.speedup.SpeedupModel` (see
    :func:`MoldableJob.from_speedup`).

    The profile is expected to be *monotonic* in the sense of Mounié, Rapine
    and Trystram: the execution time ``p_j(k)`` is non-increasing in ``k``
    and the work ``k * p_j(k)`` is non-decreasing in ``k``.  The constructor
    verifies these assumptions by default because most approximation
    guarantees (the MRT algorithm of section 4.1 in particular) rely on
    them; pass ``enforce_monotony=False`` to accept arbitrary profiles.
    """

    runtimes: Sequence[float] = field(default_factory=lambda: [1.0])
    min_procs: int = 1
    enforce_monotony: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        self.runtimes = tuple(float(p) for p in self.runtimes)
        if not self.runtimes:
            raise ValueError(f"job {self.name!r}: empty runtime profile")
        if any(p <= 0 for p in self.runtimes):
            raise ValueError(f"job {self.name!r}: non-positive runtime in profile")
        if not 1 <= self.min_procs <= len(self.runtimes):
            raise ValueError(
                f"job {self.name!r}: min_procs {self.min_procs} outside profile "
                f"1..{len(self.runtimes)}"
            )
        if self.enforce_monotony:
            n = len(self.runtimes)
            if n >= 16:
                # Vectorised validation of long profiles (one numpy pass
                # instead of an O(max_procs) python loop per job; workload
                # generators build hundreds of jobs per sweep cell).  The
                # comparisons are elementwise, hence bit-identical to the
                # scalar loop; the loop below only re-runs on violation to
                # produce the exact same first-error message.
                arr = np.array(self.runtimes)
                karr = np.arange(1.0, n)
                prev, nxt = arr[:-1], arr[1:]
                ok = not (
                    bool((nxt > prev * (1 + 1e-9)).any())
                    or bool(((karr + 1.0) * nxt < karr * prev * (1 - 1e-9)).any())
                )
            else:
                ok = False
            if not ok:
                for k in range(1, n):
                    if self.runtimes[k] > self.runtimes[k - 1] * (1 + 1e-9):
                        raise ValueError(
                            f"job {self.name!r}: runtime increases from {k} to "
                            f"{k + 1} processors ({self.runtimes[k - 1]} -> "
                            f"{self.runtimes[k]}); profile is not monotonic"
                        )
                    work_prev = k * self.runtimes[k - 1]
                    work_next = (k + 1) * self.runtimes[k]
                    if work_next < work_prev * (1 - 1e-9):
                        raise ValueError(
                            f"job {self.name!r}: work decreases from {k} to "
                            f"{k + 1} processors; profile is not monotonic"
                        )

    @property
    def kind(self) -> JobKind:
        return JobKind.MOLDABLE

    @property
    def max_procs(self) -> int:
        """Largest processor count for which the profile is defined."""

        return len(self.runtimes)

    def runtime(self, nbproc: int) -> float:
        if not self.min_procs <= nbproc <= self.max_procs:
            raise ValueError(
                f"moldable job {self.name!r}: allocation {nbproc} outside "
                f"[{self.min_procs}, {self.max_procs}]"
            )
        return self.runtimes[nbproc - 1]

    def sequential_time(self) -> float:
        """Runtime on the smallest admissible allocation."""

        return self.runtimes[self.min_procs - 1]

    # The profile is immutable after __post_init__, so the derived scalars
    # below are computed once and memoised in the instance dict: the bounds
    # and the WSPT orderings of the bi-criteria scheduler query them for
    # every job in every batch, which made the naive O(max_procs) recompute
    # the single hottest spot of a figure-2 sweep cell.

    def best_runtime(self) -> float:
        """Smallest achievable runtime over all admissible allocations."""

        cached = self.__dict__.get("_best_runtime")
        if cached is None:
            cached = min(self.runtimes[self.min_procs - 1 :])
            self.__dict__["_best_runtime"] = cached
        return cached

    def min_work(self) -> float:
        """Smallest achievable work (processor-time area)."""

        cached = self.__dict__.get("_min_work")
        if cached is None:
            cached = min(
                (k + 1) * p
                for k, p in enumerate(self.runtimes)
                if k + 1 >= self.min_procs
            )
            self.__dict__["_min_work"] = cached
        return cached

    def _profile_non_increasing(self) -> bool:
        """Exact (not tolerance-based) monotony of the runtime profile."""

        cached = self.__dict__.get("_non_increasing")
        if cached is None:
            runtimes = self.runtimes
            cached = all(
                runtimes[k] <= runtimes[k - 1] for k in range(1, len(runtimes))
            )
            self.__dict__["_non_increasing"] = cached
        return cached

    def canonical_allocation(self, deadline: float) -> Optional[int]:
        """Smallest admissible allocation meeting ``deadline``, or ``None``.

        This is the quantity written ``gamma(j, lambda)`` in the description
        of the MRT dual-approximation algorithm (section 4.1): the minimal
        number of processors such that the job completes within the guess
        ``lambda``.  Because the profile is non-increasing, the smallest such
        allocation also minimises the work among allocations meeting the
        deadline.
        """

        limit = deadline + 1e-12
        runtimes = self.runtimes
        if self._profile_non_increasing():
            # Exactly non-increasing profile: the admissibility predicate is
            # monotone in k, so the leftmost admissible allocation can be
            # binary-searched (identical result to the linear scan).
            lo = self.min_procs - 1
            hi = len(runtimes)
            if runtimes[hi - 1] > limit:
                return None
            while lo < hi:
                mid = (lo + hi) // 2
                if runtimes[mid] <= limit:
                    hi = mid
                else:
                    lo = mid + 1
            return lo + 1
        # Profiles admitted with enforce_monotony=False may dip arbitrarily;
        # keep the exhaustive scan for those.
        for k in range(self.min_procs, self.max_procs + 1):
            if runtimes[k - 1] <= limit:
                return k
        return None

    @classmethod
    def from_speedup(
        cls,
        name: str,
        sequential_time: float,
        max_procs: int,
        model: "Callable[[int], float]",
        *,
        release_date: float = 0.0,
        weight: float = 1.0,
        due_date: Optional[float] = None,
        owner: Optional[str] = None,
        min_procs: int = 1,
        enforce_monotony: bool = True,
    ) -> "MoldableJob":
        """Build a moldable job from a speedup model.

        ``model(k)`` must return the *speedup* on ``k`` processors (a value
        in ``[1, k]`` for a well-behaved model); the runtime table is then
        ``sequential_time / model(k)``.
        """

        if sequential_time <= 0:
            raise ValueError("sequential_time must be > 0")
        if max_procs < 1:
            raise ValueError("max_procs must be >= 1")
        runtimes = [sequential_time / max(model(k), 1e-12) for k in range(1, max_procs + 1)]
        return cls(
            name=name,
            release_date=release_date,
            weight=weight,
            due_date=due_date,
            owner=owner,
            runtimes=runtimes,
            min_procs=min_procs,
            enforce_monotony=enforce_monotony,
        )

    def as_rigid(self, nbproc: int) -> RigidJob:
        """Freeze the moldable job into a rigid job with a fixed allocation."""

        return RigidJob(
            name=self.name,
            release_date=self.release_date,
            weight=self.weight,
            due_date=self.due_date,
            owner=self.owner,
            nbproc=nbproc,
            duration=self.runtime(nbproc),
        )


@dataclass(eq=False)
class MalleableJob(MoldableJob):
    """A parallel task whose allocation may change during execution.

    The paper does not study malleable scheduling in depth ("We will not
    consider malleability here", end of section 2.2) but the model is part of
    the taxonomy, and the simulators support preemption-style reallocation of
    malleable jobs.  A malleable job is described by its total *work*; when
    executed on ``k`` processors it progresses at rate ``efficiency(k) * k``
    units of work per unit of time.
    """

    total_work: float = 1.0
    efficiency: Callable[[int], float] = field(default=lambda k: 1.0)

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise ValueError(f"job {self.name!r}: total_work must be > 0")
        # Derive a runtime profile from the work/efficiency description if
        # the caller did not provide one explicitly (the default profile is
        # the placeholder [1.0]).
        if tuple(self.runtimes) == (1.0,):
            max_procs = max(len(self.runtimes), 1)
            self.runtimes = [self.total_work / max(1e-12, self.rate(1))]
        super().__post_init__()

    @property
    def kind(self) -> JobKind:
        return JobKind.MALLEABLE

    def rate(self, nbproc: int) -> float:
        """Work units processed per unit of time on ``nbproc`` processors."""

        if nbproc < 0:
            raise ValueError("nbproc must be >= 0")
        if nbproc == 0:
            return 0.0
        eff = self.efficiency(nbproc)
        if eff <= 0 or eff > 1 + 1e-9:
            raise ValueError(
                f"job {self.name!r}: efficiency({nbproc}) = {eff} outside (0, 1]"
            )
        return eff * nbproc

    def time_to_finish(self, remaining_work: float, nbproc: int) -> float:
        """Time to process ``remaining_work`` on a constant ``nbproc``."""

        if remaining_work < 0:
            raise ValueError("remaining_work must be >= 0")
        if remaining_work == 0:
            return 0.0
        if nbproc == 0:
            return math.inf
        return remaining_work / self.rate(nbproc)


@dataclass(eq=False)
class DivisibleJob(Job):
    """A Divisible Load Task (section 2.1).

    The job is a (usually large) amount of ``load`` units of computation that
    can be partitioned in every possible way, each part being completely
    independent of the others.  ``bytes_per_unit`` describes the amount of
    input data that must be shipped to a worker per unit of load (the DLT
    distribution algorithms charge communication proportionally to it), and
    ``output_bytes_per_unit`` the size of results to gather (0 means the
    "searching in a database" case discussed in the paper where only one
    processor sends data back).
    """

    load: float = 1.0
    bytes_per_unit: float = 1.0
    output_bytes_per_unit: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.load <= 0:
            raise ValueError(f"job {self.name!r}: load must be > 0")
        if self.bytes_per_unit < 0 or self.output_bytes_per_unit < 0:
            raise ValueError(f"job {self.name!r}: negative data volume per unit")

    @property
    def kind(self) -> JobKind:
        return JobKind.DIVISIBLE

    def runtime(self, nbproc: int) -> float:
        """Ideal runtime on ``nbproc`` unit-speed workers with free communication."""

        if nbproc < 1:
            raise ValueError("nbproc must be >= 1")
        return self.load / nbproc

    def split(self, fractions: Sequence[float]) -> List[float]:
        """Split the load according to ``fractions`` (must sum to 1)."""

        total = sum(fractions)
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise ValueError(f"fractions sum to {total}, expected 1")
        if any(f < -1e-12 for f in fractions):
            raise ValueError("fractions must be non-negative")
        return [max(0.0, f) * self.load for f in fractions]


@dataclass(eq=False)
class ParametricSweep(Job):
    """A multi-parametric job (section 5.2).

    "Such a job consists of a large number (up to several hundreds of
    thousands) of runs of the same program, each having different
    parameters.  Each run takes a relatively short time to complete, this
    time being often the same for every run."

    It is the practical incarnation of a divisible load: a bag of ``n_runs``
    independent sequential runs of duration ``run_time`` each.  The grid
    simulators schedule individual runs as *best-effort* tasks that can be
    killed and resubmitted.
    """

    n_runs: int = 1
    run_time: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_runs < 1:
            raise ValueError(f"job {self.name!r}: n_runs must be >= 1")
        if self.run_time <= 0:
            raise ValueError(f"job {self.name!r}: run_time must be > 0")

    @property
    def kind(self) -> JobKind:
        return JobKind.DIVISIBLE

    @property
    def total_work(self) -> float:
        return self.n_runs * self.run_time

    def runtime(self, nbproc: int) -> float:
        """Runtime on ``nbproc`` dedicated unit-speed processors."""

        if nbproc < 1:
            raise ValueError("nbproc must be >= 1")
        return math.ceil(self.n_runs / nbproc) * self.run_time

    def as_divisible(self) -> DivisibleJob:
        """Coarse divisible-load view of the bag (ignoring run granularity)."""

        return DivisibleJob(
            name=self.name,
            release_date=self.release_date,
            weight=self.weight,
            due_date=self.due_date,
            owner=self.owner,
            load=self.total_work,
        )


def validate_jobs(jobs: Iterable[Job]) -> List[Job]:
    """Check that a collection of jobs has unique names and return it as a list."""

    jobs = list(jobs)
    seen: Dict[str, Job] = {}
    for job in jobs:
        if job.name in seen:
            raise ValueError(f"duplicate job name {job.name!r}")
        seen[job.name] = job
    return jobs


def total_min_work(jobs: Iterable[Job], machine_count: Optional[int] = None) -> float:
    """Sum of the minimal works of the jobs (used by area lower bounds)."""

    total = 0.0
    for job in jobs:
        if isinstance(job, MoldableJob):
            total += job.min_work()
        elif isinstance(job, RigidJob):
            total += job.work(job.nbproc)
        elif isinstance(job, ParametricSweep):
            total += job.total_work
        elif isinstance(job, DivisibleJob):
            total += job.load
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported job type {type(job)!r}")
    return total
