"""Unit tests of the on-line batch transform (section 4.2)."""

import pytest

from repro.core.bounds import makespan_lower_bound
from repro.core.criteria import makespan
from repro.core.job import MoldableJob, RigidJob
from repro.core.policies.batch_online import BatchOnlineScheduler
from repro.core.policies.list_scheduling import ListScheduler
from repro.core.policies.mrt import GreedyMoldableScheduler, MRTScheduler
from repro.workload.arrivals import poisson_arrivals
from repro.workload.models import generate_moldable_jobs


class TestBatchOnlineScheduler:
    def test_empty(self):
        assert len(BatchOnlineScheduler().schedule([], 4)) == 0

    def test_offline_instance_is_a_single_batch(self):
        jobs = generate_moldable_jobs(10, 8, random_state=1)
        scheduler = BatchOnlineScheduler(GreedyMoldableScheduler())
        assert scheduler.batch_count(jobs, 8) == 1

    def test_release_dates_respected(self):
        jobs = [
            MoldableJob(name="a", runtimes=[4.0], release_date=0.0),
            MoldableJob(name="b", runtimes=[4.0], release_date=100.0),
        ]
        schedule = BatchOnlineScheduler(GreedyMoldableScheduler()).schedule(jobs, 4)
        schedule.validate()
        assert schedule["b"].start >= 100.0

    def test_late_arrivals_form_later_batches(self):
        jobs = [
            MoldableJob(name="first", runtimes=[10.0], release_date=0.0),
            # Arrives while the first batch is running: must wait for batch 2.
            MoldableJob(name="second", runtimes=[1.0], release_date=1.0),
        ]
        scheduler = BatchOnlineScheduler(GreedyMoldableScheduler())
        schedule = scheduler.schedule(jobs, 4)
        schedule.validate()
        assert scheduler.batch_count(jobs, 4) == 2
        assert schedule["second"].start >= schedule["first"].completion - 1e-9

    def test_idle_gap_between_arrivals(self):
        jobs = [
            MoldableJob(name="a", runtimes=[1.0], release_date=0.0),
            MoldableJob(name="b", runtimes=[1.0], release_date=50.0),
        ]
        schedule = BatchOnlineScheduler(GreedyMoldableScheduler()).schedule(jobs, 2)
        schedule.validate()
        assert schedule["b"].start == pytest.approx(50.0)

    def test_three_plus_eps_ratio_with_mrt_inside(self):
        """Empirical check of the 3 + eps result of section 4.2."""

        epsilon = 0.05
        scheduler = BatchOnlineScheduler(MRTScheduler(epsilon=epsilon))
        for seed in range(3):
            jobs = generate_moldable_jobs(20, 8, random_state=seed)
            jobs = poisson_arrivals(jobs, rate=0.3, random_state=seed)
            schedule = scheduler.schedule(jobs, 8)
            schedule.validate()
            bound = makespan_lower_bound(jobs, 8)
            assert makespan(schedule) <= (3.0 + 2 * epsilon) * bound * (1 + 1e-9)

    def test_works_with_rigid_policy_inside(self):
        jobs = [RigidJob(name=f"r{i}", nbproc=1 + i % 3, duration=2.0, release_date=float(i))
                for i in range(9)]
        scheduler = BatchOnlineScheduler(ListScheduler("lpt"))
        schedule = scheduler.schedule(jobs, 4)
        schedule.validate()
        assert len(schedule) == 9

    def test_name_mentions_inner_policy(self):
        assert "mrt" in BatchOnlineScheduler(MRTScheduler()).name
