"""Minimal Standard Workload Format (SWF) support.

The Standard Workload Format is the de-facto interchange format of the
parallel workload archive: one line per job with 18 whitespace-separated
fields.  Only the fields relevant to this library are interpreted:

==  ==========================  ======================================
#   SWF field                   mapping
==  ==========================  ======================================
1   job number                  job name (``job-<number>``)
2   submit time                 ``release_date``
4   run time                    runtime of the allocated processor count
5   number of allocated procs   ``nbproc`` (rigid view)
11  requested memory            ignored
12  requested time              ignored (clairvoyant runtimes are used)
15  user id                     ``owner``
==  ==========================  ======================================

Export writes rigid jobs (moldable jobs are exported with their minimal
allocation); import produces :class:`repro.core.job.RigidJob` objects.  This
is enough to replay external traces through the policies and to dump
generated workloads for inspection with external tools.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TextIO, Union

from repro.core.job import Job, MoldableJob, RigidJob

SWF_FIELDS = 18


def jobs_to_swf(jobs: Sequence[Job], *, comment: str = "") -> str:
    """Serialise jobs to SWF text (one line per job, 18 fields)."""

    lines: List[str] = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"; {row}")
    for index, job in enumerate(sorted(jobs, key=lambda j: (j.release_date, j.name)), start=1):
        if isinstance(job, RigidJob):
            nbproc, runtime = job.nbproc, job.duration
        elif isinstance(job, MoldableJob):
            nbproc = job.min_procs
            runtime = job.runtime(nbproc)
        else:
            raise TypeError(f"cannot export job of type {type(job)!r} to SWF")
        fields = [-1] * SWF_FIELDS
        fields[0] = index
        fields[1] = job.release_date
        fields[2] = 0            # wait time (unknown before scheduling)
        fields[3] = runtime
        fields[4] = nbproc
        fields[7] = nbproc       # requested processors
        fields[8] = runtime      # requested time (clairvoyant)
        fields[11] = job.weight
        fields[14] = job.owner or -1
        line = " ".join(
            f"{f:.4f}" if isinstance(f, float) else str(f) for f in fields
        )
        lines.append(line)
    return "\n".join(lines) + "\n"


def swf_to_jobs(text: Union[str, TextIO]) -> List[RigidJob]:
    """Parse SWF text into rigid jobs (comment lines starting with ';' are skipped)."""

    if hasattr(text, "read"):
        text = text.read()  # type: ignore[union-attr]
    assert isinstance(text, str)
    jobs: List[RigidJob] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";") or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 5:
            raise ValueError(f"SWF line {line_number}: expected at least 5 fields, got {len(parts)}")
        job_id = parts[0]
        submit = float(parts[1])
        runtime = float(parts[3])
        nbproc = int(float(parts[4]))
        if runtime <= 0 or nbproc <= 0:
            # The archive uses -1 for unknown values; such jobs are skipped.
            continue
        weight = 1.0
        if len(parts) > 11:
            try:
                candidate = float(parts[11])
                if candidate > 0:
                    weight = candidate
            except ValueError:
                pass
        owner: Optional[str] = None
        if len(parts) > 14 and parts[14] not in ("-1", ""):
            owner = parts[14]
        jobs.append(
            RigidJob(
                name=f"job-{job_id}",
                release_date=max(0.0, submit),
                nbproc=nbproc,
                duration=runtime,
                weight=weight,
                owner=owner,
            )
        )
    return jobs
